//! Whole-system persistence: a built [`RagSystem`] — chunks, embedder,
//! vector index, fitted reranker, configuration — serialized to one file,
//! so a corpus is segmented and indexed once and then served by any number
//! of processes (`sage index` / `sage query` in the CLI).
//!
//! Format: `SAGESYS1` magic, then config, retriever kind + embedder +
//! index blob (dense) or chunks-only (BM25, whose index rebuilds in
//! milliseconds), then the chunk store and the optional fitted scorer.
//! The LLM profile is intentionally *not* persisted: the reader is a
//! runtime choice, not a property of the corpus.
//!
//! On disk the payload is framed and committed through [`crate::fsx`] —
//! the shared CRC-32 `SAGECRC1` trailer plus tmp+fsync+rename+dir-fsync
//! protocol — so a crash mid-save leaves either the old file or the new
//! one, never a torn hybrid. [`RagSystem::load`] distinguishes the two
//! corruption modes with distinct errors: a checksum mismatch (torn write
//! / bit rot caught by the trailer) versus a structurally malformed
//! payload. Files saved before the trailer existed still load (the
//! trailer is detected by its magic).

use crate::config::{RetrieverKind, SageConfig};
use crate::fsx;
use crate::pipeline::{AnyRetriever, RagSystem};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use sage_embed::{DualEncoder, HashedEmbedder, SiameseEncoder};
use sage_llm::LlmProfile;
use sage_nn::io::{get_string, get_u32, get_u8, put_string};
use sage_nn::BytesSerialize;
use sage_rerank::CrossScorer;
use sage_retrieval::{Bm25Retriever, DenseRetriever, Retriever};
use sage_vecdb::{FlatIndex, VectorIndex};

const MAGIC: &[u8; 8] = b"SAGESYS1";

fn write_config(cfg: &SageConfig, buf: &mut BytesMut) {
    buf.put_f32_le(cfg.segmentation_threshold);
    buf.put_u32_le(cfg.coarse_tokens as u32);
    buf.put_u32_le(cfg.min_k as u32);
    buf.put_f32_le(cfg.gradient);
    buf.put_u8(cfg.feedback_threshold);
    buf.put_u32_le(cfg.max_feedback_rounds as u32);
    buf.put_u32_le(cfg.candidates as u32);
    buf.put_u8(u8::from(cfg.use_segmentation));
    buf.put_u8(u8::from(cfg.use_rerank));
    buf.put_u8(u8::from(cfg.use_selection));
    buf.put_u8(u8::from(cfg.use_feedback));
    buf.put_u32_le(cfg.naive_chunk_tokens as u32);
}

fn read_config(buf: &mut Bytes) -> Option<SageConfig> {
    if buf.remaining() < 4 {
        return None;
    }
    let segmentation_threshold = buf.get_f32_le();
    let coarse_tokens = get_u32(buf)? as usize;
    let min_k = get_u32(buf)? as usize;
    if buf.remaining() < 4 {
        return None;
    }
    let gradient = buf.get_f32_le();
    let feedback_threshold = get_u8(buf)?;
    let max_feedback_rounds = get_u32(buf)? as usize;
    let candidates = get_u32(buf)? as usize;
    let use_segmentation = get_u8(buf)? != 0;
    let use_rerank = get_u8(buf)? != 0;
    let use_selection = get_u8(buf)? != 0;
    let use_feedback = get_u8(buf)? != 0;
    let naive_chunk_tokens = get_u32(buf)? as usize;
    Some(SageConfig {
        segmentation_threshold,
        coarse_tokens,
        min_k,
        gradient,
        feedback_threshold,
        max_feedback_rounds,
        candidates,
        use_segmentation,
        use_rerank,
        use_selection,
        use_feedback,
        naive_chunk_tokens,
    })
}

impl RagSystem {
    /// Serialize the built system (without the LLM profile).
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::new();
        buf.put_slice(MAGIC);
        write_config(self.config(), &mut buf);
        buf.put_u8(match self.retriever_kind() {
            RetrieverKind::OpenAiSim => 0,
            RetrieverKind::Sbert => 1,
            RetrieverKind::Dpr => 2,
            RetrieverKind::Bm25 => 3,
        });
        // Chunk store.
        buf.put_u32_le(self.chunks().len() as u32);
        for chunk in self.chunks() {
            put_string(&mut buf, chunk);
        }
        // Dense state: embedder + index blob (skipped for BM25, which
        // rebuilds from the chunk store on load).
        match self.dense_state() {
            Some((embedder_bytes, index)) => {
                buf.put_u8(1);
                buf.put_u32_le(embedder_bytes.len() as u32);
                buf.put_slice(&embedder_bytes);
                let blob = index.to_bytes();
                buf.put_u32_le(blob.len() as u32);
                buf.put_slice(&blob);
            }
            None => buf.put_u8(0),
        }
        // Fitted scorer.
        match self.scorer_ref() {
            Some(scorer) => {
                buf.put_u8(1);
                scorer.write(&mut buf);
            }
            None => buf.put_u8(0),
        }
        buf.freeze()
    }

    /// Deserialize a system saved by [`RagSystem::to_bytes`], binding it to
    /// the given reader profile.
    pub fn from_bytes(mut bytes: Bytes, profile: LlmProfile) -> Option<Self> {
        if bytes.remaining() < 8 || &bytes.split_to(8)[..] != MAGIC {
            return None;
        }
        let config = read_config(&mut bytes)?;
        let kind = match get_u8(&mut bytes)? {
            0 => RetrieverKind::OpenAiSim,
            1 => RetrieverKind::Sbert,
            2 => RetrieverKind::Dpr,
            3 => RetrieverKind::Bm25,
            _ => return None,
        };
        let n = get_u32(&mut bytes)? as usize;
        // `n` is untrusted: a bit-flipped count must not pre-allocate
        // gigabytes. Every chunk consumes at least a 4-byte length prefix,
        // so `remaining` bounds any plausible count.
        if n > bytes.remaining() {
            return None;
        }
        let mut chunks = Vec::with_capacity(n);
        for _ in 0..n {
            chunks.push(get_string(&mut bytes)?);
        }
        let retriever: AnyRetriever = if get_u8(&mut bytes)? == 1 {
            let elen = get_u32(&mut bytes)? as usize;
            if bytes.remaining() < elen {
                return None;
            }
            let mut embedder_bytes = bytes.split_to(elen);
            let ilen = get_u32(&mut bytes)? as usize;
            if bytes.remaining() < ilen {
                return None;
            }
            let index = FlatIndex::from_bytes(bytes.split_to(ilen))?;
            if index.len() != chunks.len() {
                return None;
            }
            match kind {
                RetrieverKind::OpenAiSim => AnyRetriever::Hashed(DenseRetriever::from_parts(
                    HashedEmbedder::read(&mut embedder_bytes)?,
                    index,
                )),
                RetrieverKind::Sbert => AnyRetriever::Sbert(DenseRetriever::from_parts(
                    SiameseEncoder::read(&mut embedder_bytes)?,
                    index,
                )),
                RetrieverKind::Dpr => AnyRetriever::Dpr(DenseRetriever::from_parts(
                    DualEncoder::read(&mut embedder_bytes)?,
                    index,
                )),
                RetrieverKind::Bm25 => return None,
            }
        } else {
            if kind != RetrieverKind::Bm25 {
                return None;
            }
            let mut bm25 = Bm25Retriever::new();
            bm25.index(&chunks);
            AnyRetriever::Bm25(bm25)
        };
        let scorer = if get_u8(&mut bytes)? == 1 {
            Some(CrossScorer::read(&mut bytes)?)
        } else {
            None
        };
        if bytes.has_remaining() {
            return None;
        }
        Some(RagSystem::from_parts(config, kind, chunks, retriever, scorer, profile))
    }

    /// Save the built system to a file, atomically and with an integrity
    /// trailer.
    ///
    /// The payload plus its CRC-32 trailer is written to `<path>.tmp`,
    /// fsynced, then renamed over `path`; the parent directory is fsynced
    /// best-effort so the rename itself is durable. A crash at any point
    /// leaves either the previous file or the complete new one.
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        fsx::commit_bytes(path, &fsx::frame(&self.to_bytes()))
    }

    /// Load a system from a file saved by [`RagSystem::save`].
    ///
    /// Corruption surfaces as two distinct [`std::io::ErrorKind::InvalidData`]
    /// errors: `"checksum mismatch ..."` when the CRC-32 trailer does not
    /// match the payload (torn write or bit rot), `"malformed ..."` when
    /// the payload itself fails to parse. Files written before the trailer
    /// existed carry no `SAGECRC1` suffix and are parsed unchecked.
    pub fn load(path: &std::path::Path, profile: LlmProfile) -> std::io::Result<Self> {
        let raw = fsx::unframe(std::fs::read(path)?, "SAGE system file")?;
        Self::from_bytes(Bytes::from(raw), profile).ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed SAGE system file")
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fsx::TRAILER_LEN;
    use crate::models::{TrainBudget, TrainedModels};
    use std::sync::OnceLock;

    fn models() -> &'static TrainedModels {
        static M: OnceLock<TrainedModels> = OnceLock::new();
        M.get_or_init(|| TrainedModels::train(TrainBudget::tiny()))
    }

    fn corpus() -> Vec<String> {
        vec![
            "Whiskers is a playful tabby cat. He has bright green eyes.\n\
             Dorinwick was well known in the region. He lives in Ashford.\n\
             The fog settled over the valley, as it had for many years."
                .to_string(),
        ]
    }

    fn roundtrip(kind: RetrieverKind) {
        let original = RagSystem::build(
            models(),
            kind,
            SageConfig::sage(),
            LlmProfile::gpt4o_mini(),
            &corpus(),
        );
        let back = RagSystem::from_bytes(original.to_bytes(), LlmProfile::gpt4o_mini())
            .unwrap_or_else(|| panic!("{kind:?} roundtrip failed"));
        assert_eq!(original.chunks(), back.chunks());
        let q = "What is the color of Whiskers's eyes?";
        let a = original.answer_open(q);
        let b = back.answer_open(q);
        assert_eq!(a.answer.text, b.answer.text, "{kind:?} answers must match");
        assert_eq!(a.selected, b.selected, "{kind:?} selections must match");
    }

    #[test]
    fn roundtrip_every_retriever_kind() {
        for kind in RetrieverKind::all() {
            roundtrip(kind);
        }
    }

    #[test]
    fn file_roundtrip() {
        let system = RagSystem::build(
            models(),
            RetrieverKind::OpenAiSim,
            SageConfig::sage(),
            LlmProfile::gpt4(),
            &corpus(),
        );
        let path = std::env::temp_dir().join("sage_system_test.bin");
        system.save(&path).expect("save");
        let back = RagSystem::load(&path, LlmProfile::gpt4()).expect("load");
        assert_eq!(system.chunks().len(), back.chunks().len());
        // Atomic save leaves no scratch file behind.
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        assert!(!std::path::PathBuf::from(tmp).exists(), "tmp file must be renamed away");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn flipped_byte_on_disk_is_a_checksum_error() {
        let system = RagSystem::build(
            models(),
            RetrieverKind::Bm25,
            SageConfig::sage(),
            LlmProfile::gpt4o_mini(),
            &corpus(),
        );
        let path = std::env::temp_dir().join("sage_system_crc_test.bin");
        system.save(&path).expect("save");
        let clean = std::fs::read(&path).expect("read back");
        // Flip one bit somewhere in the payload: load must fail with the
        // checksum error, not the generic malformed error.
        for pos in [0usize, clean.len() / 2, clean.len() - TRAILER_LEN - 1] {
            let mut torn = clean.clone();
            torn[pos] ^= 0x04;
            std::fs::write(&path, &torn).expect("write corrupt");
            let err = load_err(&path);
            assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
            assert!(
                err.to_string().contains("checksum mismatch"),
                "flip at {pos}: expected checksum error, got: {err}"
            );
        }
        // Flip a bit inside the stored CRC itself: same story.
        let mut torn = clean.clone();
        let crc_pos = clean.len() - TRAILER_LEN;
        torn[crc_pos] ^= 0x01;
        std::fs::write(&path, &torn).expect("write corrupt");
        let err = load_err(&path);
        assert!(err.to_string().contains("checksum mismatch"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn legacy_files_without_trailer_still_load() {
        let system = RagSystem::build(
            models(),
            RetrieverKind::OpenAiSim,
            SageConfig::sage(),
            LlmProfile::gpt4o_mini(),
            &corpus(),
        );
        let path = std::env::temp_dir().join("sage_system_legacy_test.bin");
        // A pre-trailer file is just the raw payload.
        std::fs::write(&path, system.to_bytes()).expect("write legacy");
        let back = RagSystem::load(&path, LlmProfile::gpt4o_mini()).expect("legacy load");
        assert_eq!(system.chunks(), back.chunks());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_file_is_rejected_with_malformed_error() {
        let system = RagSystem::build(
            models(),
            RetrieverKind::Bm25,
            SageConfig::sage(),
            LlmProfile::gpt4o_mini(),
            &corpus(),
        );
        let path = std::env::temp_dir().join("sage_system_trunc_test.bin");
        system.save(&path).expect("save");
        let clean = std::fs::read(&path).expect("read back");
        // Chop the trailer and part of the payload: no SAGECRC1 suffix, so
        // it parses as a legacy payload and fails structurally.
        std::fs::write(&path, &clean[..clean.len() - TRAILER_LEN - 7]).expect("truncate");
        let err = load_err(&path);
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("malformed"), "got: {err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn profile_is_a_load_time_choice() {
        // Same saved corpus, different readers: both answer, and the
        // stronger profile's confidence is at least as high.
        let system = RagSystem::build(
            models(),
            RetrieverKind::OpenAiSim,
            SageConfig::sage(),
            LlmProfile::gpt4(),
            &corpus(),
        );
        let blob = system.to_bytes();
        let strong = RagSystem::from_bytes(blob.clone(), LlmProfile::gpt4()).unwrap();
        let weak = RagSystem::from_bytes(blob, LlmProfile::unifiedqa_3b()).unwrap();
        let q = "Where does Dorinwick live?";
        assert!(strong.answer_open(q).answer.text.contains("ashford"));
        assert!(!weak.answer_open(q).answer.text.is_empty());
    }

    #[test]
    fn malformed_rejected() {
        assert!(RagSystem::from_bytes(Bytes::from_static(b"junk"), LlmProfile::gpt4()).is_none());
        assert!(
            RagSystem::from_bytes(Bytes::from_static(b"SAGESYS1x"), LlmProfile::gpt4()).is_none()
        );
    }

    /// `Result::expect_err` needs `T: Debug`, which `RagSystem` does not
    /// implement; unwrap the error by hand.
    fn load_err(path: &std::path::Path) -> std::io::Error {
        match RagSystem::load(path, LlmProfile::gpt4o_mini()) {
            Ok(_) => panic!("corrupt file must not load"),
            Err(e) => e,
        }
    }

    /// Sampled positions across a blob: every early offset (headers and
    /// counts live there) plus an even spread over the payload.
    fn sample_positions(len: usize) -> Vec<usize> {
        let mut pos: Vec<usize> = (0..len.min(96)).collect();
        let stride = (len / 64).max(1);
        pos.extend((96..len).step_by(stride));
        pos
    }

    #[test]
    fn truncated_system_blobs_never_panic() {
        let system = RagSystem::build(
            models(),
            RetrieverKind::OpenAiSim,
            SageConfig::sage(),
            LlmProfile::gpt4o_mini(),
            &corpus(),
        );
        let blob = system.to_bytes();
        for cut in sample_positions(blob.len()) {
            // Any prefix must be rejected (or, never, accepted) without
            // panicking or allocating absurdly.
            let _ = RagSystem::from_bytes(blob.slice(..cut), LlmProfile::gpt4o_mini());
        }
        assert!(
            RagSystem::from_bytes(blob.slice(..blob.len() - 1), LlmProfile::gpt4o_mini())
                .is_none(),
            "one missing byte must not load"
        );
    }

    #[test]
    fn bit_flipped_system_blobs_never_panic() {
        let system = RagSystem::build(
            models(),
            RetrieverKind::Bm25,
            SageConfig::sage(),
            LlmProfile::gpt4o_mini(),
            &corpus(),
        );
        let blob = system.to_bytes().to_vec();
        for pos in sample_positions(blob.len()) {
            for bit in [0, 3, 7] {
                let mut flipped = blob.clone();
                flipped[pos] ^= 1 << bit;
                // Must return (Some or None), never panic or abort.
                let _ = RagSystem::from_bytes(Bytes::from(flipped), LlmProfile::gpt4o_mini());
            }
        }
    }

    #[test]
    fn corrupted_model_blobs_never_panic() {
        // The model blob is megabytes of floats; sample sparsely (headers
        // densely, payload at a few offsets) to keep the test fast.
        let blob = models().to_bytes();
        let mut positions: Vec<usize> = (0..64.min(blob.len())).collect();
        positions.extend((64..blob.len()).step_by((blob.len() / 8).max(1)));
        for &cut in &positions {
            let _ = TrainedModels::from_bytes(blob.slice(..cut));
        }
        let raw = blob.to_vec();
        for &pos in &positions {
            let mut flipped = raw.clone();
            flipped[pos] ^= 0x10;
            let _ = TrainedModels::from_bytes(Bytes::from(flipped));
        }
        assert!(TrainedModels::from_bytes(blob.slice(..blob.len() / 2)).is_none());
    }

    #[test]
    fn hostile_counts_are_rejected_without_allocation() {
        // A header that claims u32::MAX chunks backed by no data: the
        // count guard must reject it before `Vec::with_capacity` runs.
        let mut buf = BytesMut::new();
        buf.put_slice(MAGIC);
        write_config(&SageConfig::sage(), &mut buf);
        buf.put_u8(3); // RetrieverKind::Bm25
        buf.put_u32_le(u32::MAX); // hostile chunk count
        assert!(RagSystem::from_bytes(buf.freeze(), LlmProfile::gpt4o_mini()).is_none());
    }

    #[test]
    fn config_roundtrip() {
        let cfg = SageConfig { min_k: 3, gradient: 0.42, use_feedback: false, ..SageConfig::sage() };
        let mut buf = BytesMut::new();
        write_config(&cfg, &mut buf);
        let back = read_config(&mut buf.freeze()).expect("config");
        assert_eq!(cfg, back);
    }
}
