//! # sage-core
//!
//! The SAGE framework (paper Figure 2) assembled from the substrate
//! crates, plus every baseline the paper compares against and the
//! experiment harnesses that regenerate its tables and figures.
//!
//! * [`config::SageConfig`] — the paper's hyper-parameters (`ss = 0.55`,
//!   `l = 400`, `min_k = 7`, `g = 0.3`, `fs = 9`, `N = 20`, ≤3 feedback
//!   rounds) plus per-module toggles for the Table IV ablation.
//! * [`models::TrainedModels`] — one-stop training of the segmentation
//!   model (Algorithm 1), the cross-feature reranker, and the SBERT/DPR
//!   analog encoders, all deterministic.
//! * [`pipeline::RagSystem`] — build (segment → embed → index) and query
//!   (retrieve → rerank → gradient-select → generate → self-feedback).
//! * [`baselines`] — Naive RAG, Title+Abstract, BM25+BERT, Recursively
//!   Summarizing Books, RAPTOR, and the reader baselines (BiDAF /
//!   Longformer / CoLISA / DPR+DeBERTa analogs).
//! * [`experiment`] — dataset → system → metrics plumbing shared by every
//!   bench target.
//! * [`scalability`] — the Tables VIII/IX concurrency harness.
//! * [`case_studies`] — the Figure 8/9/10 single-question drivers.
//! * [`multihop`] — the paper's future-work §X(1): iterative multi-hop
//!   retrieval (Baleen-style), with its own synthetic 2-hop tasks.
//! * [`resilience`] — the serving-path fault-injection and
//!   graceful-degradation layer (guarded component boundaries, retries,
//!   per-query circuit breakers, the documented fallback chain).
//! * [`soak`] — the deterministic overload harness: a seeded open-loop
//!   arrival process replayed against a built system through admission
//!   control and per-query deadline budgets, on a virtual clock.
//! * [`live`] — the live-corpus mutation subsystem: a single-writer
//!   [`live::CorpusWriter`] applying document upserts/deletes through
//!   epoch-based snapshots, persisted as incremental segment files plus a
//!   manifest (the [`fsx`] commit protocol), with deterministic
//!   crash-point injection and recovery drills.
//! * [`fsx`] — the shared durable-commit substrate: CRC-32 `SAGECRC1`
//!   framing and the atomic tmp+fsync+rename+dir-fsync protocol used by
//!   [`persist`], [`models`], and the live store.

pub mod baselines;
mod brownout;
pub mod case_studies;
pub mod config;
pub mod exec;
pub mod experiment;
pub mod fsx;
pub mod live;
pub mod models;
pub mod multihop;
pub mod obs;
pub mod persist;
pub mod pipeline;
pub mod resilience;
mod result;
mod retriever;
pub mod scalability;
pub mod scenario;
pub mod soak;

pub use config::{RetrieverKind, SageConfig};
pub use live::{
    run_live_soak, CommitReport, CorpusWriter, LiveConfig, LiveHit, LiveOp, LiveRetrieverKind,
    LiveSnapshot, LiveSoakConfig, LiveSoakReport, RecoveryReport,
};
pub use models::TrainedModels;
pub use pipeline::{BuildStats, QueryResult, RagSystem};
pub use resilience::ResilienceConfig;
pub use soak::{run_soak, SoakReport};
