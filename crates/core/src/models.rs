//! One-stop training of every trainable component, with a process-wide
//! cached instance for the experiment harnesses.
//!
//! Training data comes from the synthetic world's *generators* (standalone
//! facts and Wikipedia-analog documents with fixed seeds), never from the
//! evaluation datasets themselves — the same pretrain/evaluate split the
//! paper uses (its segmentation model trains on Wikipedia, not on QuALITY).

use sage_corpus::datasets::{wiki, SizeConfig};
use sage_corpus::training::{paraphrase_pairs, retrieval_triples, segmentation_pairs};
use sage_embed::{DualEncoder, PairExample, SiameseEncoder, TripletExample};
use sage_rerank::CrossScorer;
use sage_nn::BytesSerialize;
use sage_segment::{FeatureConfig, SegmentationModel};
use std::sync::OnceLock;

/// Bundle of trained models shared by pipelines and baselines.
#[derive(Debug, Clone)]
pub struct TrainedModels {
    /// Algorithm-1 segmentation model.
    pub segmentation: SegmentationModel,
    /// Cross-feature reranker.
    pub scorer: CrossScorer,
    /// SBERT-analog siamese encoder.
    pub siamese: SiameseEncoder,
    /// DPR-analog dual-tower encoder.
    pub dual: DualEncoder,
}

/// Training budget knobs (lowered in unit tests for speed).
#[derive(Debug, Clone, Copy)]
pub struct TrainBudget {
    /// Wikipedia-analog documents for segmentation pairs.
    pub wiki_docs: usize,
    /// Cap on segmentation pairs.
    pub seg_pairs: usize,
    /// Paraphrase pairs for the siamese encoder.
    pub para_pairs: usize,
    /// Triples for the dual encoder and reranker.
    pub triples: usize,
    /// Epochs for each trainer.
    pub epochs: usize,
}

impl Default for TrainBudget {
    fn default() -> Self {
        Self { wiki_docs: 30, seg_pairs: 2400, para_pairs: 400, triples: 400, epochs: 10 }
    }
}

impl TrainBudget {
    /// A tiny budget for fast unit tests.
    pub fn tiny() -> Self {
        Self { wiki_docs: 12, seg_pairs: 900, para_pairs: 120, triples: 120, epochs: 8 }
    }
}

impl TrainedModels {
    /// Train everything with the given budget. Deterministic.
    pub fn train(budget: TrainBudget) -> Self {
        // Segmentation model on Wikipedia-analog paragraph pairs.
        let wiki_ds =
            wiki::generate(SizeConfig { num_docs: budget.wiki_docs, questions_per_doc: 0, seed: 0xA11CE });
        let seg_data = segmentation_pairs(&wiki_ds.documents, budget.seg_pairs, 0xB0B);
        let mut segmentation =
            SegmentationModel::new(2048, 24, 24, FeatureConfig::default(), 0x5E61);
        segmentation.train(&seg_data, 0.05, budget.epochs);

        // Reranker on (question, positive, negative) triples.
        let triples = retrieval_triples(budget.triples, 0xC0DE);
        let mut scorer = CrossScorer::new(0x5C0);
        scorer.train_from_triples(&triples, 0.05, budget.epochs.min(6));

        // SBERT analog on paraphrase pairs.
        let mut siamese = SiameseEncoder::new(4096, 48, 0x5BE7);
        let pairs: Vec<PairExample> = paraphrase_pairs(budget.para_pairs, 0xFACE)
            .into_iter()
            .map(|(a, b, label)| PairExample { a, b, label })
            .collect();
        siamese.train(&pairs, 0.3, budget.epochs.min(6) + 2);

        // DPR analog on retrieval triples.
        let mut dual = DualEncoder::new(4096, 48, 0.3, 0xD9A);
        let dpr_triples: Vec<TripletExample> = retrieval_triples(budget.triples, 0xDEED)
            .into_iter()
            .map(|(query, positive, negative)| TripletExample { query, positive, negative })
            .collect();
        dual.train(&dpr_triples, 0.3, budget.epochs.min(6) + 2);

        Self { segmentation, scorer, siamese, dual }
    }

    /// Process-wide cached default-budget models (the experiment harnesses
    /// reuse one training run across tables).
    pub fn shared() -> &'static TrainedModels {
        static SHARED: OnceLock<TrainedModels> = OnceLock::new();
        SHARED.get_or_init(|| TrainedModels::train(TrainBudget::default()))
    }

    /// Serialize all four trained models to one binary blob
    /// (`SAGEMDL1` header + segmentation + scorer + siamese + dual).
    pub fn to_bytes(&self) -> bytes::Bytes {
        use bytes::BufMut;
        let mut buf = bytes::BytesMut::new();
        buf.put_slice(b"SAGEMDL1");
        self.segmentation.write(&mut buf);
        self.scorer.write(&mut buf);
        self.siamese.write(&mut buf);
        self.dual.write(&mut buf);
        buf.freeze()
    }

    /// Deserialize a blob produced by [`TrainedModels::to_bytes`].
    pub fn from_bytes(mut bytes: bytes::Bytes) -> Option<Self> {
        use bytes::Buf;
        if bytes.remaining() < 8 || &bytes.split_to(8)[..] != b"SAGEMDL1" {
            return None;
        }
        let segmentation = SegmentationModel::read(&mut bytes)?;
        let scorer = sage_rerank::CrossScorer::read(&mut bytes)?;
        let siamese = SiameseEncoder::read(&mut bytes)?;
        let dual = DualEncoder::read(&mut bytes)?;
        if bytes.has_remaining() {
            return None;
        }
        Some(Self { segmentation, scorer, siamese, dual })
    }

    /// Save the models to a file, atomically and with an integrity
    /// trailer (the shared [`crate::fsx`] commit path: CRC-32 `SAGECRC1`
    /// trailer, tmp+fsync+rename+dir-fsync).
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        crate::fsx::commit_bytes(path, &crate::fsx::frame(&self.to_bytes()))
    }

    /// Load models from a file saved by [`TrainedModels::save`].
    ///
    /// A torn write or bit rot surfaces as a distinct checksum-mismatch
    /// [`std::io::ErrorKind::InvalidData`] error; pre-trailer files load
    /// unchecked.
    pub fn load(path: &std::path::Path) -> std::io::Result<Self> {
        let raw = crate::fsx::unframe(std::fs::read(path)?, "SAGE model file")?;
        Self::from_bytes(bytes::Bytes::from(raw)).ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed SAGE model file")
        })
    }

    /// Train the flexible chunk selector (paper future-work SX(3)) on
    /// ranked lists with evidence ground truth: documents are generated,
    /// segmented, and reranked exactly as in the pipeline, and each
    /// candidate chunk is labelled "keep" iff it contains one of the
    /// question's gold evidence sentences.
    pub fn train_flexible_selector(
        &self,
        num_docs: usize,
        seed: u64,
    ) -> sage_rerank::FlexibleSelector {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        use sage_corpus::document::{generate_document, DocSpec};
        use sage_corpus::qa::{elimination_item, factoid_item};
        use sage_rerank::flexible::training_examples;
        use sage_segment::{Segmenter, SemanticSegmenter};

        let mut rng = StdRng::seed_from_u64(seed);
        let segmenter = SemanticSegmenter::new(self.segmentation.clone());
        let mut lists = Vec::new();
        for doc_id in 0..num_docs {
            let generated = generate_document(doc_id, &DocSpec::default(), &mut rng);
            let chunks = segmenter.segment(&generated.document.text());
            let mut scorer = self.scorer.clone();
            scorer.fit_idf(&chunks);
            let refs: Vec<&str> = chunks.iter().map(String::as_str).collect();
            let mut items = Vec::new();
            for record in generated.records.iter().filter(|r| !r.fact.spec().multi_valued) {
                items.push(factoid_item(record, &mut rng));
            }
            // Broad-evidence lists too: without them the selector learns
            // "keep one chunk" and starves elimination questions.
            let multi: Vec<_> = generated
                .records
                .iter()
                .filter(|r| r.fact.spec().multi_valued)
                .cloned()
                .collect();
            if let Some(item) = elimination_item(&multi, &mut rng) {
                items.push(item);
            }
            for item in items {
                let ranked = scorer.rerank(&item.question, &refs);
                let useful: Vec<bool> = ranked
                    .iter()
                    .map(|r| item.evidence.iter().any(|e| chunks[r.index].contains(e)))
                    .collect();
                lists.push((ranked, useful));
            }
        }
        let examples = training_examples(&lists);
        let mut selector = sage_rerank::FlexibleSelector::new(seed ^ 0xF1E);
        selector.train(&examples, 0.05, 6);
        selector
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sage_embed::Embedder;

    #[test]
    fn tiny_training_runs_and_is_deterministic() {
        let a = TrainedModels::train(TrainBudget::tiny());
        let b = TrainedModels::train(TrainBudget::tiny());
        assert_eq!(
            a.segmentation.score_pair("The cat sat.", "He slept."),
            b.segmentation.score_pair("The cat sat.", "He slept.")
        );
        assert_eq!(a.siamese.embed("hello town"), b.siamese.embed("hello town"));
    }

    #[test]
    fn serialization_roundtrip_preserves_behaviour() {
        let m = TrainedModels::train(TrainBudget::tiny());
        let back = TrainedModels::from_bytes(m.to_bytes()).expect("roundtrip");
        assert_eq!(
            m.segmentation.score_pair("The cat sat.", "He slept."),
            back.segmentation.score_pair("The cat sat.", "He slept.")
        );
        let q = "What is the color of Whiskers's eyes?";
        let c = "Whiskers has bright green eyes.";
        assert_eq!(m.scorer.score(q, c), back.scorer.score(q, c));
        assert_eq!(m.siamese.embed(c), back.siamese.embed(c));
        assert_eq!(m.dual.embed_query(q), back.dual.embed_query(q));
    }

    #[test]
    fn save_load_file_roundtrip() {
        let m = TrainedModels::train(TrainBudget::tiny());
        let path = std::env::temp_dir().join("sage_models_test.bin");
        m.save(&path).expect("save");
        let back = TrainedModels::load(&path).expect("load");
        assert_eq!(
            m.segmentation.score_pair("a b", "c d"),
            back.segmentation.score_pair("a b", "c d")
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn malformed_model_file_rejected() {
        assert!(TrainedModels::from_bytes(bytes::Bytes::from_static(b"nope")).is_none());
        assert!(TrainedModels::from_bytes(bytes::Bytes::from_static(b"SAGEMDL1junk")).is_none());
    }

    #[test]
    fn torn_model_write_is_a_checksum_error() {
        let m = TrainedModels::train(TrainBudget::tiny());
        let path = std::env::temp_dir().join("sage_models_torn_test.bin");
        m.save(&path).expect("save");
        // The atomic commit leaves no scratch file behind.
        assert!(!crate::fsx::tmp_path(&path).exists());
        let mut raw = std::fs::read(&path).expect("read back");
        let mid = raw.len() / 2;
        raw[mid] ^= 0x08;
        std::fs::write(&path, &raw).expect("write corrupt");
        let err = match TrainedModels::load(&path) {
            Ok(_) => panic!("corrupt model file must not load"),
            Err(e) => e,
        };
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("checksum mismatch in SAGE model file"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn legacy_model_files_without_trailer_still_load() {
        let m = TrainedModels::train(TrainBudget::tiny());
        let path = std::env::temp_dir().join("sage_models_legacy_test.bin");
        std::fs::write(&path, m.to_bytes()).expect("write legacy");
        let back = TrainedModels::load(&path).expect("legacy load");
        assert_eq!(
            m.segmentation.score_pair("a b", "c d"),
            back.segmentation.score_pair("a b", "c d")
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn trained_models_have_signal() {
        let m = TrainedModels::train(TrainBudget::tiny());
        // Reranker separates evidence from filler.
        let q = "What is the color of Whiskers's eyes?";
        let ev = m.scorer.score(q, "Whiskers has bright green eyes.");
        let fl = m.scorer.score(q, "The morning fog settled over the valley, as usual.");
        assert!(ev > fl, "scorer: {ev} vs {fl}");
        // Segmentation model separates in-paragraph from cross-paragraph
        // pairs at least directionally on an obvious case.
        let cohesive = m
            .segmentation
            .score_pair("Dorinwick lives in Ashford.", "He works as a baker.");
        let shift = m.segmentation.score_pair(
            "Dorinwick lives in Ashford.",
            "The morning fog settled over the valley, as it had for many years.",
        );
        assert!(cohesive > shift, "segmentation: {cohesive} vs {shift}");
    }
}
