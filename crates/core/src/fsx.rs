//! Durable, checksummed file commits — the one write path every persisted
//! artifact shares.
//!
//! Layout: payload, then a trailer of the payload's IEEE CRC-32
//! (little-endian) and the `SAGECRC1` magic. Commit protocol: write
//! `<path>.tmp`, fsync it, rename over the target, fsync the parent
//! directory (best-effort — not every platform lets a directory be
//! opened). A crash at any point leaves either the previous file or the
//! complete new one, never a torn hybrid.
//!
//! [`commit_framed`] threads a *barrier hook* through the protocol —
//! called with each [`CrashPoint`] as the commit crosses it — which is how
//! the live-corpus store injects deterministic crashes
//! ([`sage_resilience::CrashPlan`]) for its recovery drills. Production
//! callers use [`commit_bytes`], whose hook is a no-op.

// sage-lint: allow-file(panic-reachability) - frame trailer offsets are guarded by the explicit TRAILER_LEN length check before each access; crc table indices are masked to 8 bits

use sage_resilience::CrashPoint;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Trailing magic that marks a file carrying the CRC-32 trailer. Distinct
/// from any header magic so a truncated header is never confused with a
/// missing trailer.
pub const TRAILER_MAGIC: &[u8; 8] = b"SAGECRC1";

/// Trailer layout: 4-byte little-endian CRC-32 of the payload, then
/// [`TRAILER_MAGIC`].
pub const TRAILER_LEN: usize = 4 + TRAILER_MAGIC.len();

/// IEEE CRC-32 (reflected, polynomial `0xEDB88320`) — the checksum in the
/// saved-file trailer. Table-driven; the table is built at compile time.
/// Test vector: `crc32(b"123456789") == 0xCBF4_3926`.
pub fn crc32(data: &[u8]) -> u32 {
    const TABLE: [u32; 256] = {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
                k += 1;
            }
            table[i] = c;
            i += 1;
        }
        table
    };
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in data {
        crc = TABLE[((crc ^ byte as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// Append the CRC-32 trailer to `payload`.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let mut framed = Vec::with_capacity(payload.len() + TRAILER_LEN);
    framed.extend_from_slice(payload);
    framed.extend_from_slice(&crc32(payload).to_le_bytes());
    framed.extend_from_slice(TRAILER_MAGIC);
    framed
}

/// Verify and strip the trailer of `raw`, returning the payload.
///
/// A trailer whose CRC does not match the payload is an
/// [`std::io::ErrorKind::InvalidData`] error naming `what` ("torn write or
/// bit rot"). Files without the `SAGECRC1` suffix predate the trailer and
/// pass through unchecked.
pub fn unframe(mut raw: Vec<u8>, what: &str) -> std::io::Result<Vec<u8>> {
    if raw.len() >= TRAILER_LEN && raw[raw.len() - TRAILER_MAGIC.len()..] == TRAILER_MAGIC[..] {
        let body_end = raw.len() - TRAILER_LEN;
        let stored = u32::from_le_bytes([
            raw[body_end],
            raw[body_end + 1],
            raw[body_end + 2],
            raw[body_end + 3],
        ]);
        let actual = crc32(&raw[..body_end]);
        if stored != actual {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!(
                    "checksum mismatch in {what} (stored {stored:#010x}, \
                     computed {actual:#010x}): torn write or bit rot"
                ),
            ));
        }
        raw.truncate(body_end);
    }
    Ok(raw)
}

/// The scratch path a commit writes before renaming: `<path>.tmp`.
pub fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path.as_os_str().to_owned();
    name.push(".tmp");
    PathBuf::from(name)
}

/// Fsync the directory entry so a rename inside it is durable. Failures
/// are ignored: not every platform lets a directory be opened.
pub fn fsync_dir(dir: &Path) {
    if !dir.as_os_str().is_empty() {
        if let Ok(handle) = std::fs::File::open(dir) {
            let _ = handle.sync_all();
        }
    }
}

/// Atomically commit `framed` to `path`, calling `barrier` at each
/// [`CrashPoint`] the protocol crosses (pre-tmp, post-tmp, pre-rename,
/// post-rename — the pre-manifest barrier belongs to the caller's own
/// commit sequence).
///
/// A barrier that returns an error aborts the commit **leaving the disk
/// exactly as a real crash at that point would** — in particular, a stray
/// `.tmp` file survives a post-tmp/pre-rename abort for recovery to
/// discard. Genuine I/O failures clean up the scratch file as before.
pub fn commit_framed(
    path: &Path,
    framed: &[u8],
    barrier: &mut dyn FnMut(CrashPoint) -> std::io::Result<()>,
) -> std::io::Result<()> {
    barrier(CrashPoint::PreTmp)?;
    let tmp = tmp_path(path);
    {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(framed)?;
        file.sync_all()?;
    }
    barrier(CrashPoint::PostTmp)?;
    barrier(CrashPoint::PreRename)?;
    if let Err(e) = std::fs::rename(&tmp, path) {
        std::fs::remove_file(&tmp).ok();
        return Err(e);
    }
    if let Some(dir) = path.parent() {
        fsync_dir(dir);
    }
    barrier(CrashPoint::PostRename)?;
    Ok(())
}

/// [`commit_framed`] with no crash barriers: the production write path.
pub fn commit_bytes(path: &Path, framed: &[u8]) -> std::io::Result<()> {
    commit_framed(path, framed, &mut |_| Ok(()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_ieee_test_vector() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frame_unframe_roundtrip() {
        let payload = b"hello sage".to_vec();
        let framed = frame(&payload);
        assert_eq!(framed.len(), payload.len() + TRAILER_LEN);
        assert_eq!(unframe(framed, "test file").unwrap(), payload);
    }

    #[test]
    fn corrupted_frame_is_a_checksum_error() {
        let mut framed = frame(b"hello sage");
        framed[3] ^= 0x20;
        let err = unframe(framed, "test file").unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("checksum mismatch in test file"), "{err}");
    }

    #[test]
    fn legacy_bytes_pass_through_unchecked() {
        let raw = b"no trailer here".to_vec();
        assert_eq!(unframe(raw.clone(), "x").unwrap(), raw);
    }

    #[test]
    fn commit_writes_atomically_and_removes_tmp() {
        let path = std::env::temp_dir().join("sage_fsx_commit_test.bin");
        let framed = frame(b"payload");
        commit_bytes(&path, &framed).expect("commit");
        assert_eq!(std::fs::read(&path).unwrap(), framed);
        assert!(!tmp_path(&path).exists());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn aborted_barrier_leaves_crash_consistent_disk() {
        let dir = std::env::temp_dir().join("sage_fsx_barrier_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("target.bin");
        let framed = frame(b"next version");

        // Crash before the tmp write: nothing on disk.
        let mut at_pre = |p: CrashPoint| {
            if p == CrashPoint::PreTmp {
                Err(std::io::Error::other("crash"))
            } else {
                Ok(())
            }
        };
        assert!(commit_framed(&path, &framed, &mut at_pre).is_err());
        assert!(!path.exists() && !tmp_path(&path).exists());

        // Crash after the tmp write: the stray tmp survives, target absent.
        let mut at_post_tmp = |p: CrashPoint| {
            if p == CrashPoint::PostTmp {
                Err(std::io::Error::other("crash"))
            } else {
                Ok(())
            }
        };
        assert!(commit_framed(&path, &framed, &mut at_post_tmp).is_err());
        assert!(!path.exists());
        assert!(tmp_path(&path).exists(), "torn tmp must remain, as a real crash leaves it");
        std::fs::remove_file(tmp_path(&path)).ok();

        // Crash after the rename: the commit is already durable.
        let mut at_post_rename = |p: CrashPoint| {
            if p == CrashPoint::PostRename {
                Err(std::io::Error::other("crash"))
            } else {
                Ok(())
            }
        };
        assert!(commit_framed(&path, &framed, &mut at_post_rename).is_err());
        assert_eq!(std::fs::read(&path).unwrap(), framed);
        assert!(!tmp_path(&path).exists());
        std::fs::remove_dir_all(&dir).ok();
    }
}
