//! `sage` — command-line interface to the SAGE RAG framework.
//!
//! ```text
//! sage segment --file corpus.txt [--threshold 0.55] [--coarse 400]
//! sage ask     --file corpus.txt --question "..." [--retriever R] [--llm L]
//!              [--naive] [--show-context] [--telemetry] [--trace-out F]
//!              [--metrics-out F]
//! sage eval    --dataset quality|qasper|narrativeqa [--method sage|naive]
//!              [--docs N] [--questions M] [--llm L]
//! sage train   --out models.bin
//! sage soak    [--seed 42] [--qps 4] [--duration 30] [--capacity 8]
//!              [--concurrency 2] [--exec-workers 1] [--deadline-ms 8000]
//!              [--token-budget 50000] [--no-budget]
//!              [--docs N | --file F --question "..."]
//!              [--faults SPEC] [--fault-seed N] [--max-shed-rate 0.9]
//! sage lint    [--root PATH] [--format human|json|sarif] [--baseline F]
//!              [--update-baseline] [--callgraph F] [--timings]
//!              [--metrics-out F] [--validate-sarif F]
//! sage explain ["question"] [--retriever R] [--naive]
//!              [--concurrency N [--exec-workers 2]]
//! sage top     --from metrics.prom
//! sage report  [--seed 42] [--qps 4] [--duration 30] [--slo SPEC]
//!              [--out bundle.json] [--metrics-out F] [--strict-slo]
//! sage scenarios run scenarios.toml [--baseline F] [--filter S] [--update]
//!              [--out F] [--metrics-out F]
//! sage demo
//! sage help
//! ```
//!
//! Argument parsing is hand-rolled (the workspace's dependency policy does
//! not include a CLI parser, and the surface is small).

mod args;
mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = argv.split_first() else {
        commands::print_help();
        return ExitCode::FAILURE;
    };
    // `sage explain "<question>"` reads naturally with the question as a
    // bare positional; rewrite it into the uniform `--question` form.
    let mut rest = rest.to_vec();
    if command == "explain" {
        if let Some(first) = rest.first().filter(|a| !a.starts_with("--")).cloned() {
            rest.splice(0..1, ["--question".to_string(), first]);
        }
    }
    // `sage scenarios run <grid.toml>` reads naturally; the `run` verb is
    // optional and the grid path becomes the uniform `--file` flag.
    if command == "scenarios" {
        if rest.first().is_some_and(|a| a == "run") {
            rest.remove(0);
        }
        if let Some(first) = rest.first().filter(|a| !a.starts_with("--")).cloned() {
            rest.splice(0..1, ["--file".to_string(), first]);
        }
    }
    let parsed = match args::parse_flags(&rest) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let result = match command.as_str() {
        "segment" => commands::segment(&parsed),
        "explain" => commands::explain(&parsed),
        "ask" => commands::ask(&parsed),
        "eval" => commands::eval(&parsed),
        "train" => commands::train(&parsed),
        "index" => commands::index(&parsed),
        "query" => commands::query(&parsed),
        "soak" => commands::soak(&parsed),
        "top" => commands::top(&parsed),
        "report" => commands::report(&parsed),
        "scenarios" => commands::scenarios(&parsed),
        "lint" => commands::lint(&parsed),
        "demo" => commands::demo(),
        "help" | "--help" | "-h" => {
            commands::print_help();
            Ok(())
        }
        other => Err(format!("unknown command `{other}` (try `sage help`)")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
