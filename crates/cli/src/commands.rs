//! CLI subcommand implementations.

use crate::args::Flags;
use sage::core::exec::{Fanout, QueryPlan};
use sage::corpus::datasets::{narrativeqa, qasper, quality, SizeConfig};
use sage::prelude::*;
use std::sync::OnceLock;

/// Models are trained once per process (deterministic, a few seconds), or
/// loaded from a `--models` file written by `sage train`.
fn models() -> &'static TrainedModels {
    static M: OnceLock<TrainedModels> = OnceLock::new();
    M.get_or_init(|| {
        eprintln!("training models (one-time, deterministic)...");
        TrainedModels::train(TrainBudget::default())
    })
}

/// Resolve the model bundle: `--models <path>` loads a saved bundle,
/// otherwise models are trained in-process.
fn resolve_models(flags: &Flags) -> Result<&'static TrainedModels, String> {
    match flags.get("models") {
        Some(path) if !path.is_empty() => {
            static LOADED: OnceLock<TrainedModels> = OnceLock::new();
            if LOADED.get().is_none() {
                let loaded = TrainedModels::load(std::path::Path::new(path))
                    .map_err(|e| format!("cannot load models from {path}: {e}"))?;
                let _ = LOADED.set(loaded);
            }
            Ok(LOADED.get().expect("just set"))
        }
        _ => Ok(models()),
    }
}

/// `sage index` — build a system over a corpus file and save it.
pub fn index(flags: &Flags) -> Result<(), String> {
    let corpus = load_corpus(flags.require("file")?)?;
    let out = flags.require("out")?;
    let retriever = parse_retriever(flags.get_or("retriever", "openai"))?;
    let config = if flags.has("naive") { SageConfig::naive_rag() } else { SageConfig::sage() };
    let system = RagSystem::build(
        resolve_models(flags)?,
        retriever,
        config,
        LlmProfile::gpt4o_mini(), // placeholder; `query` rebinds the reader
        &corpus,
    );
    system.save(std::path::Path::new(out)).map_err(|e| format!("cannot write {out}: {e}"))?;
    let stats = system.build_stats();
    eprintln!(
        "indexed {} chunks ({} corpus tokens) -> {out}",
        stats.chunk_count, stats.corpus_tokens
    );
    Ok(())
}

/// `sage query` — answer a question against a saved index.
pub fn query(flags: &Flags) -> Result<(), String> {
    let path = flags.require("index")?;
    let question = flags.require("question")?;
    let profile = parse_llm(flags.get_or("llm", "gpt4o-mini"))?;
    let mut system = RagSystem::load(std::path::Path::new(path), profile)
        .map_err(|e| format!("cannot load index {path}: {e}"))?;
    apply_resilience(flags, &mut system)?;
    apply_telemetry(flags, &mut system);
    let result = system.answer_open(question);
    println!("{}", result.answer.text);
    eprintln!(
        "confidence {:.2} | {} chunks | {} tokens | ${:.6}",
        result.answer.confidence,
        result.selected.len(),
        result.cost.total_tokens(),
        result.cost.dollars(profile.prices),
    );
    report_degradation(&result.degraded, &system);
    report_telemetry(flags, &system, profile)?;
    Ok(())
}

/// `sage train` — train the model bundle and save it for reuse.
pub fn train(flags: &Flags) -> Result<(), String> {
    let out = flags.require("out")?;
    let m = models();
    m.save(std::path::Path::new(out)).map_err(|e| format!("cannot write {out}: {e}"))?;
    eprintln!("saved trained models to {out}");
    Ok(())
}

/// Load a text file as one corpus document: blank-line-separated paragraphs
/// become '\n'-separated paragraphs (the format the pipeline expects);
/// single newlines inside a paragraph are unwrapped to spaces.
fn load_corpus(path: &str) -> Result<Vec<String>, String> {
    let raw = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let paragraphs: Vec<String> = raw
        .split("\n\n")
        .map(|p| p.split_whitespace().collect::<Vec<_>>().join(" "))
        .filter(|p| !p.is_empty())
        .collect();
    if paragraphs.is_empty() {
        return Err(format!("{path} contains no text"));
    }
    Ok(vec![paragraphs.join("\n")])
}

/// Apply the resilience flags: `--resilience` (guards with no faults),
/// `--faults <spec>` (e.g. `reader=transient:0.5,embedder=timeout:1.0`),
/// `--fault-seed <n>` (injection seed), `--hnsw` (serve dense retrieval
/// through an ANN tier that degrades to the exact flat scan).
fn apply_resilience(flags: &Flags, system: &mut RagSystem) -> Result<(), String> {
    if !(flags.has("resilience") || flags.has("faults") || flags.has("hnsw")) {
        return Ok(());
    }
    let seed: u64 = flags.get_parse("fault-seed", 0u64)?;
    let plan = match flags.get("faults") {
        Some(spec) if !spec.is_empty() => FaultPlan::parse_spec(spec, seed)?,
        _ => FaultPlan::none(),
    };
    system.enable_resilience(ResilienceConfig {
        plan,
        use_hnsw: flags.has("hnsw"),
        ..ResilienceConfig::default()
    });
    Ok(())
}

/// Apply the telemetry flags: any of `--telemetry` (stderr summary),
/// `--trace-out <path>` (JSONL query traces), `--metrics-out <path>`
/// (Prometheus text dump) attaches a recording hub to the system.
fn apply_telemetry(flags: &Flags, system: &mut RagSystem) {
    if flags.has("telemetry") || flags.has("trace-out") || flags.has("metrics-out") {
        system.enable_telemetry();
    }
}

/// Write out whatever the telemetry flags asked for. No-op when no hub is
/// attached.
fn report_telemetry(flags: &Flags, system: &RagSystem, profile: LlmProfile) -> Result<(), String> {
    let Some(hub) = system.telemetry() else { return Ok(()) };
    let prices = sage::telemetry::export::Prices {
        input_per_token: profile.prices.input_per_token,
        output_per_token: profile.prices.output_per_token,
    };
    if let Some(path) = flags.get("trace-out").filter(|p| !p.is_empty()) {
        std::fs::write(path, hub.traces_jsonl())
            .map_err(|e| format!("cannot write trace file {path}: {e}"))?;
        eprintln!("wrote {} trace(s) -> {path}", hub.trace_count());
    }
    if let Some(path) = flags.get("metrics-out").filter(|p| !p.is_empty()) {
        let text = sage::telemetry::export::prometheus(hub, Some(prices));
        std::fs::write(path, text)
            .map_err(|e| format!("cannot write metrics file {path}: {e}"))?;
        eprintln!("wrote metrics -> {path}");
    }
    if flags.has("telemetry") {
        eprint!("{}", sage::telemetry::export::summary(hub, Some(prices)));
    }
    Ok(())
}

/// Report degraded-mode serving: the per-query trace, then the system-wide
/// fallback counters. Prints nothing when resilience is disabled.
fn report_degradation(trace: &DegradeTrace, system: &RagSystem) {
    for e in &trace.events {
        eprintln!(
            "degraded: {:?} -> {} after {} attempt(s) (+{:.0?} virtual delay)",
            e.component, e.fallback, e.attempts, e.delay
        );
    }
    if let Some(counters) = system.fallback_counters() {
        if counters.is_empty() {
            eprintln!("fallbacks: none (served on the primary path)");
        } else {
            let parts: Vec<String> =
                counters.iter().map(|(label, n)| format!("{label}={n}")).collect();
            eprintln!("fallbacks: {}", parts.join(" "));
        }
    }
}

fn parse_retriever(name: &str) -> Result<RetrieverKind, String> {
    match name {
        "openai" | "hashed" => Ok(RetrieverKind::OpenAiSim),
        "sbert" => Ok(RetrieverKind::Sbert),
        "dpr" => Ok(RetrieverKind::Dpr),
        "bm25" => Ok(RetrieverKind::Bm25),
        other => Err(format!("unknown retriever `{other}` (openai|sbert|dpr|bm25)")),
    }
}

fn parse_llm(name: &str) -> Result<LlmProfile, String> {
    match name {
        "gpt4" => Ok(LlmProfile::gpt4()),
        "gpt4o-mini" | "mini" => Ok(LlmProfile::gpt4o_mini()),
        "gpt3.5" | "gpt35" => Ok(LlmProfile::gpt35_turbo()),
        "unifiedqa" => Ok(LlmProfile::unifiedqa_3b()),
        other => Err(format!("unknown llm `{other}` (gpt4|gpt4o-mini|gpt3.5|unifiedqa)")),
    }
}

/// `sage segment` — show the semantic chunks of a corpus file.
pub fn segment(flags: &Flags) -> Result<(), String> {
    let corpus = load_corpus(flags.require("file")?)?;
    let threshold: f32 = flags.get_parse("threshold", 0.55)?;
    let coarse: usize = flags.get_parse("coarse", 400)?;
    let chunks = if flags.has("naive") {
        let tokens: usize = flags.get_parse("naive", 200).unwrap_or(200).max(1);
        SentenceSegmenter { max_tokens: tokens }.segment(&corpus[0])
    } else {
        let segmenter = SemanticSegmenter::with_params(
            resolve_models(flags)?.segmentation.clone(),
            threshold,
            coarse,
        );
        segmenter.segment(&corpus[0])
    };
    for (i, chunk) in chunks.iter().enumerate() {
        println!("[{i:>3}] ({} tokens) {chunk}", sage::text::count_tokens(chunk));
    }
    eprintln!("{} chunks", chunks.len());
    Ok(())
}

/// `sage ask` — answer a question over a corpus file.
pub fn ask(flags: &Flags) -> Result<(), String> {
    let corpus = load_corpus(flags.require("file")?)?;
    let question = flags.require("question")?;
    let retriever = parse_retriever(flags.get_or("retriever", "openai"))?;
    let profile = parse_llm(flags.get_or("llm", "gpt4o-mini"))?;
    let config = if flags.has("naive") { SageConfig::naive_rag() } else { SageConfig::sage() };

    let mut system = RagSystem::build(resolve_models(flags)?, retriever, config, profile, &corpus);
    apply_resilience(flags, &mut system)?;
    apply_telemetry(flags, &mut system);
    let shards: u32 = flags.get_parse("shards", 1u32)?;
    if shards > 1 {
        system.enable_sharding(shards, parse_quorum(flags)?);
    }
    let result = system.answer_open(question);
    println!("{}", result.answer.text);
    eprintln!(
        "confidence {:.2} | {} chunks | {} feedback rounds | {} tokens | ${:.6}",
        result.answer.confidence,
        result.selected.len(),
        result.feedback_rounds,
        result.cost.total_tokens(),
        result.cost.dollars(profile.prices),
    );
    if flags.has("show-context") {
        for &id in &result.selected {
            eprintln!("  [ctx {id}] {}", system.chunks()[id]);
        }
    }
    report_degradation(&result.degraded, &system);
    report_telemetry(flags, &system, profile)?;
    Ok(())
}

/// `sage eval` — run a method over a generated dataset and print metrics.
pub fn eval(flags: &Flags) -> Result<(), String> {
    let dataset_name = flags.get_or("dataset", "quality");
    let docs: usize = flags.get_parse("docs", 6)?;
    let questions: usize = flags.get_parse("questions", 4)?;
    let seed: u64 = flags.get_parse("seed", 0xC11u64)?;
    let cfg = SizeConfig { num_docs: docs.max(1), questions_per_doc: questions.max(1), seed };
    let dataset = match dataset_name {
        "quality" => quality::generate(cfg),
        "qasper" => qasper::generate(cfg),
        "narrativeqa" => narrativeqa::generate(cfg),
        other => return Err(format!("unknown dataset `{other}` (quality|qasper|narrativeqa)")),
    };
    let retriever = parse_retriever(flags.get_or("retriever", "openai"))?;
    let method = match flags.get_or("method", "sage") {
        "sage" => Method::Sage(retriever),
        "naive" => Method::NaiveRag(retriever),
        "raptor" => Method::Raptor,
        "title-abstract" => Method::TitleAbstract,
        "bm25-bert" => Method::Bm25Bert,
        "summarize" => Method::RecursiveSummary,
        other => {
            return Err(format!(
                "unknown method `{other}` (sage|naive|raptor|title-abstract|bm25-bert|summarize)"
            ))
        }
    };
    let profile = parse_llm(flags.get_or("llm", "gpt4o-mini"))?;

    eprintln!(
        "evaluating {} on {dataset_name} ({} docs, {} questions, {} tokens)...",
        method.label(),
        dataset.documents.len(),
        dataset.tasks.len(),
        dataset.corpus_tokens()
    );
    let s = evaluate(method, resolve_models(flags)?, profile, &dataset);
    println!("method            {}", s.label);
    println!("llm               {}", s.llm);
    println!("questions         {}", s.n);
    if s.accuracy > 0.0 {
        println!("accuracy          {:.2}%", 100.0 * s.accuracy);
        println!("accuracy (hard)   {:.2}%", 100.0 * s.hard_accuracy);
    }
    if s.rouge > 0.0 {
        println!("ROUGE-L           {:.2}%", 100.0 * s.rouge);
        println!("BLEU-1            {:.2}%", 100.0 * s.bleu1);
        println!("BLEU-4            {:.2}%", 100.0 * s.bleu4);
        println!("METEOR            {:.2}%", 100.0 * s.meteor);
        println!("F1-Match          {:.2}%", 100.0 * s.f1);
    }
    println!("total tokens      {}", s.cost.total_tokens());
    println!("total cost        ${:.6}", s.dollars);
    println!("cost efficiency   {:.2}", s.efficiency());
    Ok(())
}

/// `sage soak` — replay a seeded open-loop arrival process against a
/// built system through admission control and per-query deadline budgets,
/// on a virtual clock. The event log (one line per arrival outcome) goes
/// to stdout so two runs with the same seed can be diffed bit-for-bit;
/// the summary and any invariant violations go to stderr. Exits nonzero
/// when an invariant is violated, so CI can gate on it.
///
/// Corpus: `--file <path>` with `--question "..."` replays one question
/// over a user corpus; otherwise a generated QuALITY-analog corpus
/// (`--docs N`) supplies both documents and questions. Faults compose:
/// `--faults`/`--fault-seed`/`--resilience`/`--hnsw` work exactly as in
/// `sage ask`.
pub fn soak(flags: &Flags) -> Result<(), String> {
    if flags.has("live") {
        return live_soak(flags);
    }
    let (corpus, questions): (Vec<String>, Vec<String>) = match flags.get("file") {
        Some(path) if !path.is_empty() => {
            let corpus = load_corpus(path)?;
            let question = flags
                .require("question")
                .map_err(|_| "--file needs --question \"...\" (replayed per arrival)".to_string())?;
            (corpus, vec![question.to_string()])
        }
        _ => {
            let docs: usize = flags.get_parse("docs", 2usize)?;
            let seed: u64 = flags.get_parse("seed", 42u64)?;
            let dataset = quality::generate(SizeConfig {
                num_docs: docs.max(1),
                questions_per_doc: 4,
                seed,
            });
            let corpus: Vec<String> = dataset.documents.iter().map(|d| d.text()).collect();
            let questions: Vec<String> =
                dataset.tasks.iter().map(|t| t.item.question.clone()).collect();
            (corpus, questions)
        }
    };

    let deadline_ms: u64 = flags.get_parse("deadline-ms", 8_000u64)?;
    let token_budget: u64 = flags.get_parse("token-budget", 50_000u64)?;
    let cfg = SoakConfig {
        seed: flags.get_parse("seed", 42u64)?,
        duration: std::time::Duration::from_secs_f64(flags.get_parse("duration", 30.0f64)?),
        qps: flags.get_parse("qps", 4.0f64)?,
        capacity: flags.get_parse("capacity", 8usize)?,
        concurrency: flags.get_parse("concurrency", 2usize)?,
        shards: flags.get_parse("shards", 1u32)?,
        exec_workers: flags.get_parse("exec-workers", 1usize)?,
        budget: if flags.has("no-budget") {
            None
        } else {
            Some(QueryBudget::new(std::time::Duration::from_millis(deadline_ms), token_budget))
        },
        ..SoakConfig::default()
    };

    let retriever = parse_retriever(flags.get_or("retriever", "openai"))?;
    let profile = parse_llm(flags.get_or("llm", "gpt4o-mini"))?;
    let mut system =
        RagSystem::build(resolve_models(flags)?, retriever, SageConfig::sage(), profile, &corpus);
    apply_resilience(flags, &mut system)?;
    apply_telemetry(flags, &mut system);
    if cfg.shards > 1 {
        system.enable_sharding(cfg.shards, parse_quorum(flags)?);
    }

    eprintln!(
        "soak: seed {} | {:.0?} virtual @ {} qps | capacity {} | {} server(s){}{} | {}",
        cfg.seed,
        cfg.duration,
        cfg.qps,
        cfg.capacity,
        cfg.concurrency,
        if cfg.exec_workers > 1 {
            format!(" | {} exec workers", cfg.exec_workers)
        } else {
            String::new()
        },
        match system.shard_fanout() {
            Some(f) => format!(" | {} shards (quorum {})", f.shards, f.quorum),
            None => String::new(),
        },
        match cfg.budget {
            Some(b) => format!("deadline {:.0?}, {} tokens", b.deadline, b.max_tokens),
            None => "no budget".to_string(),
        }
    );
    let report = run_soak(&system, &questions, &cfg);
    for line in &report.log {
        println!("{line}");
    }
    eprint!("{}", report.summary());
    report_telemetry(flags, &system, profile)?;

    let max_shed: f64 = flags.get_parse("max-shed-rate", 0.9f64)?;
    let violations = report.check_invariants(&cfg, max_shed);
    // One machine-readable summary line closes the stdout stream; it is a
    // pure function of the report, so diffing two runs still works.
    println!("{}", report.json_summary(&violations));
    if violations.is_empty() {
        Ok(())
    } else {
        Err(format!("soak invariants violated: {}", violations.join("; ")))
    }
}

/// `sage soak --live` — drive the live-corpus writer through a seeded
/// stream of upsert/delete batches interleaved with queries, optionally
/// under a crash plan injected at the commit write barriers. Every
/// injected crash is followed by a recovery drill (reopen, verify epoch
/// and digest, retry the batch). The event log goes to stdout — it
/// contains no wall-clock times or paths, so two runs with the same seeds
/// are byte-identical even in different `--live-dir`s; the summary goes
/// to stderr. Exits nonzero on invariant violations.
fn live_soak(flags: &Flags) -> Result<(), String> {
    let seed: u64 = flags.get_parse("seed", 42u64)?;
    let dir = match flags.get("live-dir") {
        Some(d) if !d.is_empty() => std::path::PathBuf::from(d),
        _ => std::env::temp_dir().join(format!("sage-live-soak-{seed}")),
    };
    let crash_seed: u64 = flags.get_parse("crash-seed", 7u64)?;
    let crash = match flags.get("crash") {
        Some(spec) if !spec.is_empty() => CrashPlan::parse_spec(spec, crash_seed)
            .map_err(|e| format!("bad --crash spec: {e}"))?,
        _ => CrashPlan::none(),
    };
    let retriever = LiveRetrieverKind::parse(flags.get_or("retriever", "hashed"))
        .ok_or_else(|| "bad --retriever for --live (hashed|hnsw|bm25)".to_string())?;
    let cfg = LiveSoakConfig {
        seed,
        commits: flags.get_parse("ops", 24usize)?,
        batch: flags.get_parse("batch", 4usize)?,
        doc_pool: flags.get_parse("docs", 16usize)?,
        queries_per_commit: flags.get_parse("queries", 2usize)?,
        crash,
        live: LiveConfig { retriever, ..LiveConfig::default() },
    };
    eprintln!(
        "live soak: seed {} | {} commits x {} ops | pool {} | retriever {} | crash seed {}",
        cfg.seed,
        cfg.commits,
        cfg.batch,
        cfg.doc_pool,
        retriever.label(),
        crash.seed(),
    );
    let report = run_live_soak(&dir, &cfg).map_err(|e| format!("live soak failed: {e}"))?;
    print!("{}", report.log);
    println!("{}", report.json_summary());
    eprintln!("{}", report.summary());
    if report.violations.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "live soak invariants violated: {}",
            report.violations.join("; ")
        ))
    }
}

/// `sage lint` — run the workspace static analyzer (`sage-lint`) over a
/// source tree. Exits nonzero when violations survive suppression or
/// when the `--baseline` ratchet deviates, so `scripts/check.sh` and CI
/// can gate on it. `--format sarif` emits SARIF 2.1.0 for code-scanning
/// viewers, `--validate-sarif` parses such a file back as a
/// well-formedness smoke, and `--metrics-out` exports per-phase analysis
/// cost for `sage top`.
pub fn lint(flags: &Flags) -> Result<(), String> {
    let root = flags.get_or("root", ".");

    // Standalone mode: check a previously emitted SARIF file for the
    // invariants the renderer promises, then exit.
    if let Some(path) = flags.get("validate-sarif").filter(|p| !p.is_empty()) {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read SARIF file {path}: {e}"))?;
        let n = sage::lint::sarif::validate(&text).map_err(|e| format!("{path}: {e}"))?;
        println!("{path}: well-formed SARIF with {n} result(s)");
        return Ok(());
    }

    let analysis = sage::lint::workspace_analysis(std::path::Path::new(root))
        .map_err(|e| format!("cannot scan {root}: {e}"))?;
    let report = &analysis.report;
    if report.files_scanned == 0 {
        return Err(format!("{root} has no workspace sources (expected src/ or crates/*/src/)"));
    }

    if let Some(path) = flags.get("callgraph").filter(|p| !p.is_empty()) {
        std::fs::write(path, analysis.graph.to_json(&analysis.workspace))
            .map_err(|e| format!("cannot write call graph {path}: {e}"))?;
        eprintln!("wrote call graph -> {path}");
    }
    if let Some(path) = flags.get("metrics-out").filter(|p| !p.is_empty()) {
        std::fs::write(path, sage::telemetry::export::lint_phases(&report.timings))
            .map_err(|e| format!("cannot write metrics file {path}: {e}"))?;
        eprintln!("wrote lint metrics -> {path}");
    }
    if flags.has("timings") {
        for (phase, ns) in &report.timings {
            eprintln!("lint phase {phase:<22} {:8.1}ms", *ns as f64 / 1e6);
        }
    }

    // `--json` predates `--format` and stays as an alias.
    let format = if flags.has("json") { "json" } else { flags.get_or("format", "human") };
    match format {
        "human" => print!("{}", sage::lint::render_human(report)),
        "json" => println!("{}", sage::lint::render_json(report)),
        "sarif" => println!("{}", sage::lint::sarif::render(report)),
        other => return Err(format!("unknown --format `{other}` (expected human, json, or sarif)")),
    }

    if let Some(path) = flags.get("baseline").filter(|p| !p.is_empty()) {
        if flags.has("update-baseline") {
            std::fs::write(path, sage::lint::ratchet::render(report))
                .map_err(|e| format!("cannot write baseline {path}: {e}"))?;
            eprintln!("wrote baseline -> {path}");
        } else {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read baseline {path}: {e}"))?;
            let baseline = sage::lint::ratchet::parse(&text).map_err(|e| format!("{path}: {e}"))?;
            let errors = sage::lint::ratchet::compare(&baseline, report);
            if !errors.is_empty() {
                return Err(format!("lint ratchet failed:\n  {}", errors.join("\n  ")));
            }
            eprintln!("ratchet ok: per-rule counts match {path}");
        }
    }

    if report.is_clean() {
        Ok(())
    } else {
        Err(format!("{} lint violation(s)", report.violations.len()))
    }
}

/// `sage demo` — the quickstart corpus, end to end.
pub fn demo() -> Result<(), String> {
    let corpus = vec![
        "Whiskers is a playful tabby cat. He has bright green eyes. His fur is mostly gray.\n\
         The morning fog settled over the valley, as it had for many years.\n\
         Dorinwick was well known in the region. He lives in Ashford. He works as a baker."
            .to_string(),
    ];
    let system = RagSystem::build(
        models(),
        RetrieverKind::OpenAiSim,
        SageConfig::sage(),
        LlmProfile::gpt4o_mini(),
        &corpus,
    );
    for q in [
        "What is the color of Whiskers's eyes?",
        "Where does Dorinwick live?",
        "What is Dorinwick's profession?",
    ] {
        let r = system.answer_open(q);
        println!("Q: {q}\nA: {}\n", r.answer.text);
    }
    Ok(())
}

/// Optional `--quorum N` (None defers to the majority default).
fn parse_quorum(flags: &Flags) -> Result<Option<u32>, String> {
    match flags.get("quorum") {
        Some(q) if !q.is_empty() => {
            q.parse::<u32>().map(Some).map_err(|_| format!("bad --quorum {q:?}: want an integer"))
        }
        _ => Ok(None),
    }
}

/// `sage explain` — print the query plan a question would execute:
/// resolved stages, the per-slot middleware order, and the rewrite each
/// brownout rung applies. `--shards N [--quorum Q]` resolves the
/// scatter-gather fan-out the retrieval slots would execute, exactly as
/// [`RagSystem::enable_sharding`] would arm it. `--concurrency N` appends
/// the cross-query slot schedule N in-flight copies of the plan would
/// execute (coalesced same-stage batch ops, deterministic worker
/// assignment). Pure plan resolution — no models are trained and no index
/// is built.
pub fn explain(flags: &Flags) -> Result<(), String> {
    let retriever = parse_retriever(flags.get_or("retriever", "openai"))?;
    let config = if flags.has("naive") { SageConfig::naive_rag() } else { SageConfig::sage() };
    if let Some(q) = flags.get("question").filter(|q| !q.is_empty()) {
        println!("question: {q}");
    }
    println!(
        "config: {} | retriever: {}",
        if flags.has("naive") { "naive-rag" } else { "sage" },
        flags.get_or("retriever", "openai"),
    );
    let mut plan = QueryPlan::for_kind(&config, retriever);
    let shards: u32 = flags.get_parse("shards", 1u32)?;
    if shards > 1 {
        plan = plan
            .with_fanout(Fanout::new(shards, parse_quorum(flags)?, CostModel::default().search_time));
    }
    print!("{}", plan.explain());
    // `--concurrency N` additionally renders the cross-query schedule the
    // slot scheduler would execute for N in-flight copies of this plan:
    // per tick, the coalesced same-stage batch op and the deterministic
    // (seeded round-robin) worker assignment.
    let concurrency: usize = flags.get_parse("concurrency", 1usize)?;
    if concurrency > 1 {
        let workers: usize = flags.get_parse("exec-workers", 2usize)?;
        println!();
        print!("{}", sage::core::exec::render_schedule(&plan, concurrency, workers, 0x5A9E_0001));
    }
    Ok(())
}

/// `sage top --from <metrics>` — summarize a Prometheus text dump (as
/// written by `--metrics-out`) into a one-screen serving dashboard:
/// query/stage latency quantiles, shed and brownout pressure, cost.
pub fn top(flags: &Flags) -> Result<(), String> {
    let path = flags
        .require("from")
        .map_err(|_| "sage top needs --from <metrics-file> (see --metrics-out)".to_string())?;
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read metrics file {path}: {e}"))?;
    let scrape = sage::obs::parse_scrape(&text);
    print!("{}", sage::obs::dashboard(&scrape));
    Ok(())
}

/// `sage report` — run a recorded soak and emit one diagnostics bundle:
/// the flight-recorder tail, the SLO burn-rate report, the telemetry
/// histograms and cost ledger, and a reconciliation section proving the
/// layers agree (recorder captures vs the observation stream, SLO shed /
/// brownout counts vs the admission counters, ledger tokens vs per-query
/// observations). The bundle is one JSON object on stdout (or `--out`).
pub fn report(flags: &Flags) -> Result<(), String> {
    let docs: usize = flags.get_parse("docs", 2usize)?;
    let seed: u64 = flags.get_parse("seed", 42u64)?;
    let dataset = quality::generate(SizeConfig { num_docs: docs.max(1), questions_per_doc: 4, seed });
    let corpus: Vec<String> = dataset.documents.iter().map(|d| d.text()).collect();
    let questions: Vec<String> = dataset.tasks.iter().map(|t| t.item.question.clone()).collect();

    let deadline_ms: u64 = flags.get_parse("deadline-ms", 8_000u64)?;
    let token_budget: u64 = flags.get_parse("token-budget", 50_000u64)?;
    let cfg = SoakConfig {
        seed,
        duration: std::time::Duration::from_secs_f64(flags.get_parse("duration", 30.0f64)?),
        qps: flags.get_parse("qps", 4.0f64)?,
        capacity: flags.get_parse("capacity", 8usize)?,
        concurrency: flags.get_parse("concurrency", 2usize)?,
        budget: Some(QueryBudget::new(std::time::Duration::from_millis(deadline_ms), token_budget)),
        ..SoakConfig::default()
    };
    let slo_spec = match flags.get("slo") {
        Some(spec) if !spec.is_empty() => {
            SloSpec::parse(spec).map_err(|e| format!("bad --slo spec: {e}"))?
        }
        _ => SloSpec::default(),
    };
    let recorder_cfg = RecorderConfig {
        capacity: flags.get_parse("recorder-capacity", RecorderConfig::default().capacity)?,
        ..RecorderConfig::default()
    };

    let retriever = parse_retriever(flags.get_or("retriever", "openai"))?;
    let profile = parse_llm(flags.get_or("llm", "gpt4o-mini"))?;
    let mut system =
        RagSystem::build(resolve_models(flags)?, retriever, SageConfig::sage(), profile, &corpus);
    let hub = system.enable_telemetry();
    system.enable_recorder(recorder_cfg);

    // The shed/brownout counters are process-global; reconcile against
    // this run's deltas, not absolute values.
    use sage::telemetry::metrics::{BROWNOUT_TOTAL, SHED_TOTAL};
    let shed0: Vec<u64> = (0..Priority::COUNT).map(|i| SHED_TOTAL.get(i)).collect();
    let brownout0 = BROWNOUT_TOTAL.total();

    eprintln!(
        "report: seed {} | {:.0?} virtual @ {} qps | recorder capacity {}",
        cfg.seed, cfg.duration, cfg.qps, recorder_cfg.capacity
    );
    let soak = run_soak(&system, &questions, &cfg);
    let slo = sage::obs::evaluate_slo(&slo_spec, &soak.obs);
    if let Some(t) = slo.alert_trace() {
        // Alert history travels with the trace stream.
        hub.push_trace(t);
    }

    let shed_delta: Vec<u64> =
        (0..Priority::COUNT).map(|i| SHED_TOTAL.get(i) - shed0[i]).collect();
    let brownout_delta = BROWNOUT_TOTAL.total() - brownout0;
    let stats = system.recorder_stats().ok_or("recorder detached mid-run")?;
    let flagged_total = soak.obs.iter().filter(|o| o.flagged()).count();
    let flagged_retained = system
        .with_recorder(|r| r.records().iter().filter(|rec| rec.obs.flagged()).count())
        .unwrap_or(0);
    let brownout_steps: u64 =
        soak.obs.iter().filter(|o| o.outcome == sage::obs::Outcome::Done).map(|o| u64::from(o.brownout)).sum();
    let obs_tokens: u64 = soak.obs.iter().map(|o| o.tokens).sum();
    let ledger = hub.ledger().total();
    let reconciliation = sage::obs::Reconciliation {
        recorder_captures_match: stats.captured == soak.obs.len() as u64,
        flagged_retained: flagged_retained == flagged_total.min(recorder_cfg.capacity),
        shed_counters_match: shed_delta.iter().sum::<u64>() == soak.shed_total()
            && slo.shed_seen == soak.shed_total() + soak.expired as u64,
        brownout_counters_match: brownout_delta == brownout_steps
            && slo.browned_out_seen == soak.browned_out(),
        ledger_tokens_match: ledger.total_tokens() == obs_tokens,
    };

    let mut bundle = sage::obs::Bundle::new();
    bundle.push_raw(
        "run",
        format!(
            "{{\"seed\": {}, \"qps\": {}, \"duration_s\": {}, \"capacity\": {}, \
             \"concurrency\": {}, \"deadline_ms\": {deadline_ms}, \"docs\": {docs}}}",
            cfg.seed,
            cfg.qps,
            cfg.duration.as_secs(),
            cfg.capacity,
            cfg.concurrency
        ),
    );
    bundle.push_raw("soak", soak.json_summary(&soak.check_invariants(&cfg, 1.0)));
    bundle.push_u64("recorder_captured", stats.captured);
    bundle.push_u64("recorder_evicted", stats.evicted);
    bundle.push_u64("recorder_recycled", stats.recycled);
    bundle.push_u64("recorder_windows_sealed", stats.windows_sealed);
    bundle.push_jsonl("recorder_tail", &system.recorder_jsonl().unwrap_or_default());
    bundle.push_str("slo_summary", &slo.summary());
    bundle.push_raw(
        "slo_alerts",
        format!(
            "[{}]",
            slo.alerts
                .iter()
                .map(|a| format!(
                    "{{\"at_us\": {}, \"objective\": \"{}\", \"short_burn\": {:.4}, \
                     \"long_burn\": {:.4}}}",
                    a.at_us,
                    a.objective.label(),
                    a.short_burn,
                    a.long_burn
                ))
                .collect::<Vec<_>>()
                .join(", ")
        ),
    );
    bundle.push_histogram("query_latency_ns", &hub.query_snapshot());
    bundle.push_u64("ledger_calls", ledger.calls);
    bundle.push_u64("ledger_tokens", ledger.total_tokens());
    bundle.push_raw("reconciliation", reconciliation.to_json());
    let rendered = bundle.render();

    match flags.get("out").filter(|p| !p.is_empty()) {
        Some(path) => {
            std::fs::write(path, &rendered)
                .map_err(|e| format!("cannot write bundle to {path}: {e}"))?;
            eprintln!("wrote diagnostics bundle -> {path}");
        }
        None => print!("{rendered}"),
    }
    if let Some(path) = flags.get("metrics-out").filter(|p| !p.is_empty()) {
        let prices = sage::telemetry::export::Prices {
            input_per_token: profile.prices.input_per_token,
            output_per_token: profile.prices.output_per_token,
        };
        let mut text = sage::telemetry::export::prometheus(&hub, Some(prices));
        text.push_str(&slo.gauges());
        std::fs::write(path, text).map_err(|e| format!("cannot write metrics file {path}: {e}"))?;
        eprintln!("wrote metrics (with SLO gauges) -> {path}");
    }
    eprint!("{}", slo.summary());
    if !reconciliation.clean() {
        return Err(format!("report reconciliation failed: {}", reconciliation.to_json()));
    }
    if slo.alerting() && flags.has("strict-slo") {
        return Err(format!("{} SLO burn alert(s) fired", slo.alerts.len()));
    }
    Ok(())
}

/// `sage scenarios run <grid.toml>` — execute a declarative scenario
/// matrix and diff the measured rows against a committed baseline under
/// per-metric tolerance bands. Exits nonzero on regression. `--update`
/// (or a missing baseline) rewrites the baseline instead of diffing.
pub fn scenarios(flags: &Flags) -> Result<(), String> {
    let file = flags
        .require("file")
        .map_err(|_| "usage: sage scenarios run <scenarios.toml> [--baseline F] [--filter S] [--update]".to_string())?;
    let text = std::fs::read_to_string(file)
        .map_err(|e| format!("cannot read scenario grid {file}: {e}"))?;
    let grid = parse_scenarios(&text).map_err(|e| format!("{file}: {e}"))?;
    let filter = flags.get("filter").filter(|f| !f.is_empty());
    let cells: Vec<&ScenarioCell> = grid
        .cells
        .iter()
        .filter(|c| filter.is_none_or(|f| c.name.contains(f)))
        .collect();
    if cells.is_empty() {
        return Err(match filter {
            Some(f) => format!("no cell in {file} matches --filter {f}"),
            None => format!("{file} defines no cells"),
        });
    }

    let models = resolve_models(flags)?;
    let mut rows = Vec::new();
    for cell in &cells {
        eprintln!(
            "scenario {}: {} x{} | {} | faults `{}` | {}s @ {} qps",
            cell.name, cell.dataset, cell.docs, cell.retriever, cell.faults, cell.duration_s,
            cell.qps
        );
        rows.push(run_cell(models, cell)?);
    }
    let rendered = sage::obs::render_rows(&rows);
    if let Some(path) = flags.get("out").filter(|p| !p.is_empty()) {
        std::fs::write(path, &rendered).map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("wrote measured rows -> {path}");
    } else {
        print!("{rendered}");
    }
    if let Some(path) = flags.get("metrics-out").filter(|p| !p.is_empty()) {
        let mut text = String::from(
            "# HELP sage_scenario_value Scenario-matrix measured metrics\n# TYPE sage_scenario_value gauge\n",
        );
        for row in &rows {
            let cell_label = sage::telemetry::export::escape_label_value(&row.name);
            for (metric, value) in &row.metrics {
                text.push_str(&format!(
                    "sage_scenario_value{{cell=\"{cell_label}\",metric=\"{}\"}} {value}\n",
                    sage::telemetry::export::escape_label_value(metric)
                ));
            }
        }
        std::fs::write(path, text).map_err(|e| format!("cannot write metrics file {path}: {e}"))?;
        eprintln!("wrote scenario gauges -> {path}");
    }

    let baseline_path = flags.get_or("baseline", "BENCH_scenarios.json");
    let bootstrap = !std::path::Path::new(baseline_path).exists();
    if flags.has("update") || bootstrap {
        if filter.is_some() {
            return Err("refusing to write a filtered run as the baseline (drop --filter)".to_string());
        }
        std::fs::write(baseline_path, &rendered)
            .map_err(|e| format!("cannot write baseline {baseline_path}: {e}"))?;
        eprintln!(
            "{} baseline {baseline_path} ({} cell(s))",
            if bootstrap { "bootstrapped" } else { "updated" },
            rows.len()
        );
        return Ok(());
    }
    let baseline_text = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("cannot read baseline {baseline_path}: {e}"))?;
    let baseline =
        sage::obs::parse_rows(&baseline_text).map_err(|e| format!("{baseline_path}: {e}"))?;
    let diffs = sage::obs::diff_rows(&baseline, &rows, &grid.tolerance, filter.is_some());
    if diffs.is_empty() {
        eprintln!(
            "scenarios: {} cell(s) within tolerance of {baseline_path}",
            rows.len()
        );
        Ok(())
    } else {
        for line in &diffs {
            eprintln!("regression: {line}");
        }
        Err(format!(
            "{} metric(s) outside the committed trajectory in {baseline_path} \
             (re-baseline with --update if intentional)",
            diffs.len()
        ))
    }
}

/// Print usage.
pub fn print_help() {
    println!(
        "sage — SAGE precise-retrieval RAG (ICDE 2025 reproduction)

USAGE:
  sage segment --file <path> [--threshold 0.55] [--coarse 400] [--naive [tokens]]
  sage ask     --file <path> --question \"...\" [--retriever openai|sbert|dpr|bm25]
               [--llm gpt4|gpt4o-mini|gpt3.5|unifiedqa] [--naive] [--show-context]
               [--telemetry] [--trace-out <path>] [--metrics-out <path>]
               [--shards N] [--quorum Q]   # serve through scatter-gather
               # fan-out (merged results are identical to unsharded)
  sage eval    [--dataset quality|qasper|narrativeqa] [--method sage|naive|raptor|
               title-abstract|bm25-bert|summarize] [--docs N] [--questions M]
               [--retriever R] [--llm L] [--seed S]
  sage index   --file <path> --out <index> [--retriever R] [--naive]
  sage query   --index <index> --question \"...\" [--llm L]
  sage train   --out <path>         # save the trained model bundle
  sage soak    [--seed 42] [--qps 4] [--duration 30] [--capacity 8]
               [--concurrency 2] [--exec-workers 1] [--deadline-ms 8000]
               [--token-budget 50000]
               [--no-budget] [--docs N | --file <path> --question \"...\"]
               [--max-shed-rate 0.9] [--faults <spec>] [--fault-seed <n>]
               [--shards N] [--quorum Q]   # scatter-gather serving with
               # per-shard server pools; shard faults via --resilience
               # --faults \"shard:<idx>:<kind>[:<rate>]\" (kinds: slow|down|
               # transient|timeout|corrupt|panic)
  sage soak --live [--live-dir <dir>] [--ops 24] [--batch 4] [--docs 16]
               [--queries 2] [--seed 42] [--retriever hashed|hnsw|bm25]
               [--crash <spec>] [--crash-seed 7]
  sage lint    [--root <path>] [--format human|json|sarif] [--json]
               [--baseline <path>] [--update-baseline] [--callgraph <path>]
               [--timings] [--metrics-out <path>] [--validate-sarif <path>]
  sage explain [\"question\"] [--retriever R] [--naive] [--shards N] [--quorum Q]
               [--concurrency N [--exec-workers 2]]
               # print the resolved query plan: stages, middleware order,
               # the rewrite each brownout rung applies, (with --shards)
               # the scatter-gather fan-out of the retrieval slots, and
               # (with --concurrency) the cross-query slot schedule: per
               # tick, the coalesced same-stage batch op and the seeded
               # round-robin worker assignment
  sage top     --from <metrics>           # dashboard over a Prometheus dump
  sage report  [--seed 42] [--qps 4] [--duration 30] [--docs N]
               [--slo <spec>] [--recorder-capacity 256] [--out <bundle>]
               [--metrics-out <path>] [--strict-slo]
  sage scenarios run <grid.toml> [--baseline <path>] [--filter <substr>]
               [--update] [--out <path>] [--metrics-out <path>]
  sage demo
  sage help

All commands accept --models <path> to reuse a saved bundle instead of
training at startup.

RESILIENCE (ask, query):
  --resilience          guard component boundaries (retry + circuit breaker)
                        and degrade instead of failing
  --faults <spec>       inject deterministic faults, e.g.
                        \"reader=transient:0.5,embedder=timeout:1.0\"
                        (components: embedder|index|reranker|reader;
                         kinds: transient|timeout|corrupt|panic)
  --fault-seed <n>      seed for the injection stream (default 0)
  --hnsw                serve dense retrieval through an ANN (HNSW) tier
                        that degrades to the exact flat scan on failure
  Degraded-mode events and fallback counters are reported on stderr.

TELEMETRY (ask, query):
  --telemetry           print a serving-path summary on stderr after the
                        answer: per-stage latency histograms (p50/p90/p99),
                        the token/dollar cost ledger, and counters
  --trace-out <path>    write per-query span traces as JSON Lines
                        (one trace object per query; spans carry parent
                        links, start/duration in ns, and key=value fields)
  --metrics-out <path>  write a Prometheus text-format dump of all
                        counters, histograms, and cost gauges
  Any telemetry flag attaches the recorder; overhead when none is given
  is a single relaxed atomic load per instrumentation site.

SOAK:
  sage soak replays a seeded open-loop arrival process (exponential
  gaps, weighted priority classes) against a built system through a
  bounded admission queue and per-query deadline budgets, entirely on a
  virtual clock: same seed, same log, bit for bit. The event log goes
  to stdout (diff two runs to check determinism); the summary — sheds
  by class, brownout ladder histogram, p50/p99 sojourn — goes to
  stderr. Queue waits consume each query's deadline, so overload pushes
  queries down the brownout ladder (drop feedback -> shrink rerank ->
  skip rerank -> flat top-k) instead of failing them. Exits nonzero if
  a soak invariant is violated (panics, excess shed, out-of-order
  brownout, unbounded p99). Fault flags compose with the soak.
  --exec-workers N drives each virtual-time dispatch wave through the
  cross-query slot scheduler on N real threads; logs and reports stay
  byte-identical at every value (diff them to prove it).

LIVE SOAK:
  sage soak --live drives the live-corpus writer (epoch snapshots,
  incremental segment files + manifest) through a seeded stream of
  document upserts/deletes interleaved with retrieval queries. --crash
  injects deterministic crashes at the commit write barriers, e.g.
  \"pre-rename,post-tmp:0.5\" (points: pre-tmp|post-tmp|pre-rename|
  post-rename|pre-manifest-commit; bare point = always). Every injected
  crash is followed by a recovery drill: reopen, verify the store is at
  the last committed epoch with an identical content digest, retry.
  The stdout log carries no times or paths — same seeds, same bytes,
  even across different --live-dir. Exits nonzero if any invariant
  (recovery, snapshot isolation, hit validity, sublinear updates) is
  violated.

OBSERVABILITY:
  sage report runs a recorded soak and emits one diagnostics bundle
  (JSON): the flight recorder's tail-retained query records, the SLO
  burn-rate report, latency histograms and the cost ledger, plus a
  reconciliation section proving the layers agree. --slo takes a
  declarative spec, e.g. \"latency_ms=250,shed_rate=0.2,burn=2\"
  (keys: latency_ms|interactive_ms|shed_rate|brownout_rung|
  min_confidence|short_s|long_s|burn|budget; value `off` disables an
  objective). --metrics-out appends SLO burn gauges to the Prometheus
  dump; sage top --from <that file> renders the dashboard.

SCENARIOS:
  sage scenarios run <grid.toml> executes a declarative matrix of
  dataset x retriever x fault-plan x budget x load-shape cells
  ([defaults] / [[cell]] / [tolerance] sections) through the soak and
  eval machinery, renders one metrics row per cell, and diffs the rows
  against a committed baseline (default BENCH_scenarios.json) under
  per-metric relative tolerance bands. Exits nonzero on regression;
  --update (or a missing baseline) rewrites the baseline. Rows are
  virtual-clock quantities: same grid, same bytes.

LINT:
  sage lint walks src/ and crates/*/src/ under --root (default: the
  current directory) and enforces the workspace invariants: the token
  rules (no-print, no-panic-serving, deterministic-iteration,
  no-wallclock, layering, relaxed-atomics-confined, unwind-boundary,
  mutation-behind-writer, recorder-behind-obs) plus the whole-program
  rules built on the item parser and call graph: panic-reachability
  (serving entry points must not transitively reach a panic source
  outside a catch_unwind boundary), determinism-taint (wall-clock and
  hash-order values must not flow into serialized outputs), and
  stale-suppression (markers that no longer suppress anything are
  errors). Suppressions are inline comment markers carrying a
  justification (see DESIGN.md §9).
  --format human|json|sarif picks the output (--json is an alias for
  --format json; sarif emits SARIF 2.1.0). --baseline <path> enforces
  the lint-baseline.json ratchet (per-rule counts must match exactly,
  or carry a justification for slack); --update-baseline rewrites it.
  --callgraph <path> dumps the resolved call graph as deterministic
  JSON. --timings prints per-phase analysis cost; --metrics-out writes
  it as Prometheus gauges that `sage top` renders. --validate-sarif
  <path> re-parses an emitted SARIF file as a well-formedness smoke.
  Exit status is nonzero on violations or ratchet deviation.

Corpus files: paragraphs separated by blank lines."
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_retriever_accepts_all_kinds() {
        assert_eq!(parse_retriever("openai").unwrap(), RetrieverKind::OpenAiSim);
        assert_eq!(parse_retriever("sbert").unwrap(), RetrieverKind::Sbert);
        assert_eq!(parse_retriever("dpr").unwrap(), RetrieverKind::Dpr);
        assert_eq!(parse_retriever("bm25").unwrap(), RetrieverKind::Bm25);
        assert!(parse_retriever("faiss").is_err());
    }

    #[test]
    fn parse_llm_accepts_aliases() {
        assert_eq!(parse_llm("mini").unwrap().name, LlmProfile::gpt4o_mini().name);
        assert_eq!(parse_llm("gpt35").unwrap().name, LlmProfile::gpt35_turbo().name);
        assert!(parse_llm("claude").is_err());
    }

    #[test]
    fn load_corpus_unwraps_paragraphs() {
        let path = std::env::temp_dir().join("sage_cli_test_corpus.txt");
        std::fs::write(&path, "line one\nline two\n\nsecond para").unwrap();
        let corpus = load_corpus(path.to_str().unwrap()).unwrap();
        assert_eq!(corpus.len(), 1);
        assert_eq!(corpus[0], "line one line two\nsecond para");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resilience_flags_enable_guards_and_reject_bad_specs() {
        let models = TrainedModels::train(TrainBudget::tiny());
        let corpus = vec!["Whiskers is a playful tabby cat. He has bright green eyes.".to_string()];
        let mut system = RagSystem::build(
            &models,
            RetrieverKind::Bm25,
            SageConfig::sage(),
            LlmProfile::gpt4o_mini(),
            &corpus,
        );
        let argv = |items: &[&str]| -> Vec<String> { items.iter().map(|s| s.to_string()).collect() };

        // No flags: the layer stays off.
        let none = crate::args::parse_flags(&[]).unwrap();
        apply_resilience(&none, &mut system).unwrap();
        assert!(!system.resilience_enabled());

        // A fault spec implies resilience; counters start clean.
        let f = crate::args::parse_flags(&argv(&[
            "--faults",
            "reader=transient:0.5",
            "--fault-seed",
            "7",
        ]))
        .unwrap();
        apply_resilience(&f, &mut system).unwrap();
        assert!(system.resilience_enabled());
        assert!(system.fallback_counters().unwrap().is_empty());

        // Malformed specs surface as CLI errors, not panics.
        let bad = crate::args::parse_flags(&argv(&["--faults", "reader=warp:0.5"])).unwrap();
        assert!(apply_resilience(&bad, &mut system).is_err());
    }

    #[test]
    fn load_corpus_errors() {
        assert!(load_corpus("/nonexistent/definitely/missing.txt").is_err());
        let path = std::env::temp_dir().join("sage_cli_test_empty.txt");
        std::fs::write(&path, "   \n\n  ").unwrap();
        assert!(load_corpus(path.to_str().unwrap()).is_err());
        std::fs::remove_file(&path).ok();
    }
}
