//! Minimal `--flag value` / `--flag` parsing.

use std::collections::HashMap;

/// Parsed flags: `--key value` pairs plus bare `--switch`es (stored with an
/// empty value).
#[derive(Debug, Default)]
pub struct Flags {
    values: HashMap<String, String>,
}

impl Flags {
    /// String flag.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    /// String flag with a default.
    pub fn get_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.get(key).unwrap_or(default)
    }

    /// Required string flag.
    pub fn require(&self, key: &str) -> Result<&str, String> {
        self.get(key).ok_or_else(|| format!("missing required flag --{key}"))
    }

    /// Presence of a bare switch.
    pub fn has(&self, key: &str) -> bool {
        self.values.contains_key(key)
    }

    /// Numeric flag with a default.
    pub fn get_parse<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(raw) => raw.parse().map_err(|_| format!("invalid value for --{key}: {raw}")),
        }
    }
}

/// Parse `--flag [value]` sequences. A flag followed by another flag (or by
/// nothing) is a bare switch.
pub fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut flags = Flags::default();
    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        let Some(key) = arg.strip_prefix("--") else {
            return Err(format!("unexpected argument `{arg}` (flags start with --)"));
        };
        if key.is_empty() {
            return Err("empty flag `--`".to_string());
        }
        let value = match args.get(i + 1) {
            Some(next) if !next.starts_with("--") => {
                i += 1;
                next.clone()
            }
            _ => String::new(),
        };
        flags.values.insert(key.to_string(), value);
        i += 1;
    }
    Ok(flags)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_pairs_and_switches() {
        let f = parse_flags(&argv(&["--file", "x.txt", "--naive", "--docs", "5"])).unwrap();
        assert_eq!(f.get("file"), Some("x.txt"));
        assert!(f.has("naive"));
        assert_eq!(f.get_parse::<usize>("docs", 0).unwrap(), 5);
    }

    #[test]
    fn defaults_and_requirements() {
        let f = parse_flags(&argv(&["--question", "why?"])).unwrap();
        assert_eq!(f.get_or("llm", "gpt4o-mini"), "gpt4o-mini");
        assert!(f.require("question").is_ok());
        assert!(f.require("file").is_err());
    }

    #[test]
    fn rejects_positional_arguments() {
        assert!(parse_flags(&argv(&["oops"])).is_err());
    }

    #[test]
    fn invalid_numbers_error() {
        let f = parse_flags(&argv(&["--docs", "many"])).unwrap();
        assert!(f.get_parse::<usize>("docs", 1).is_err());
    }
}
