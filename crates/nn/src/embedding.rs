//! A sparse embedding table with mean-pooled lookups.
//!
//! The trainable sentence encoders (`sage-embed`'s SBERT/DPR analogs) map a
//! sentence to the mean of the embedding rows addressed by its hashed token
//! features, optionally sign-flipped (hash-kernel style). Training updates
//! only the rows that participated in a batch, so the table scales to large
//! bucket counts without dense optimizer state.

use crate::optim::sgd_update;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// `buckets x dim` embedding table with sparse SGD updates.
#[derive(Debug, Clone)]
pub struct EmbeddingTable {
    buckets: usize,
    dim: usize,
    rows: Vec<f32>,
}

impl EmbeddingTable {
    /// New table with small random entries (`±0.5/sqrt(dim)`), seeded.
    pub fn new(buckets: usize, dim: usize, seed: u64) -> Self {
        assert!(buckets > 0 && dim > 0);
        let mut rng = StdRng::seed_from_u64(seed);
        let bound = 0.5 / (dim as f32).sqrt();
        let rows = (0..buckets * dim).map(|_| rng.random_range(-bound..bound)).collect();
        Self { buckets, dim, rows }
    }

    /// Number of buckets.
    pub fn buckets(&self) -> usize {
        self.buckets
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The full table, row-major (serialization).
    pub fn rows_flat(&self) -> &[f32] {
        &self.rows
    }

    /// Rebuild from persisted parts. `None` on a size mismatch.
    pub fn from_parts(buckets: usize, dim: usize, rows: Vec<f32>) -> Option<Self> {
        if buckets == 0 || dim == 0 || rows.len() != buckets.checked_mul(dim)? {
            return None;
        }
        Some(Self { buckets, dim, rows })
    }

    /// Borrow one row.
    pub fn row(&self, bucket: u32) -> &[f32] {
        let b = bucket as usize;
        assert!(b < self.buckets, "bucket {b} out of range {}", self.buckets);
        // sage-lint: allow(panic-reachability) - the assert on the previous line proves b is inside the row table
        &self.rows[b * self.dim..(b + 1) * self.dim]
    }

    /// Mean-pool the rows addressed by `(bucket, sign)` features into `out`.
    /// With no features, `out` is zeroed.
    pub fn pool(&self, features: &[(u32, f32)], out: &mut [f32]) {
        assert_eq!(out.len(), self.dim);
        out.fill(0.0);
        if features.is_empty() {
            return;
        }
        for &(bucket, sign) in features {
            for (o, &v) in out.iter_mut().zip(self.row(bucket)) {
                *o += sign * v;
            }
        }
        let inv = 1.0 / features.len() as f32;
        for o in out {
            *o *= inv;
        }
    }

    /// Backpropagate a pooled-output gradient to the participating rows with
    /// an immediate SGD update. The pooled output was a mean, so each row
    /// receives `sign * grad / n`.
    pub fn apply_pooled_grad(&mut self, features: &[(u32, f32)], grad: &[f32], lr: f32) {
        assert_eq!(grad.len(), self.dim);
        if features.is_empty() {
            return;
        }
        let inv = 1.0 / features.len() as f32;
        let mut row_grad = vec![0.0; self.dim];
        for &(bucket, sign) in features {
            for (rg, &g) in row_grad.iter_mut().zip(grad) {
                *rg = sign * g * inv;
            }
            let b = bucket as usize * self.dim;
            sgd_update(&mut self.rows[b..b + self.dim], &row_grad, lr);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_of_single_feature_is_signed_row() {
        let t = EmbeddingTable::new(8, 4, 0);
        let mut out = vec![0.0; 4];
        t.pool(&[(3, 1.0)], &mut out);
        assert_eq!(out, t.row(3));
        t.pool(&[(3, -1.0)], &mut out);
        let neg: Vec<f32> = t.row(3).iter().map(|v| -v).collect();
        assert_eq!(out, neg);
    }

    #[test]
    fn pool_is_mean() {
        let t = EmbeddingTable::new(8, 2, 1);
        let mut out = vec![0.0; 2];
        t.pool(&[(0, 1.0), (1, 1.0)], &mut out);
        let want: Vec<f32> =
            t.row(0).iter().zip(t.row(1)).map(|(a, b)| (a + b) / 2.0).collect();
        for (o, w) in out.iter().zip(&want) {
            assert!((o - w).abs() < 1e-6);
        }
    }

    #[test]
    fn empty_features_zero_output() {
        let t = EmbeddingTable::new(4, 3, 2);
        let mut out = vec![9.0; 3];
        t.pool(&[], &mut out);
        assert_eq!(out, vec![0.0; 3]);
    }

    #[test]
    fn gradient_update_moves_pool_toward_target() {
        // Minimise ||pool - target||² by gradient steps on the rows.
        let mut t = EmbeddingTable::new(16, 4, 3);
        let feats = vec![(2u32, 1.0f32), (7, -1.0), (11, 1.0)];
        let target = [0.5, -0.25, 0.1, 0.9];
        let mut out = vec![0.0; 4];
        let mut first_loss = 0.0;
        let mut last_loss = 0.0;
        for it in 0..200 {
            t.pool(&feats, &mut out);
            let grad: Vec<f32> = out.iter().zip(&target).map(|(o, t)| 2.0 * (o - t)).collect();
            let loss: f32 = out.iter().zip(&target).map(|(o, t)| (o - t) * (o - t)).sum();
            if it == 0 {
                first_loss = loss;
            }
            last_loss = loss;
            t.apply_pooled_grad(&feats, &grad, 0.1);
        }
        assert!(last_loss < first_loss * 0.01, "{last_loss} vs {first_loss}");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bucket_out_of_range_panics() {
        let t = EmbeddingTable::new(4, 2, 0);
        let _ = t.row(4);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = EmbeddingTable::new(8, 4, 9);
        let b = EmbeddingTable::new(8, 4, 9);
        assert_eq!(a.row(5), b.row(5));
    }
}
