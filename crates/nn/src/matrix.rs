//! Row-major dense `f32` matrices with the handful of operations the SAGE
//! models need: matmul (plain and transposed variants), row-broadcast adds,
//! elementwise maps, and seeded random initialisation.
//!
//! Conventions: a batch of activations is a matrix with `rows = batch size`
//! and `cols = feature dim`. Weight matrices are `in_dim x out_dim`, so the
//! forward pass of a linear layer is `X · W`.

// sage-lint: allow-file(panic-reachability) - row slices derive from the dims the matrix was allocated with; multiply asserts shape agreement at entry

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A row-major dense matrix of `f32`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// All-zeros matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Build from a flat row-major vector. Panics when the length mismatches.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length must equal rows*cols");
        Self { rows, cols, data }
    }

    /// A 1 x n row matrix borrowing `row`'s contents.
    pub fn from_row(row: &[f32]) -> Self {
        Self { rows: 1, cols: row.len(), data: row.to_vec() }
    }

    /// Stack several equally-sized rows into a batch matrix.
    /// Panics if rows have unequal lengths or the iterator is empty.
    pub fn from_rows(rows: &[Vec<f32>]) -> Self {
        assert!(!rows.is_empty(), "from_rows needs at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "all rows must have equal length");
            data.extend_from_slice(r);
        }
        Self { rows: rows.len(), cols, data }
    }

    /// Xavier/Glorot-uniform initialisation with a seeded RNG: values in
    /// `±sqrt(6/(rows+cols))`. Deterministic for a given seed.
    pub fn xavier(rows: usize, cols: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let bound = (6.0 / (rows + cols) as f32).sqrt();
        let data = (0..rows * cols).map(|_| rng.random_range(-bound..bound)).collect();
        Self { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable view of the backing storage (row-major).
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the backing storage (row-major).
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Borrow row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// `self · other` — (m x k)·(k x n) → (m x n).
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul dim mismatch");
        let (m, k, n) = (self.rows, self.cols, other.cols);
        let mut out = Matrix::zeros(m, n);
        // ikj loop order: streams through `other` rows, cache-friendly.
        for i in 0..m {
            for p in 0..k {
                let a = self.data[i * k + p];
                if a == 0.0 {
                    continue;
                }
                let orow = &other.data[p * n..(p + 1) * n];
                let out_row = &mut out.data[i * n..(i + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(orow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `selfᵀ · other` — (m x k)ᵀ·(m x n) → (k x n). Used for weight grads
    /// (`dW = Xᵀ · dY`) without materialising the transpose.
    pub fn transpose_matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "transpose_matmul dim mismatch");
        let (m, k, n) = (self.rows, self.cols, other.cols);
        let mut out = Matrix::zeros(k, n);
        for i in 0..m {
            let xrow = &self.data[i * k..(i + 1) * k];
            let yrow = &other.data[i * n..(i + 1) * n];
            for (p, &x) in xrow.iter().enumerate() {
                if x == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[p * n..(p + 1) * n];
                for (o, &y) in out_row.iter_mut().zip(yrow) {
                    *o += x * y;
                }
            }
        }
        out
    }

    /// `self · otherᵀ` — (m x k)·(n x k)ᵀ → (m x n). Used for input grads
    /// (`dX = dY · Wᵀ`) without materialising the transpose.
    pub fn matmul_transpose(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "matmul_transpose dim mismatch");
        let (m, k, n) = (self.rows, self.cols, other.rows);
        let mut out = Matrix::zeros(m, n);
        for i in 0..m {
            let arow = &self.data[i * k..(i + 1) * k];
            for j in 0..n {
                let brow = &other.data[j * k..(j + 1) * k];
                let mut acc = 0.0;
                for (&a, &b) in arow.iter().zip(brow) {
                    acc += a * b;
                }
                out.data[i * n + j] = acc;
            }
        }
        out
    }

    /// Add a row vector to every row (bias broadcast).
    pub fn add_row_broadcast(&mut self, bias: &[f32]) {
        assert_eq!(bias.len(), self.cols, "bias length mismatch");
        for r in 0..self.rows {
            for (v, &b) in self.row_mut(r).iter_mut().zip(bias) {
                *v += b;
            }
        }
    }

    /// Column-wise sums, as a vector of length `cols` (bias gradients).
    pub fn col_sums(&self) -> Vec<f32> {
        let mut out = vec![0.0; self.cols];
        for r in 0..self.rows {
            for (o, &v) in out.iter_mut().zip(self.row(r)) {
                *o += v;
            }
        }
        out
    }

    /// Apply `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Multiply every element by `s`.
    pub fn scale(&mut self, s: f32) {
        self.map_inplace(|v| v * s);
    }
}

/// Dot product of two equal-length slices.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// L2 norm of a slice.
pub fn norm(a: &[f32]) -> f32 {
    dot(a, a).sqrt()
}

/// Cosine similarity in `[-1, 1]`; 0.0 when either vector is all-zero.
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    let na = norm(a);
    let nb = norm(b);
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    (dot(a, b) / (na * nb)).clamp(-1.0, 1.0)
}

/// Normalize a vector to unit L2 length in place (no-op for zero vectors).
pub fn l2_normalize(v: &mut [f32]) {
    let n = norm(v);
    if n > 0.0 {
        for x in v {
            *x /= n;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_identity() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let i = Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
        assert_eq!(a.matmul(&i), a);
    }

    #[test]
    fn matmul_known_values() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Matrix::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn transposed_matmuls_agree_with_plain() {
        let a = Matrix::xavier(4, 3, 1);
        let b = Matrix::xavier(4, 5, 2);
        // aᵀ·b via transpose_matmul == manual transpose then matmul
        let mut at = Matrix::zeros(3, 4);
        for i in 0..4 {
            for j in 0..3 {
                at.set(j, i, a.get(i, j));
            }
        }
        let want = at.matmul(&b);
        let got = a.transpose_matmul(&b);
        for (x, y) in got.data().iter().zip(want.data()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn matmul_transpose_agrees_with_plain() {
        let a = Matrix::xavier(2, 3, 3);
        let b = Matrix::xavier(4, 3, 4);
        let mut bt = Matrix::zeros(3, 4);
        for i in 0..4 {
            for j in 0..3 {
                bt.set(j, i, b.get(i, j));
            }
        }
        let want = a.matmul(&bt);
        let got = a.matmul_transpose(&b);
        for (x, y) in got.data().iter().zip(want.data()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn broadcast_and_colsums_roundtrip() {
        let mut m = Matrix::zeros(3, 2);
        m.add_row_broadcast(&[1.0, 2.0]);
        assert_eq!(m.col_sums(), vec![3.0, 6.0]);
    }

    #[test]
    fn xavier_is_deterministic_and_bounded() {
        let a = Matrix::xavier(10, 10, 7);
        let b = Matrix::xavier(10, 10, 7);
        assert_eq!(a, b);
        let bound = (6.0_f32 / 20.0).sqrt();
        assert!(a.data().iter().all(|v| v.abs() <= bound));
        assert!(a.data().iter().any(|v| *v != 0.0));
    }

    #[test]
    fn cosine_properties() {
        let a = [1.0, 0.0];
        let b = [0.0, 1.0];
        assert!((cosine(&a, &a) - 1.0).abs() < 1e-6);
        assert!(cosine(&a, &b).abs() < 1e-6);
        assert!((cosine(&a, &[-1.0, 0.0]) + 1.0).abs() < 1e-6);
        assert_eq!(cosine(&a, &[0.0, 0.0]), 0.0);
    }

    #[test]
    fn l2_normalize_unit_length() {
        let mut v = vec![3.0, 4.0];
        l2_normalize(&mut v);
        assert!((norm(&v) - 1.0).abs() < 1e-6);
        let mut z = vec![0.0, 0.0];
        l2_normalize(&mut z);
        assert_eq!(z, vec![0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "matmul dim mismatch")]
    fn matmul_dim_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }
}
