//! Optimizers. Algorithm 1 says "gradient descent optimization method"; we
//! provide plain SGD and Adam (the default for all trainers in this repo,
//! since the small models converge in far fewer epochs with it).

/// Adam optimizer state for one parameter tensor.
#[derive(Debug, Clone)]
pub struct AdamState {
    m: Vec<f32>,
    v: Vec<f32>,
    t: u64,
    beta1: f32,
    beta2: f32,
    eps: f32,
}

impl AdamState {
    /// Fresh state for a tensor with `len` parameters, with the standard
    /// hyper-parameters (β₁=0.9, β₂=0.999, ε=1e-8).
    pub fn new(len: usize) -> Self {
        Self { m: vec![0.0; len], v: vec![0.0; len], t: 0, beta1: 0.9, beta2: 0.999, eps: 1e-8 }
    }

    /// Apply one Adam update: `params -= lr * m̂ / (sqrt(v̂) + ε)`.
    pub fn update(&mut self, params: &mut [f32], grads: &[f32], lr: f32) {
        assert_eq!(params.len(), grads.len());
        assert_eq!(params.len(), self.m.len(), "AdamState sized for a different tensor");
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..params.len() {
            let g = grads[i];
            self.m[i] = self.beta1 * self.m[i] + (1.0 - self.beta1) * g;
            self.v[i] = self.beta2 * self.v[i] + (1.0 - self.beta2) * g * g;
            let mhat = self.m[i] / b1t;
            let vhat = self.v[i] / b2t;
            params[i] -= lr * mhat / (vhat.sqrt() + self.eps);
        }
    }
}

/// Plain SGD update: `params -= lr * grads`. Used for the sparse embedding
/// rows where Adam state per row would waste memory.
pub fn sgd_update(params: &mut [f32], grads: &[f32], lr: f32) {
    assert_eq!(params.len(), grads.len());
    for (p, &g) in params.iter_mut().zip(grads) {
        *p -= lr * g;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sgd_moves_against_gradient() {
        let mut p = vec![1.0, -1.0];
        sgd_update(&mut p, &[0.5, -0.5], 0.1);
        assert!((p[0] - 0.95).abs() < 1e-6);
        assert!((p[1] + 0.95).abs() < 1e-6);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        // Minimize f(x) = (x-3)^2 from x=0.
        let mut x = vec![0.0f32];
        let mut adam = AdamState::new(1);
        for _ in 0..500 {
            let g = vec![2.0 * (x[0] - 3.0)];
            adam.update(&mut x, &g, 0.05);
        }
        assert!((x[0] - 3.0).abs() < 0.05, "x = {}", x[0]);
    }

    #[test]
    fn adam_first_step_is_lr_sized() {
        // With bias correction the first step has magnitude ~lr regardless
        // of gradient scale.
        let mut x = vec![0.0f32];
        let mut adam = AdamState::new(1);
        adam.update(&mut x, &[1000.0], 0.01);
        assert!((x[0] + 0.01).abs() < 1e-4, "first step should be ≈ -lr, got {}", x[0]);
    }

    #[test]
    #[should_panic(expected = "different tensor")]
    fn adam_wrong_size_panics() {
        let mut adam = AdamState::new(2);
        let mut p = vec![0.0; 3];
        adam.update(&mut p, &[0.0; 3], 0.1);
    }
}
