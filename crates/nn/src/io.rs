//! Compact binary serialization for trained models.
//!
//! Training in this workspace is fast, but production use should not
//! retrain per process: [`BytesSerialize`] round-trips every trained
//! component (matrices, layers, MLPs, embedding tables — and, in dependent
//! crates, the encoders, segmentation model, and reranker) through a
//! little-endian length-prefixed format.
//!
//! Optimizer state and forward caches are deliberately *not* persisted —
//! a loaded model is an inference artifact; resuming training restarts
//! Adam's moments from zero (standard practice for small models).

use crate::layer::{Activation, Linear};
use crate::matrix::Matrix;
use crate::mlp::Mlp;
use crate::EmbeddingTable;
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Round-trip binary serialization.
pub trait BytesSerialize: Sized {
    /// Append this value to `buf`.
    fn write(&self, buf: &mut BytesMut);

    /// Read a value from the front of `buf`; `None` on malformed input.
    fn read(buf: &mut Bytes) -> Option<Self>;

    /// Serialize to a standalone blob.
    fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::new();
        self.write(&mut buf);
        buf.freeze()
    }

    /// Deserialize a standalone blob (must be fully consumed).
    fn from_bytes(mut bytes: Bytes) -> Option<Self> {
        let v = Self::read(&mut bytes)?;
        if bytes.has_remaining() {
            return None;
        }
        Some(v)
    }
}

/// Write a length-prefixed `f32` slice.
pub fn put_f32_slice(buf: &mut BytesMut, data: &[f32]) {
    buf.put_u32_le(data.len() as u32);
    for &v in data {
        buf.put_f32_le(v);
    }
}

/// Read a length-prefixed `f32` vector.
pub fn get_f32_vec(buf: &mut Bytes) -> Option<Vec<f32>> {
    if buf.remaining() < 4 {
        return None;
    }
    let len = buf.get_u32_le() as usize;
    if buf.remaining() < len.checked_mul(4)? {
        return None;
    }
    Some((0..len).map(|_| buf.get_f32_le()).collect())
}

/// Write a length-prefixed UTF-8 string.
pub fn put_string(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

/// Read a length-prefixed UTF-8 string.
pub fn get_string(buf: &mut Bytes) -> Option<String> {
    if buf.remaining() < 4 {
        return None;
    }
    let len = buf.get_u32_le() as usize;
    if buf.remaining() < len {
        return None;
    }
    let raw = buf.split_to(len);
    String::from_utf8(raw.to_vec()).ok()
}

/// Checked u32 read.
pub fn get_u32(buf: &mut Bytes) -> Option<u32> {
    (buf.remaining() >= 4).then(|| buf.get_u32_le())
}

/// Checked u64 read.
pub fn get_u64(buf: &mut Bytes) -> Option<u64> {
    (buf.remaining() >= 8).then(|| buf.get_u64_le())
}

/// Checked u8 read.
pub fn get_u8(buf: &mut Bytes) -> Option<u8> {
    buf.has_remaining().then(|| buf.get_u8())
}

impl BytesSerialize for Matrix {
    fn write(&self, buf: &mut BytesMut) {
        buf.put_u32_le(self.rows() as u32);
        buf.put_u32_le(self.cols() as u32);
        put_f32_slice(buf, self.data());
    }

    fn read(buf: &mut Bytes) -> Option<Self> {
        let rows = get_u32(buf)? as usize;
        let cols = get_u32(buf)? as usize;
        let data = get_f32_vec(buf)?;
        if data.len() != rows.checked_mul(cols)? {
            return None;
        }
        Some(Matrix::from_vec(rows, cols, data))
    }
}

impl BytesSerialize for Activation {
    fn write(&self, buf: &mut BytesMut) {
        buf.put_u8(match self {
            Activation::Identity => 0,
            Activation::Relu => 1,
            Activation::Tanh => 2,
            Activation::Sigmoid => 3,
        });
    }

    fn read(buf: &mut Bytes) -> Option<Self> {
        match get_u8(buf)? {
            0 => Some(Activation::Identity),
            1 => Some(Activation::Relu),
            2 => Some(Activation::Tanh),
            3 => Some(Activation::Sigmoid),
            _ => None,
        }
    }
}

impl BytesSerialize for Linear {
    fn write(&self, buf: &mut BytesMut) {
        self.activation().write(buf);
        self.weights().write(buf);
        put_f32_slice(buf, self.bias());
    }

    fn read(buf: &mut Bytes) -> Option<Self> {
        let act = Activation::read(buf)?;
        let w = Matrix::read(buf)?;
        let b = get_f32_vec(buf)?;
        Linear::from_parts(w, b, act)
    }
}

impl BytesSerialize for Mlp {
    fn write(&self, buf: &mut BytesMut) {
        let layers = self.layers();
        buf.put_u8(layers.len() as u8);
        for layer in layers {
            layer.write(buf);
        }
    }

    fn read(buf: &mut Bytes) -> Option<Self> {
        let n = get_u8(buf)? as usize;
        if n == 0 {
            return None;
        }
        let mut layers = Vec::with_capacity(n);
        for _ in 0..n {
            layers.push(Linear::read(buf)?);
        }
        Mlp::from_layers(layers)
    }
}

impl BytesSerialize for EmbeddingTable {
    fn write(&self, buf: &mut BytesMut) {
        buf.put_u32_le(self.buckets() as u32);
        buf.put_u32_le(self.dim() as u32);
        put_f32_slice(buf, self.rows_flat());
    }

    fn read(buf: &mut Bytes) -> Option<Self> {
        let buckets = get_u32(buf)? as usize;
        let dim = get_u32(buf)? as usize;
        let rows = get_f32_vec(buf)?;
        EmbeddingTable::from_parts(buckets, dim, rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_roundtrip() {
        let m = Matrix::xavier(4, 3, 7);
        let back = Matrix::from_bytes(m.to_bytes()).expect("roundtrip");
        assert_eq!(m, back);
    }

    #[test]
    fn mlp_roundtrip_preserves_inference() {
        let mlp = Mlp::new(&[6, 5, 2], Activation::Tanh, Activation::Sigmoid, 3);
        let back = Mlp::from_bytes(mlp.to_bytes()).expect("roundtrip");
        let x = Matrix::xavier(2, 6, 9);
        assert_eq!(mlp.infer(&x), back.infer(&x));
    }

    #[test]
    fn embedding_table_roundtrip() {
        let t = EmbeddingTable::new(16, 4, 5);
        let back = EmbeddingTable::from_bytes(t.to_bytes()).expect("roundtrip");
        assert_eq!(t.row(7), back.row(7));
        assert_eq!(t.buckets(), back.buckets());
    }

    #[test]
    fn loaded_model_is_trainable() {
        // Optimizer state is reset, but training must still work.
        let mlp = Mlp::new(&[2, 4, 1], Activation::Tanh, Activation::Sigmoid, 1);
        let mut back = Mlp::from_bytes(mlp.to_bytes()).unwrap();
        let x = Matrix::from_vec(1, 2, vec![0.3, -0.2]);
        let y = Matrix::from_vec(1, 1, vec![1.0]);
        let (first, _) = back.train_batch_mse(&x, &y, 0.05);
        let mut last = first;
        for _ in 0..50 {
            (last, _) = back.train_batch_mse(&x, &y, 0.05);
        }
        assert!(last < first);
    }

    #[test]
    fn malformed_input_rejected() {
        assert!(Matrix::from_bytes(Bytes::from_static(b"garbage")).is_none());
        assert!(Mlp::from_bytes(Bytes::from_static(b"")).is_none());
        // Trailing bytes are an error.
        let m = Matrix::xavier(2, 2, 0);
        let mut buf = BytesMut::new();
        m.write(&mut buf);
        buf.put_u8(0xFF);
        assert!(Matrix::from_bytes(buf.freeze()).is_none());
    }

    #[test]
    fn string_helpers_roundtrip() {
        let mut buf = BytesMut::new();
        put_string(&mut buf, "héllo wörld");
        put_string(&mut buf, "");
        let mut bytes = buf.freeze();
        assert_eq!(get_string(&mut bytes).as_deref(), Some("héllo wörld"));
        assert_eq!(get_string(&mut bytes).as_deref(), Some(""));
        assert!(get_string(&mut bytes).is_none());
    }
}
