//! # sage-nn
//!
//! A small, dependency-light neural-network substrate: dense matrices,
//! linear layers with manual backpropagation, an MLP container, SGD/Adam
//! optimizers, common losses, and a sparse embedding table.
//!
//! The paper's trainable components are all small models:
//!
//! * the **segmentation model** (paper §IV-B, Algorithm 1) is an embedding
//!   model plus an MLP scoring head trained with MSE;
//! * the **reranker** is a cross-feature scorer with an MLP head;
//! * the **SBERT / DPR analogs** are linear encoders over hashed features
//!   trained with cosine/contrastive objectives.
//!
//! None of them need GPU kernels or autograd graphs, so this crate
//! implements exactly the forward/backward passes they require, in plain
//! Rust, with deterministic seeded initialisation. Everything is `f32`.

pub mod cluster;
pub mod io;
pub mod embedding;
pub mod layer;
pub mod loss;
pub mod matrix;
pub mod mlp;
pub mod optim;

pub use cluster::{kmeans, KMeans};
pub use io::BytesSerialize;
pub use embedding::EmbeddingTable;
pub use layer::{Activation, Linear};
pub use loss::{bce_loss, bce_loss_grad, mse_loss, mse_loss_grad};
pub use matrix::Matrix;
pub use mlp::Mlp;
pub use optim::AdamState;
