//! A multi-layer perceptron: the scoring head of the segmentation model
//! (paper Fig. 4) and of the cross-feature reranker.

use crate::layer::{Activation, Linear};
use crate::loss::{mse_loss, mse_loss_grad};
use crate::matrix::Matrix;

/// A feed-forward network: hidden layers share one activation, the output
/// layer has its own (Sigmoid for score heads).
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Linear>,
}

impl Mlp {
    /// Build an MLP from layer sizes, e.g. `&[64, 32, 1]` is
    /// 64 → 32 (hidden act) → 1 (output act). Needs at least two sizes.
    pub fn new(sizes: &[usize], hidden: Activation, output: Activation, seed: u64) -> Self {
        assert!(sizes.len() >= 2, "need at least input and output sizes");
        let mut layers = Vec::with_capacity(sizes.len() - 1);
        for (i, pair) in sizes.windows(2).enumerate() {
            let act = if i + 2 == sizes.len() { output } else { hidden };
            // Derive per-layer seeds so layers are decorrelated.
            layers.push(Linear::new(pair[0], pair[1], act, seed.wrapping_add(i as u64 * 7919)));
        }
        Self { layers }
    }

    /// The layers, in order (serialization).
    pub fn layers(&self) -> &[Linear] {
        &self.layers
    }

    /// Rebuild from persisted layers. `None` when empty or when adjacent
    /// layer dimensions do not chain.
    pub fn from_layers(layers: Vec<Linear>) -> Option<Self> {
        if layers.is_empty() {
            return None;
        }
        for pair in layers.windows(2) {
            if pair[0].out_dim() != pair[1].in_dim() {
                return None;
            }
        }
        Some(Self { layers })
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.layers[0].in_dim()
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.layers.last().unwrap().out_dim()
    }

    /// Training forward pass (caches activations in each layer).
    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        let mut a = x.clone();
        for layer in &mut self.layers {
            a = layer.forward(&a);
        }
        a
    }

    /// Inference-only forward pass.
    pub fn infer(&self, x: &Matrix) -> Matrix {
        let mut a = x.clone();
        for layer in &self.layers {
            a = layer.infer(&a);
        }
        a
    }

    /// Backpropagate `grad_out` through all layers; returns dL/d(input).
    pub fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let mut g = grad_out.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
        g
    }

    /// Apply one Adam step on every layer and clear gradients.
    pub fn step(&mut self, lr: f32) {
        for layer in &mut self.layers {
            layer.step(lr);
        }
    }

    /// One MSE training step on a batch. Returns the loss *before* the step
    /// and the gradient w.r.t. the input batch (used by upstream encoders
    /// that train jointly with the head, as Algorithm 1 line 8 updates both
    /// `f_e` and `M`).
    pub fn train_batch_mse(&mut self, x: &Matrix, y: &Matrix, lr: f32) -> (f32, Matrix) {
        let pred = self.forward(x);
        let loss = mse_loss(&pred, y);
        let grad = mse_loss_grad(&pred, y);
        let input_grad = self.backward(&grad);
        self.step(lr);
        (loss, input_grad)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes() {
        let mlp = Mlp::new(&[8, 4, 1], Activation::Relu, Activation::Sigmoid, 0);
        assert_eq!(mlp.in_dim(), 8);
        assert_eq!(mlp.out_dim(), 1);
        let y = mlp.infer(&Matrix::zeros(5, 8));
        assert_eq!((y.rows(), y.cols()), (5, 1));
    }

    #[test]
    fn forward_and_infer_agree() {
        let mut mlp = Mlp::new(&[4, 3, 2], Activation::Tanh, Activation::Identity, 9);
        let x = Matrix::xavier(3, 4, 17);
        let a = mlp.forward(&x);
        let b = mlp.infer(&x);
        assert_eq!(a, b);
    }

    #[test]
    fn learns_xor() {
        // XOR is the classic non-linear sanity check for backprop.
        let x = Matrix::from_vec(4, 2, vec![0., 0., 0., 1., 1., 0., 1., 1.]);
        let y = Matrix::from_vec(4, 1, vec![0., 1., 1., 0.]);
        let mut mlp = Mlp::new(&[2, 8, 1], Activation::Tanh, Activation::Sigmoid, 3);
        let mut loss = f32::INFINITY;
        for _ in 0..2000 {
            (loss, _) = mlp.train_batch_mse(&x, &y, 0.05);
        }
        assert!(loss < 0.02, "XOR loss {loss} too high");
        let pred = mlp.infer(&x);
        assert!(pred.get(0, 0) < 0.3);
        assert!(pred.get(1, 0) > 0.7);
        assert!(pred.get(2, 0) > 0.7);
        assert!(pred.get(3, 0) < 0.3);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = Mlp::new(&[4, 4, 1], Activation::Relu, Activation::Sigmoid, 5);
        let b = Mlp::new(&[4, 4, 1], Activation::Relu, Activation::Sigmoid, 5);
        let x = Matrix::xavier(2, 4, 11);
        assert_eq!(a.infer(&x), b.infer(&x));
        let c = Mlp::new(&[4, 4, 1], Activation::Relu, Activation::Sigmoid, 6);
        assert_ne!(a.infer(&x), c.infer(&x));
    }

    #[test]
    fn input_grad_flows() {
        // The returned input gradient must be non-zero for a non-trivial
        // loss, since joint encoder+head training depends on it.
        let mut mlp = Mlp::new(&[3, 4, 1], Activation::Tanh, Activation::Sigmoid, 1);
        let x = Matrix::from_vec(1, 3, vec![0.3, -0.2, 0.9]);
        let y = Matrix::from_vec(1, 1, vec![1.0]);
        let (_, gin) = mlp.train_batch_mse(&x, &y, 0.01);
        assert_eq!((gin.rows(), gin.cols()), (1, 3));
        assert!(gin.data().iter().any(|g| g.abs() > 0.0));
    }
}
