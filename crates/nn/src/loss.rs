//! Loss functions. Algorithm 1 trains the segmentation model with MSE
//! between the sigmoid score and the 0/1 same-paragraph label; the reranker
//! uses the same objective; the dual-encoder trainer uses a margin loss
//! built from cosine similarities (defined in `sage-embed`, using these
//! helpers).

use crate::matrix::Matrix;

/// Mean squared error over all elements.
pub fn mse_loss(pred: &Matrix, target: &Matrix) -> f32 {
    assert_eq!(pred.rows(), target.rows());
    assert_eq!(pred.cols(), target.cols());
    let n = pred.data().len().max(1) as f32;
    pred.data().iter().zip(target.data()).map(|(p, t)| (p - t) * (p - t)).sum::<f32>() / n
}

/// Gradient of [`mse_loss`] w.r.t. `pred`: `2(p - t)/n`.
pub fn mse_loss_grad(pred: &Matrix, target: &Matrix) -> Matrix {
    assert_eq!(pred.rows(), target.rows());
    assert_eq!(pred.cols(), target.cols());
    let n = pred.data().len().max(1) as f32;
    let data = pred
        .data()
        .iter()
        .zip(target.data())
        .map(|(p, t)| 2.0 * (p - t) / n)
        .collect();
    Matrix::from_vec(pred.rows(), pred.cols(), data)
}

/// Binary cross-entropy over probabilities in `(0,1)`, clamped for
/// numerical stability.
pub fn bce_loss(pred: &Matrix, target: &Matrix) -> f32 {
    assert_eq!(pred.data().len(), target.data().len());
    let n = pred.data().len().max(1) as f32;
    pred.data()
        .iter()
        .zip(target.data())
        .map(|(p, t)| {
            let p = p.clamp(1e-6, 1.0 - 1e-6);
            -(t * p.ln() + (1.0 - t) * (1.0 - p).ln())
        })
        .sum::<f32>()
        / n
}

/// Gradient of [`bce_loss`] w.r.t. `pred`.
pub fn bce_loss_grad(pred: &Matrix, target: &Matrix) -> Matrix {
    assert_eq!(pred.data().len(), target.data().len());
    let n = pred.data().len().max(1) as f32;
    let data = pred
        .data()
        .iter()
        .zip(target.data())
        .map(|(p, t)| {
            let p = p.clamp(1e-6, 1.0 - 1e-6);
            ((p - t) / (p * (1.0 - p))) / n
        })
        .collect();
    Matrix::from_vec(pred.rows(), pred.cols(), data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_zero_when_equal() {
        let a = Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        assert_eq!(mse_loss(&a, &a), 0.0);
        assert!(mse_loss_grad(&a, &a).data().iter().all(|g| *g == 0.0));
    }

    #[test]
    fn mse_known_value() {
        let p = Matrix::from_vec(1, 2, vec![1.0, 0.0]);
        let t = Matrix::from_vec(1, 2, vec![0.0, 0.0]);
        assert!((mse_loss(&p, &t) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn mse_grad_matches_finite_difference() {
        let p = Matrix::from_vec(1, 2, vec![0.7, -0.2]);
        let t = Matrix::from_vec(1, 2, vec![1.0, 0.0]);
        let g = mse_loss_grad(&p, &t);
        let eps = 1e-3;
        for i in 0..2 {
            let mut pp = p.clone();
            pp.data_mut()[i] += eps;
            let lp = mse_loss(&pp, &t);
            pp.data_mut()[i] -= 2.0 * eps;
            let lm = mse_loss(&pp, &t);
            let numeric = (lp - lm) / (2.0 * eps);
            assert!((g.data()[i] - numeric).abs() < 1e-3);
        }
    }

    #[test]
    fn bce_perfect_prediction_near_zero() {
        let p = Matrix::from_vec(1, 2, vec![0.999999, 0.000001]);
        let t = Matrix::from_vec(1, 2, vec![1.0, 0.0]);
        assert!(bce_loss(&p, &t) < 1e-3);
    }

    #[test]
    fn bce_grad_matches_finite_difference() {
        let p = Matrix::from_vec(1, 2, vec![0.6, 0.3]);
        let t = Matrix::from_vec(1, 2, vec![1.0, 0.0]);
        let g = bce_loss_grad(&p, &t);
        let eps = 1e-4;
        for i in 0..2 {
            let mut pp = p.clone();
            pp.data_mut()[i] += eps;
            let lp = bce_loss(&pp, &t);
            pp.data_mut()[i] -= 2.0 * eps;
            let lm = bce_loss(&pp, &t);
            let numeric = (lp - lm) / (2.0 * eps);
            assert!((g.data()[i] - numeric).abs() < 1e-2, "i={i}: {} vs {numeric}", g.data()[i]);
        }
    }

    #[test]
    fn bce_extreme_predictions_finite() {
        let p = Matrix::from_vec(1, 2, vec![0.0, 1.0]);
        let t = Matrix::from_vec(1, 2, vec![1.0, 0.0]);
        assert!(bce_loss(&p, &t).is_finite());
        assert!(bce_loss_grad(&p, &t).data().iter().all(|g| g.is_finite()));
    }
}
