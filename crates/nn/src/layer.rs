//! Linear layers and activations with manual backpropagation.

use crate::matrix::Matrix;
use crate::optim::AdamState;

/// Elementwise activation functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// Identity (no-op) — used on regression outputs.
    Identity,
    /// Rectified linear unit.
    Relu,
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid — used on the segmentation score head so outputs
    /// land in `[0, 1]` like Algorithm 1's labels.
    Sigmoid,
}

impl Activation {
    /// Apply the activation to a matrix (consumed, returned).
    pub fn forward(self, mut z: Matrix) -> Matrix {
        match self {
            Activation::Identity => {}
            Activation::Relu => z.map_inplace(|v| v.max(0.0)),
            Activation::Tanh => z.map_inplace(f32::tanh),
            Activation::Sigmoid => z.map_inplace(|v| 1.0 / (1.0 + (-v).exp())),
        }
        z
    }

    /// Derivative expressed in terms of the activation *output* `a`.
    #[inline]
    pub fn derivative_from_output(self, a: f32) -> f32 {
        match self {
            Activation::Identity => 1.0,
            Activation::Relu => {
                if a > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Tanh => 1.0 - a * a,
            Activation::Sigmoid => a * (1.0 - a),
        }
    }
}

/// A fully connected layer `y = act(x · W + b)` with cached forward state
/// and Adam parameter state.
#[derive(Debug, Clone)]
pub struct Linear {
    w: Matrix,
    b: Vec<f32>,
    act: Activation,
    grad_w: Matrix,
    grad_b: Vec<f32>,
    adam_w: AdamState,
    adam_b: AdamState,
    /// Cached input of the last forward pass (needed for dW).
    cached_input: Option<Matrix>,
    /// Cached output of the last forward pass (needed for activation grads).
    cached_output: Option<Matrix>,
}

impl Linear {
    /// New layer with Xavier-initialised weights and zero bias.
    pub fn new(in_dim: usize, out_dim: usize, act: Activation, seed: u64) -> Self {
        Self {
            w: Matrix::xavier(in_dim, out_dim, seed),
            b: vec![0.0; out_dim],
            act,
            grad_w: Matrix::zeros(in_dim, out_dim),
            grad_b: vec![0.0; out_dim],
            adam_w: AdamState::new(in_dim * out_dim),
            adam_b: AdamState::new(out_dim),
            cached_input: None,
            cached_output: None,
        }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.w.rows()
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.w.cols()
    }

    /// Forward pass, caching input and output for the next backward call.
    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        let mut z = x.matmul(&self.w);
        z.add_row_broadcast(&self.b);
        let a = self.act.forward(z);
        self.cached_input = Some(x.clone());
        self.cached_output = Some(a.clone());
        a
    }

    /// Inference-only forward pass: no caches are written, `&self` suffices.
    pub fn infer(&self, x: &Matrix) -> Matrix {
        let mut z = x.matmul(&self.w);
        z.add_row_broadcast(&self.b);
        self.act.forward(z)
    }

    /// Backward pass. `grad_out` is dL/d(output). Accumulates dW/db and
    /// returns dL/d(input).
    ///
    /// Panics if called before `forward`.
    pub fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let x = self.cached_input.as_ref().expect("backward before forward");
        let a = self.cached_output.as_ref().expect("backward before forward");
        // dZ = dA * act'(A)
        let mut dz = grad_out.clone();
        for (g, &out) in dz.data_mut().iter_mut().zip(a.data()) {
            *g *= self.act.derivative_from_output(out);
        }
        // dW += Xᵀ·dZ ; db += colsum(dZ) ; dX = dZ·Wᵀ
        let dw = x.transpose_matmul(&dz);
        for (g, &d) in self.grad_w.data_mut().iter_mut().zip(dw.data()) {
            *g += d;
        }
        for (g, d) in self.grad_b.iter_mut().zip(dz.col_sums()) {
            *g += d;
        }
        dz.matmul_transpose(&self.w)
    }

    /// Apply one Adam step with learning rate `lr` and clear gradients.
    pub fn step(&mut self, lr: f32) {
        self.adam_w.update(self.w.data_mut(), self.grad_w.data(), lr);
        self.adam_b.update(&mut self.b, &self.grad_b, lr);
        self.zero_grad();
    }

    /// Clear accumulated gradients.
    pub fn zero_grad(&mut self) {
        self.grad_w.data_mut().fill(0.0);
        self.grad_b.fill(0.0);
    }

    /// Read-only access to weights (tests / serialization).
    pub fn weights(&self) -> &Matrix {
        &self.w
    }

    /// Read-only access to the bias vector.
    pub fn bias(&self) -> &[f32] {
        &self.b
    }

    /// The layer's activation.
    pub fn activation(&self) -> Activation {
        self.act
    }

    /// Rebuild a layer from persisted parts (fresh optimizer state, empty
    /// caches). `None` when the bias length does not match the weights.
    pub fn from_parts(w: Matrix, b: Vec<f32>, act: Activation) -> Option<Self> {
        if b.len() != w.cols() {
            return None;
        }
        let (in_dim, out_dim) = (w.rows(), w.cols());
        Some(Self {
            w,
            b,
            act,
            grad_w: Matrix::zeros(in_dim, out_dim),
            grad_b: vec![0.0; out_dim],
            adam_w: AdamState::new(in_dim * out_dim),
            adam_b: AdamState::new(out_dim),
            cached_input: None,
            cached_output: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_shapes() {
        let mut l = Linear::new(3, 2, Activation::Identity, 0);
        let x = Matrix::zeros(4, 3);
        let y = l.forward(&x);
        assert_eq!((y.rows(), y.cols()), (4, 2));
    }

    #[test]
    fn relu_clamps() {
        let z = Matrix::from_vec(1, 3, vec![-1.0, 0.0, 2.0]);
        let a = Activation::Relu.forward(z);
        assert_eq!(a.data(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn sigmoid_range() {
        let z = Matrix::from_vec(1, 3, vec![-10.0, 0.0, 10.0]);
        let a = Activation::Sigmoid.forward(z);
        assert!(a.data().iter().all(|v| (0.0..=1.0).contains(v)));
        assert!((a.get(0, 1) - 0.5).abs() < 1e-6);
    }

    /// Numerical gradient check: perturb each weight, compare the analytic
    /// gradient against the finite-difference estimate of a scalar loss.
    #[test]
    fn gradient_check_linear() {
        for act in [Activation::Identity, Activation::Tanh, Activation::Sigmoid] {
            let mut layer = Linear::new(3, 2, act, 42);
            let x = Matrix::from_vec(2, 3, vec![0.5, -0.3, 0.8, -0.1, 0.9, 0.2]);
            // Loss = sum of outputs; dL/dY = ones.
            let y = layer.forward(&x);
            let ones = Matrix::from_vec(y.rows(), y.cols(), vec![1.0; y.rows() * y.cols()]);
            let dx = layer.backward(&ones);

            let eps = 1e-3;
            // Check a few weight positions.
            for (r, c) in [(0usize, 0usize), (1, 1), (2, 0)] {
                let analytic = layer.grad_w.get(r, c);
                let orig = layer.w.get(r, c);
                layer.w.set(r, c, orig + eps);
                let lp: f32 = layer.infer(&x).data().iter().sum();
                layer.w.set(r, c, orig - eps);
                let lm: f32 = layer.infer(&x).data().iter().sum();
                layer.w.set(r, c, orig);
                let numeric = (lp - lm) / (2.0 * eps);
                assert!(
                    (analytic - numeric).abs() < 1e-2,
                    "{act:?} dW[{r},{c}]: analytic {analytic} vs numeric {numeric}"
                );
            }
            // Check an input-gradient position numerically too.
            let mut xp = x.clone();
            xp.set(0, 0, x.get(0, 0) + eps);
            let lp: f32 = layer.infer(&xp).data().iter().sum();
            xp.set(0, 0, x.get(0, 0) - eps);
            let lm: f32 = layer.infer(&xp).data().iter().sum();
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (dx.get(0, 0) - numeric).abs() < 1e-2,
                "{act:?} dX[0,0]: analytic {} vs numeric {numeric}",
                dx.get(0, 0)
            );
        }
    }

    #[test]
    fn step_reduces_simple_loss() {
        // Fit y = 0 from a fixed input: loss should shrink.
        let mut layer = Linear::new(2, 1, Activation::Identity, 1);
        let x = Matrix::from_vec(1, 2, vec![1.0, 1.0]);
        let mut first = 0.0;
        let mut last = 0.0;
        for it in 0..80 {
            let y = layer.forward(&x);
            let loss = y.get(0, 0) * y.get(0, 0);
            let grad = Matrix::from_vec(1, 1, vec![2.0 * y.get(0, 0)]);
            layer.backward(&grad);
            layer.step(0.05);
            if it == 0 {
                first = loss;
            }
            last = loss;
        }
        // Adam may oscillate locally; require a big overall reduction.
        assert!(last < first * 0.05 || last < 1e-3, "final loss {last} vs initial {first}");
    }

    #[test]
    #[should_panic(expected = "backward before forward")]
    fn backward_requires_forward() {
        let mut l = Linear::new(2, 2, Activation::Relu, 0);
        let g = Matrix::zeros(1, 2);
        let _ = l.backward(&g);
    }
}
