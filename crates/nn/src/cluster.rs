//! Lloyd's k-means with deterministic farthest-point initialisation.
//!
//! Used by the RAPTOR baseline's summary tree and by the IVF vector index's
//! coarse quantiser. Deterministic: initialisation is farthest-point from
//! vector 0, ties broken by index, so identical inputs cluster identically.

// sage-lint: allow-file(panic-reachability) - k-means indexes vectors/centroids/counts sized together at entry; vectors is checked non-empty before use

/// Squared Euclidean distance.
#[inline]
pub fn squared_distance(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// K-means result: per-vector assignments and the final centroids.
#[derive(Debug, Clone)]
pub struct KMeans {
    /// Cluster id of each input vector.
    pub assignments: Vec<usize>,
    /// Cluster centroids (`k x dim`).
    pub centroids: Vec<Vec<f32>>,
}

/// Run Lloyd's algorithm for `iterations` rounds with `k` clusters
/// (clamped to the number of vectors). Empty input yields an empty result.
pub fn kmeans(vectors: &[Vec<f32>], k: usize, iterations: usize) -> KMeans {
    if vectors.is_empty() || k == 0 {
        return KMeans { assignments: Vec::new(), centroids: Vec::new() };
    }
    let k = k.min(vectors.len());
    let dim = vectors[0].len();

    // Farthest-point initialisation from vector 0.
    let mut centroids: Vec<Vec<f32>> = vec![vectors[0].clone()];
    while centroids.len() < k {
        let (far_idx, _) = vectors
            .iter()
            .enumerate()
            .map(|(i, v)| {
                let d = centroids
                    .iter()
                    .map(|c| squared_distance(v, c))
                    .fold(f32::INFINITY, f32::min);
                (i, d)
            })
            .max_by(|a, b| a.1.total_cmp(&b.1).then_with(|| b.0.cmp(&a.0)))
            .expect("nonempty");
        centroids.push(vectors[far_idx].clone());
    }

    let mut assignments = vec![0usize; vectors.len()];
    for _ in 0..iterations {
        // Assignment step.
        for (i, v) in vectors.iter().enumerate() {
            assignments[i] = centroids
                .iter()
                .enumerate()
                .min_by(|a, b| {
                    squared_distance(v, a.1)
                        .total_cmp(&squared_distance(v, b.1))
                        .then_with(|| a.0.cmp(&b.0))
                })
                .map(|(c, _)| c)
                .unwrap_or(0);
        }
        // Update step.
        let mut sums = vec![vec![0.0f32; dim]; k];
        let mut counts = vec![0usize; k];
        for (v, &a) in vectors.iter().zip(&assignments) {
            counts[a] += 1;
            for (s, x) in sums[a].iter_mut().zip(v) {
                *s += x;
            }
        }
        for (c, (sum, count)) in centroids.iter_mut().zip(sums.iter().zip(&counts)) {
            if *count > 0 {
                for (cc, s) in c.iter_mut().zip(sum) {
                    *cc = s / *count as f32;
                }
            }
        }
    }
    KMeans { assignments, centroids }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs() -> Vec<Vec<f32>> {
        let mut v = Vec::new();
        for i in 0..10 {
            v.push(vec![i as f32 * 0.01, 0.0]);
            v.push(vec![10.0 + i as f32 * 0.01, 0.0]);
        }
        v
    }

    #[test]
    fn separates_two_blobs() {
        let km = kmeans(&two_blobs(), 2, 10);
        let a0 = km.assignments[0];
        let a1 = km.assignments[1];
        assert_ne!(a0, a1);
        for (i, &a) in km.assignments.iter().enumerate() {
            assert_eq!(a, if i % 2 == 0 { a0 } else { a1 }, "point {i}");
        }
        assert_eq!(km.centroids.len(), 2);
    }

    #[test]
    fn centroids_land_in_blob_means() {
        let km = kmeans(&two_blobs(), 2, 10);
        let mut xs: Vec<f32> = km.centroids.iter().map(|c| c[0]).collect();
        xs.sort_by(f32::total_cmp);
        assert!((xs[0] - 0.045).abs() < 0.1, "{xs:?}");
        assert!((xs[1] - 10.045).abs() < 0.1, "{xs:?}");
    }

    #[test]
    fn k_clamped_to_len() {
        let v = vec![vec![1.0], vec![2.0]];
        let km = kmeans(&v, 10, 5);
        assert_eq!(km.centroids.len(), 2);
    }

    #[test]
    fn empty_input() {
        let km = kmeans(&[], 3, 5);
        assert!(km.assignments.is_empty());
        assert!(km.centroids.is_empty());
    }

    #[test]
    fn deterministic() {
        let a = kmeans(&two_blobs(), 3, 7);
        let b = kmeans(&two_blobs(), 3, 7);
        assert_eq!(a.assignments, b.assignments);
    }
}
