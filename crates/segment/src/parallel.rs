//! Batched parallel inference (§IV-D): "we can gather all pairs of
//! sentences within a corpus and organize them into multiple batches, each
//! with a size of 512" — the paper runs the batches on a GPU; we stripe
//! them across a thread pool, which exposes the same throughput-vs-workers
//! axis that the scalability experiment measures.

use crate::model::SegmentationModel;

/// Default batch size (matches the paper's 512).
pub const BATCH_SIZE: usize = 512;

/// Score many sentence pairs with `workers` threads; results align with the
/// input order.
pub fn score_pairs_parallel(
    model: &SegmentationModel,
    pairs: &[(String, String)],
    workers: usize,
) -> Vec<f32> {
    if pairs.is_empty() {
        return Vec::new();
    }
    let workers = workers.clamp(1, pairs.len());
    let mut scores = vec![0.0f32; pairs.len()];
    std::thread::scope(|s| {
        let chunks: Vec<(usize, &[(String, String)])> = {
            let per = pairs.len().div_ceil(workers);
            pairs.chunks(per).enumerate().map(|(i, c)| (i * per, c)).collect()
        };
        let mut handles = Vec::new();
        for (offset, chunk) in chunks {
            handles.push(s.spawn(move || {
                let local: Vec<f32> =
                    chunk.iter().map(|(a, b)| model.score_pair(a, b)).collect();
                (offset, local)
            }));
        }
        for h in handles {
            let (offset, local) = h.join().expect("scoring worker panicked");
            scores[offset..offset + local.len()].copy_from_slice(&local);
        }
    });
    scores
}

/// Throughput helper: tokens scored per second over a timed run. Used by
/// the Figure-7 and Tables VIII/IX latency columns.
pub fn segmentation_throughput(
    model: &SegmentationModel,
    pairs: &[(String, String)],
    workers: usize,
) -> (std::time::Duration, f64) {
    // sage-lint: allow(no-wallclock) - this helper IS the throughput meter (tokens/sec benchmark); callers opt into wall-clock by calling it
    let start = std::time::Instant::now();
    let _ = score_pairs_parallel(model, pairs, workers);
    let elapsed = start.elapsed();
    let tokens: usize =
        pairs.iter().map(|(a, b)| sage_text::count_tokens(a) + sage_text::count_tokens(b)).sum();
    let tps = tokens as f64 / elapsed.as_secs_f64().max(1e-9);
    (elapsed, tps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SegmentationModel;

    fn pairs(n: usize) -> Vec<(String, String)> {
        (0..n)
            .map(|i| (format!("Sentence number {i} about cats."), format!("It follows {i}.")))
            .collect()
    }

    #[test]
    fn parallel_matches_serial() {
        let model = SegmentationModel::default_model();
        let ps = pairs(37);
        let serial: Vec<f32> = ps.iter().map(|(a, b)| model.score_pair(a, b)).collect();
        for workers in [1, 2, 4, 8] {
            assert_eq!(score_pairs_parallel(&model, &ps, workers), serial);
        }
    }

    #[test]
    fn empty_input() {
        let model = SegmentationModel::default_model();
        assert!(score_pairs_parallel(&model, &[], 4).is_empty());
    }

    #[test]
    fn more_workers_than_pairs() {
        let model = SegmentationModel::default_model();
        let ps = pairs(3);
        assert_eq!(score_pairs_parallel(&model, &ps, 100).len(), 3);
    }

    #[test]
    fn throughput_positive() {
        let model = SegmentationModel::default_model();
        let (elapsed, tps) = segmentation_throughput(&model, &pairs(50), 2);
        assert!(elapsed.as_nanos() > 0);
        assert!(tps > 0.0);
    }
}
