//! The segmentation model (paper Figure 4) and its Algorithm-1 trainer.
//!
//! Architecture: hashed sentence features → shared [`EmbeddingTable`]
//! (mean-pooled) → feature augmentation → MLP → sigmoid score. A score near
//! 1 means "these adjacent sentences belong in the same chunk", near 0
//! means "segment here". Training updates both the embedding table and the
//! MLP (Algorithm 1, line 8 updates `f_e` and `M`).

use sage_embed::sentence_features;
use sage_nn::layer::Activation;
use sage_nn::matrix::Matrix;
use sage_nn::{EmbeddingTable, Mlp};

/// Which augmented features feed the MLP (Table X ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FeatureConfig {
    /// Include the elementwise difference `x₁ − x₂`.
    pub use_diff: bool,
    /// Include the elementwise product `x₁ · x₂`.
    pub use_prod: bool,
}

impl Default for FeatureConfig {
    /// The paper's full feature set.
    fn default() -> Self {
        Self { use_diff: true, use_prod: true }
    }
}

impl FeatureConfig {
    /// Only `(x₁, x₂)` — the Table X baseline row.
    pub fn base() -> Self {
        Self { use_diff: false, use_prod: false }
    }

    /// Number of concatenated feature blocks.
    fn blocks(self) -> usize {
        2 + usize::from(self.use_diff) + usize::from(self.use_prod)
    }

    /// Human-readable label matching the paper's Table X rows.
    pub fn label(self) -> &'static str {
        match (self.use_diff, self.use_prod) {
            (false, false) => "(x1), (x2)",
            (true, false) => "(x1), (x2), (x1 - x2)",
            (false, true) => "(x1), (x2), (x1 * x2)",
            (true, true) => "(x1), (x2), (x1 - x2), (x1 * x2)",
        }
    }
}

/// Per-epoch training metrics returned by [`SegmentationModel::train`].
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Mean MSE loss per epoch.
    pub epoch_losses: Vec<f32>,
}

/// The Figure-4 segmentation model.
#[derive(Debug, Clone)]
pub struct SegmentationModel {
    table: EmbeddingTable,
    mlp: Mlp,
    feat: FeatureConfig,
    buckets: usize,
    dim: usize,
    seed: u64,
}

impl SegmentationModel {
    /// Build an untrained model.
    ///
    /// * `buckets`/`dim` size the sentence embedder;
    /// * `hidden` sizes the MLP's hidden layer;
    /// * `feat` selects augmented features;
    /// * `seed` makes initialisation deterministic.
    pub fn new(buckets: usize, dim: usize, hidden: usize, feat: FeatureConfig, seed: u64) -> Self {
        let input = dim * feat.blocks();
        Self {
            table: EmbeddingTable::new(buckets, dim, seed),
            mlp: Mlp::new(&[input, hidden, 1], Activation::Tanh, Activation::Sigmoid, seed ^ 0x11),
            feat,
            buckets,
            dim,
            seed,
        }
    }

    /// The configuration used by experiment presets.
    pub fn default_model() -> Self {
        Self::new(2048, 32, 32, FeatureConfig::default(), 0x5E6)
    }

    /// The feature configuration.
    pub fn feature_config(&self) -> FeatureConfig {
        self.feat
    }

    /// Sentence featurization for the segmentation task: the shared hashed
    /// bag-of-features plus high-weight *leading-token* features. Sentence
    /// openings carry most of the boundary signal (pronoun-initial
    /// continuations vs. name-initial introductions), and making them
    /// separately addressable lets the linear layers pick that up without
    /// fighting the pooled average.
    fn features(&self, sentence: &str) -> Vec<(u32, f32)> {
        let mut feats = sentence_features(sentence, self.buckets, self.seed);
        let tokens = sage_text::tokenize(sentence);
        for (i, tok) in tokens.iter().take(2).enumerate() {
            let f = sage_text::hash_token(tok, self.buckets, self.seed ^ (0xF157 + i as u64));
            feats.push((f.bucket, f.sign * 2.0));
        }
        feats
    }

    fn pool(&self, feats: &[(u32, f32)]) -> Vec<f32> {
        let mut v = vec![0.0; self.dim];
        self.table.pool(feats, &mut v);
        v
    }

    /// Concatenate `(x₁, x₂[, x₁−x₂][, x₁·x₂])` per the feature config.
    fn augment(&self, x1: &[f32], x2: &[f32]) -> Vec<f32> {
        let mut input = Vec::with_capacity(self.dim * self.feat.blocks());
        input.extend_from_slice(x1);
        input.extend_from_slice(x2);
        if self.feat.use_diff {
            input.extend(x1.iter().zip(x2).map(|(a, b)| a - b));
        }
        if self.feat.use_prod {
            input.extend(x1.iter().zip(x2).map(|(a, b)| a * b));
        }
        input
    }

    /// Score an adjacent sentence pair in `[0, 1]`; below the threshold
    /// `ss` the pair should be segmented (§IV-D).
    pub fn score_pair(&self, s1: &str, s2: &str) -> f32 {
        let x1 = self.pool(&self.features(s1));
        let x2 = self.pool(&self.features(s2));
        let input = Matrix::from_row(&self.augment(&x1, &x2));
        self.mlp.infer(&input).get(0, 0)
    }

    /// Algorithm 1: train on `(s₁, s₂, label)` pairs with MSE, updating the
    /// embedder and the MLP jointly.
    pub fn train(&mut self, pairs: &[(String, String, f32)], lr: f32, epochs: usize) -> TrainReport {
        let mut epoch_losses = Vec::with_capacity(epochs);
        for epoch in 0..epochs {
            // Geometric learning-rate decay stabilises the final epochs.
            let lr = lr * 0.75f32.powi(epoch as i32);
            let mut total = 0.0;
            let mut count = 0usize;
            for (s1, s2, label) in pairs {
                let f1 = self.features(s1);
                let f2 = self.features(s2);
                if f1.is_empty() || f2.is_empty() {
                    continue;
                }
                let x1 = self.pool(&f1);
                let x2 = self.pool(&f2);
                let input = Matrix::from_row(&self.augment(&x1, &x2));
                let target = Matrix::from_vec(1, 1, vec![*label]);
                let (loss, input_grad) = self.mlp.train_batch_mse(&input, &target, lr);
                total += loss;
                count += 1;
                // Split the input gradient back into dL/dx₁ and dL/dx₂.
                let g = input_grad.row(0);
                let d = self.dim;
                let mut gx1: Vec<f32> = g[..d].to_vec();
                let mut gx2: Vec<f32> = g[d..2 * d].to_vec();
                let mut offset = 2 * d;
                if self.feat.use_diff {
                    let gd = &g[offset..offset + d];
                    for i in 0..d {
                        gx1[i] += gd[i];
                        gx2[i] -= gd[i];
                    }
                    offset += d;
                }
                if self.feat.use_prod {
                    let gp = &g[offset..offset + d];
                    for i in 0..d {
                        gx1[i] += gp[i] * x2[i];
                        gx2[i] += gp[i] * x1[i];
                    }
                }
                // Embedder update (SGD on the participating rows).
                self.table.apply_pooled_grad(&f1, &gx1, lr);
                self.table.apply_pooled_grad(&f2, &gx2, lr);
            }
            epoch_losses.push(if count == 0 { 0.0 } else { total / count as f32 });
        }
        TrainReport { epoch_losses }
    }

    /// Classification accuracy at threshold 0.5 on labelled pairs — the
    /// metric reported by the Table X ablation.
    pub fn evaluate(&self, pairs: &[(String, String, f32)]) -> f32 {
        if pairs.is_empty() {
            return 0.0;
        }
        let correct = pairs
            .iter()
            .filter(|(s1, s2, label)| {
                let pred = self.score_pair(s1, s2) >= 0.5;
                pred == (*label >= 0.5)
            })
            .count();
        correct as f32 / pairs.len() as f32
    }
}

impl sage_nn::BytesSerialize for SegmentationModel {
    fn write(&self, buf: &mut bytes::BytesMut) {
        use bytes::BufMut;
        buf.put_u32_le(self.buckets as u32);
        buf.put_u32_le(self.dim as u32);
        buf.put_u64_le(self.seed);
        buf.put_u8(u8::from(self.feat.use_diff));
        buf.put_u8(u8::from(self.feat.use_prod));
        self.table.write(buf);
        self.mlp.write(buf);
    }

    fn read(buf: &mut bytes::Bytes) -> Option<Self> {
        use sage_nn::io::{get_u32, get_u64, get_u8};
        let buckets = get_u32(buf)? as usize;
        let dim = get_u32(buf)? as usize;
        let seed = get_u64(buf)?;
        let feat = FeatureConfig { use_diff: get_u8(buf)? != 0, use_prod: get_u8(buf)? != 0 };
        let table = EmbeddingTable::read(buf)?;
        let mlp = Mlp::read(buf)?;
        if table.buckets() != buckets || table.dim() != dim || mlp.in_dim() != dim * feat.blocks()
        {
            return None;
        }
        Some(Self { table, mlp, feat, buckets, dim, seed })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sage_corpus::datasets::{wiki, SizeConfig};
    use sage_corpus::training::segmentation_pairs;

    fn train_eval(feat: FeatureConfig) -> f32 {
        let ds = wiki::generate(SizeConfig { num_docs: 14, questions_per_doc: 0, seed: 42 });
        let pairs = segmentation_pairs(&ds.documents, 1000, 1);
        let (train, val) = pairs.split_at(pairs.len() * 4 / 5);
        let mut model = SegmentationModel::new(2048, 24, 24, feat, 3);
        model.train(train, 0.05, 8);
        model.evaluate(val)
    }

    #[test]
    fn training_reduces_loss() {
        let ds = wiki::generate(SizeConfig { num_docs: 6, questions_per_doc: 0, seed: 1 });
        let pairs = segmentation_pairs(&ds.documents, 300, 2);
        let mut model = SegmentationModel::new(1024, 16, 16, FeatureConfig::default(), 4);
        let report = model.train(&pairs, 0.05, 5);
        assert!(
            report.epoch_losses.last().unwrap() < &(report.epoch_losses[0] * 0.9),
            "losses: {:?}",
            report.epoch_losses
        );
    }

    #[test]
    fn trained_model_beats_chance() {
        let acc = train_eval(FeatureConfig::default());
        assert!(acc > 0.7, "validation accuracy {acc}");
    }

    #[test]
    fn full_features_beat_base_features() {
        // The Table X ordering: (x1,x2,diff,prod) >= (x1,x2). Small margin
        // tolerance — both are trained on the same data.
        let full = train_eval(FeatureConfig::default());
        let base = train_eval(FeatureConfig::base());
        assert!(full + 0.02 >= base, "full {full} vs base {base}");
    }

    #[test]
    fn scores_in_unit_interval() {
        let model = SegmentationModel::default_model();
        for (a, b) in [
            ("The cat sat.", "He slept."),
            ("", "x"),
            ("Rain fell over the town.", "Rockets launched at dawn."),
        ] {
            let s = model.score_pair(a, b);
            assert!((0.0..=1.0).contains(&s), "score {s} for ({a}, {b})");
        }
    }

    #[test]
    fn feature_config_labels() {
        assert_eq!(FeatureConfig::default().label(), "(x1), (x2), (x1 - x2), (x1 * x2)");
        assert_eq!(FeatureConfig::base().label(), "(x1), (x2)");
        assert_eq!(FeatureConfig::base().blocks(), 2);
        assert_eq!(FeatureConfig::default().blocks(), 4);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = SegmentationModel::new(256, 8, 8, FeatureConfig::default(), 9);
        let b = SegmentationModel::new(256, 8, 8, FeatureConfig::default(), 9);
        assert_eq!(a.score_pair("one two", "three four"), b.score_pair("one two", "three four"));
    }

    #[test]
    fn evaluate_empty_is_zero() {
        let model = SegmentationModel::default_model();
        assert_eq!(model.evaluate(&[]), 0.0);
    }
}
