//! Segmenters — the three strategies of the paper's Figure 3 plus the
//! semantic strategy of Figure 3-D.

// sage-lint: allow-file(panic-reachability) - sentences is checked non-empty at entry and pair windows always hold exactly two sentences

use crate::model::SegmentationModel;
use sage_text::{count_tokens, split_paragraphs, split_sentences};

/// Splits a document's text into retrieval chunks.
pub trait Segmenter: Send + Sync {
    /// Segment `text` into chunks (in document order, covering all text).
    fn segment(&self, text: &str) -> Vec<String>;

    /// Display name for tables.
    fn name(&self) -> String;
}

/// Figure 3-A: cut every `max_tokens` words, mid-sentence. The worst
/// strategy; kept as an ablation baseline.
#[derive(Debug, Clone, Copy)]
pub struct FixedLengthSegmenter {
    /// Chunk size in whitespace tokens.
    pub max_tokens: usize,
}

impl Segmenter for FixedLengthSegmenter {
    fn segment(&self, text: &str) -> Vec<String> {
        assert!(self.max_tokens > 0);
        let words: Vec<&str> = text.split_whitespace().collect();
        words.chunks(self.max_tokens).map(|c| c.join(" ")).collect()
    }

    fn name(&self) -> String {
        format!("fixed-{}", self.max_tokens)
    }
}

/// Figure 3-B/C: greedy sentence packing up to a token budget — sentences
/// are never split, but semantic units can still straddle chunk borders.
/// The paper's Naive RAG baseline uses this with a 200-token budget.
#[derive(Debug, Clone, Copy)]
pub struct SentenceSegmenter {
    /// Token budget per chunk (LLM-token estimate, [`count_tokens`]).
    pub max_tokens: usize,
}

impl SentenceSegmenter {
    /// The paper's Naive RAG configuration (200 tokens).
    pub fn naive_rag() -> Self {
        Self { max_tokens: 200 }
    }
}

impl Segmenter for SentenceSegmenter {
    fn segment(&self, text: &str) -> Vec<String> {
        assert!(self.max_tokens > 0);
        let mut chunks = Vec::new();
        let mut current = String::new();
        let mut current_tokens = 0usize;
        for paragraph in split_paragraphs(text) {
            for sentence in split_sentences(paragraph) {
                let t = count_tokens(&sentence);
                if current_tokens + t > self.max_tokens && !current.is_empty() {
                    chunks.push(std::mem::take(&mut current));
                    current_tokens = 0;
                }
                if !current.is_empty() {
                    current.push(' ');
                }
                current.push_str(&sentence);
                current_tokens += t;
            }
        }
        if !current.is_empty() {
            chunks.push(current);
        }
        chunks
    }

    fn name(&self) -> String {
        format!("sentence-{}", self.max_tokens)
    }
}

/// Figure 3-D / §IV-E: coarse-to-fine semantic segmentation.
///
/// ```
/// use sage_segment::{FeatureConfig, SegmentationModel, Segmenter, SemanticSegmenter};
///
/// // An untrained model still produces a valid (if arbitrary) chunking;
/// // see `SegmentationModel::train` / Algorithm 1 for the real thing.
/// let model = SegmentationModel::new(256, 8, 8, FeatureConfig::default(), 7);
/// let segmenter = SemanticSegmenter::new(model);
/// let chunks = segmenter.segment("One sentence. Another sentence.\nA new paragraph.");
/// assert!(!chunks.is_empty());
/// ```
///
/// 1. Pack whole sentences into coarse chunks of ≈`coarse_tokens` (the
///    paper's `l`, default 400).
/// 2. Within each coarse chunk, score every adjacent sentence pair with the
///    trained [`SegmentationModel`]; cut where the score falls below the
///    threshold `ss` (default 0.55).
pub struct SemanticSegmenter {
    model: SegmentationModel,
    /// Segmentation score threshold `ss` (§IV-D).
    pub threshold: f32,
    /// Coarse chunk length `l` in tokens (§IV-E).
    pub coarse_tokens: usize,
}

impl SemanticSegmenter {
    /// Wrap a trained model with the paper-default hyper-parameters
    /// (`ss = 0.55`, `l = 400`).
    pub fn new(model: SegmentationModel) -> Self {
        Self { model, threshold: 0.55, coarse_tokens: 400 }
    }

    /// Override the threshold and coarse length.
    pub fn with_params(model: SegmentationModel, threshold: f32, coarse_tokens: usize) -> Self {
        Self { model, threshold, coarse_tokens }
    }

    /// Borrow the underlying model.
    pub fn model(&self) -> &SegmentationModel {
        &self.model
    }

    /// Whether a sentence opens with an unresolved pronoun — cutting before
    /// it would orphan the coreference (the exact Figure-3-B failure SAGE
    /// exists to avoid), so such cuts are vetoed regardless of the model
    /// score.
    fn starts_with_pronoun(sentence: &str) -> bool {
        const PRONOUNS: &[&str] =
            &["he", "she", "it", "his", "her", "its", "they", "their", "the eyes"];
        let lower = sentence.trim_start().to_lowercase();
        PRONOUNS.iter().any(|p| {
            lower.strip_prefix(p).is_some_and(|rest| {
                rest.chars().next().is_none_or(|c| !c.is_alphanumeric())
            })
        })
    }

    /// Segment a list of sentences (one paragraph) at score dips, with the
    /// coarse length `l` acting as a hard upper bound on chunk size.
    fn refine(&self, sentences: &[String]) -> Vec<String> {
        if sentences.is_empty() {
            return Vec::new();
        }
        let mut chunks = Vec::new();
        let mut current = sentences[0].clone();
        let mut current_tokens = count_tokens(&sentences[0]);
        for pair in sentences.windows(2) {
            let score = self.model.score_pair(&pair[0], &pair[1]);
            let guard = Self::starts_with_pronoun(&pair[1]);
            let over_budget = current_tokens > self.coarse_tokens;
            let cut = (score < self.threshold || over_budget) && !guard;
            if cut {
                chunks.push(std::mem::take(&mut current));
                current = pair[1].clone();
                current_tokens = count_tokens(&pair[1]);
            } else {
                current.push(' ');
                current.push_str(&pair[1]);
                current_tokens += count_tokens(&pair[1]);
            }
        }
        chunks.push(current);
        chunks
    }
}

impl Segmenter for SemanticSegmenter {
    fn segment(&self, text: &str) -> Vec<String> {
        // Paragraphs split on '\n' first (paper §III-A), then the model
        // refines within each paragraph; `coarse_tokens` caps chunk size
        // for paragraph-free text. Cutting at paragraph borders never
        // orphans a pronoun (writers re-introduce subjects across
        // paragraphs), while mid-paragraph cuts go through the guard.
        let mut out = Vec::new();
        for paragraph in split_paragraphs(text) {
            let sentences = split_sentences(paragraph);
            out.extend(self.refine(&sentences));
        }
        out
    }

    fn name(&self) -> String {
        format!("semantic-ss{:.2}-l{}", self.threshold, self.coarse_tokens)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{FeatureConfig, SegmentationModel};
    use sage_corpus::datasets::{wiki, SizeConfig};
    use sage_corpus::training::segmentation_pairs;

    const TEXT: &str = "I have a cat. His name is Whiskers and he has bright green eyes. \
                        Brone is my best friend. He enjoys sleeping when I am working.";

    #[test]
    fn fixed_length_cuts_mid_sentence() {
        let seg = FixedLengthSegmenter { max_tokens: 5 };
        let chunks = seg.segment(TEXT);
        assert!(chunks.len() > 3);
        // Mid-sentence cut: some chunk does not end with a period.
        assert!(chunks.iter().any(|c| !c.trim_end().ends_with('.')));
        // Coverage: rejoining reproduces the word sequence.
        let rejoined = chunks.join(" ");
        assert_eq!(
            rejoined.split_whitespace().collect::<Vec<_>>(),
            TEXT.split_whitespace().collect::<Vec<_>>()
        );
    }

    #[test]
    fn sentence_segmenter_keeps_sentences_whole() {
        let seg = SentenceSegmenter { max_tokens: 12 };
        let chunks = seg.segment(TEXT);
        assert!(chunks.len() >= 2);
        for c in &chunks {
            assert!(c.ends_with('.'), "chunk should end at a sentence: {c}");
        }
    }

    #[test]
    fn sentence_segmenter_respects_budget_loosely() {
        let seg = SentenceSegmenter { max_tokens: 15 };
        for c in seg.segment(TEXT) {
            // A single oversized sentence may exceed the budget, but packed
            // chunks must stay near it.
            assert!(count_tokens(&c) <= 30, "chunk too large: {c}");
        }
    }

    #[test]
    fn large_budget_single_chunk() {
        let seg = SentenceSegmenter { max_tokens: 10_000 };
        assert_eq!(seg.segment(TEXT).len(), 1);
    }

    #[test]
    fn empty_text() {
        assert!(SentenceSegmenter::naive_rag().segment("").is_empty());
        assert!(FixedLengthSegmenter { max_tokens: 10 }.segment("").is_empty());
    }

    fn trained_semantic() -> SemanticSegmenter {
        let ds = wiki::generate(SizeConfig { num_docs: 12, questions_per_doc: 0, seed: 21 });
        let pairs = segmentation_pairs(&ds.documents, 800, 3);
        let mut model = SegmentationModel::new(1024, 16, 16, FeatureConfig::default(), 5);
        model.train(&pairs, 0.05, 4);
        SemanticSegmenter::new(model)
    }

    #[test]
    fn semantic_segmenter_covers_text_and_cuts_at_topic_shifts() {
        let seg = trained_semantic();
        let ds = wiki::generate(SizeConfig { num_docs: 1, questions_per_doc: 0, seed: 99 });
        let text = ds.documents[0].text();
        let chunks = seg.segment(&text);
        assert!(chunks.len() > 1, "should produce several chunks");
        // Coverage: every sentence appears in exactly one chunk.
        let n_sentences: usize = sage_text::split_paragraphs(&text)
            .iter()
            .map(|p| sage_text::split_sentences(p).len())
            .sum();
        let in_chunks: usize = chunks.iter().map(|c| sage_text::split_sentences(c).len()).sum();
        assert_eq!(n_sentences, in_chunks, "sentence count must be preserved");
        // Chunks are smaller than the naive 200-token chunks on average
        // (the cost-saving mechanism of Table XI).
        let avg: usize =
            chunks.iter().map(|c| count_tokens(c)).sum::<usize>() / chunks.len();
        assert!(avg < 200, "semantic chunks should be small, got {avg}");
    }

    #[test]
    fn semantic_segmenter_name_reflects_params() {
        let seg = trained_semantic();
        assert!(seg.name().starts_with("semantic-ss0.55-l400"));
    }
}
