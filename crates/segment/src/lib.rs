//! # sage-segment
//!
//! Corpus segmentation (paper §IV) — SAGE's first contribution (C1).
//!
//! * [`SegmentationModel`] — the paper's Figure-4 architecture: a trainable
//!   sentence embedder, a feature-augmentation module producing
//!   `(x₁, x₂, x₁−x₂, x₁·x₂)`, and an MLP scoring head. Trained per
//!   Algorithm 1 on `(s₁, s₂, same-paragraph?)` pairs with MSE, updating
//!   both the embedder and the MLP.
//! * [`FeatureConfig`] — toggles the augmented features for the Table X
//!   ablation.
//! * [`Segmenter`] implementations:
//!   [`FixedLengthSegmenter`] (Figure 3-A: cuts mid-sentence),
//!   [`SentenceSegmenter`] (Figure 3-B/C: whole sentences up to a length
//!   budget — the paper's Naive RAG uses this at 200 tokens),
//!   [`SemanticSegmenter`] (Figure 3-D / §IV-E: coarse ~l-token chunks
//!   refined by the model at threshold `ss`).
//! * [`parallel::score_pairs_parallel`] — the batched inference path
//!   (§IV-D runs batches of 512 pairs on a GPU; we use a thread pool).

pub mod model;
pub mod parallel;
pub mod segmenter;

pub use model::{FeatureConfig, SegmentationModel, TrainReport};
pub use segmenter::{FixedLengthSegmenter, Segmenter, SemanticSegmenter, SentenceSegmenter};
