//! # sage-segment
//!
//! Corpus segmentation (paper §IV) — SAGE's first contribution (C1).
//!
//! * [`SegmentationModel`] — the paper's Figure-4 architecture: a trainable
//!   sentence embedder, a feature-augmentation module producing
//!   `(x₁, x₂, x₁−x₂, x₁·x₂)`, and an MLP scoring head. Trained per
//!   Algorithm 1 on `(s₁, s₂, same-paragraph?)` pairs with MSE, updating
//!   both the embedder and the MLP.
//! * [`FeatureConfig`] — toggles the augmented features for the Table X
//!   ablation.
//! * [`Segmenter`] implementations:
//!   [`FixedLengthSegmenter`] (Figure 3-A: cuts mid-sentence),
//!   [`SentenceSegmenter`] (Figure 3-B/C: whole sentences up to a length
//!   budget — the paper's Naive RAG uses this at 200 tokens),
//!   [`SemanticSegmenter`] (Figure 3-D / §IV-E: coarse ~l-token chunks
//!   refined by the model at threshold `ss`).
//! * [`parallel::score_pairs_parallel`] — the batched inference path
//!   (§IV-D runs batches of 512 pairs on a GPU; we use a thread pool).

pub mod model;
pub mod parallel;
pub mod segmenter;

pub use model::{FeatureConfig, SegmentationModel, TrainReport};
pub use segmenter::{FixedLengthSegmenter, Segmenter, SemanticSegmenter, SentenceSegmenter};

/// FNV-1a fingerprint of a document's text — the dirty-document check in
/// `sage-core`'s live-corpus writer. An upsert whose fingerprint matches
/// the stored one is a no-op, so only changed documents pay the
/// re-segmentation and re-embedding cost.
pub fn fingerprint(text: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in text.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod fingerprint_tests {
    use super::fingerprint;

    #[test]
    fn fingerprint_separates_texts_and_is_stable() {
        assert_eq!(fingerprint("the cat sat"), fingerprint("the cat sat"));
        assert_ne!(fingerprint("the cat sat"), fingerprint("the cat sat."));
        assert_ne!(fingerprint(""), fingerprint(" "));
    }
}
