//! The cross-feature reranking model.

// sage-lint: allow-file(deterministic-iteration) - term/bigram sets feed commutative overlap counts (order-free sums); ranked output is sorted by score with index tie-break

use crate::RankedChunk;
use sage_embed::{Embedder, HashedEmbedder};
use sage_nn::layer::Activation;
use sage_nn::matrix::{cosine, Matrix};
use sage_nn::Mlp;
use sage_text::{bigrams, count_tokens, stem, tokenize, tokenize_filtered, Vocab};
use std::collections::HashSet;

/// Number of cross features fed to the MLP head.
pub const NUM_FEATURES: usize = 7;

/// A trainable cross-encoder-style reranker over engineered features.
#[derive(Debug, Clone)]
pub struct CrossScorer {
    mlp: Mlp,
    embedder: HashedEmbedder,
    /// Corpus IDF statistics (fitted on the indexed chunks).
    idf: Vocab,
}

impl CrossScorer {
    /// Untrained scorer with seeded initialisation.
    pub fn new(seed: u64) -> Self {
        Self {
            mlp: Mlp::new(&[NUM_FEATURES, 12, 1], Activation::Tanh, Activation::Sigmoid, seed),
            embedder: HashedEmbedder::new(256, seed ^ 0xEE),
            idf: Vocab::new(),
        }
    }

    /// Fit IDF statistics on the chunk corpus (call once after indexing;
    /// without it, overlap features fall back to uniform weights).
    pub fn fit_idf(&mut self, chunks: &[String]) {
        self.idf = Vocab::new();
        for chunk in chunks {
            let ids: Vec<u32> =
                tokenize(chunk).iter().map(|t| self.idf.intern(&stem(t))).collect();
            self.idf.record_document(&ids);
        }
    }

    fn idf_weight(&self, term: &str) -> f32 {
        match self.idf.get(term) {
            Some(id) => self.idf.idf(id),
            // Unseen terms (or unfitted scorer): neutral weight.
            None => 1.0,
        }
    }

    /// Compute the cross features for a (question, chunk) pair.
    ///
    /// Features (all roughly in `[0, 1]`):
    /// 0. IDF-weighted content-stem overlap (question coverage)
    /// 1. plain content-stem overlap ratio
    /// 2. bigram overlap ratio
    /// 3. hashed-embedding cosine
    /// 4. capitalised-token (entity) match ratio
    /// 5. chunk-length prior (`tokens / 200`, capped at 1)
    /// 6. fraction of chunk stems that also occur in the question
    ///    (specificity — penalises chunks about everything)
    pub fn features(&self, question: &str, chunk: &str) -> [f32; NUM_FEATURES] {
        let q_tokens = tokenize_filtered(question);
        let q_stems: Vec<String> = q_tokens.iter().map(|t| stem(t)).collect();
        let c_tokens_all = tokenize(chunk);
        let c_stem_set: HashSet<String> =
            tokenize_filtered(chunk).iter().map(|t| stem(t)).collect();

        // 0/1: question coverage.
        let mut idf_hit = 0.0;
        let mut idf_total = 0.0;
        let mut hit = 0usize;
        for s in &q_stems {
            let w = self.idf_weight(s);
            idf_total += w;
            if c_stem_set.contains(s) {
                idf_hit += w;
                hit += 1;
            }
        }
        let f0 = if idf_total > 0.0 { idf_hit / idf_total } else { 0.0 };
        let f1 = if q_stems.is_empty() { 0.0 } else { hit as f32 / q_stems.len() as f32 };

        // 2: bigram overlap.
        let q_bi: HashSet<String> = bigrams(&tokenize(question)).into_iter().collect();
        let c_bi: HashSet<String> = bigrams(&c_tokens_all).into_iter().collect();
        let f2 = if q_bi.is_empty() {
            0.0
        } else {
            q_bi.intersection(&c_bi).count() as f32 / q_bi.len() as f32
        };

        // 3: embedding cosine (shifted from [-1,1] to [0,1]).
        let qe = self.embedder.embed(question);
        let ce = self.embedder.embed(chunk);
        let f3 = (cosine(&qe, &ce) + 1.0) / 2.0;

        // 4: entity match — capitalised words shared (proper names).
        let caps = |text: &str| -> HashSet<String> {
            text.split_whitespace()
                .filter(|w| w.chars().next().is_some_and(char::is_uppercase))
                .map(|w| {
                    // Normalize possessives: "Whiskers'" / "Whiskers's" →
                    // "whiskers", so entity mentions match across forms.
                    let mut t =
                        w.trim_matches(|c: char| !c.is_alphanumeric()).to_lowercase();
                    if let Some(base) = t.strip_suffix("'s") {
                        t = base.to_string();
                    }
                    t
                })
                .filter(|w| !w.is_empty() && !sage_text::is_stopword(w))
                .collect()
        };
        let q_caps = caps(question);
        let c_caps = caps(chunk);
        let f4 = if q_caps.is_empty() {
            0.0
        } else {
            q_caps.intersection(&c_caps).count() as f32 / q_caps.len() as f32
        };

        // 5: length prior.
        let f5 = (count_tokens(chunk) as f32 / 200.0).min(1.0);

        // 6: specificity.
        let q_stem_set: HashSet<&String> = q_stems.iter().collect();
        let f6 = if c_stem_set.is_empty() {
            0.0
        } else {
            c_stem_set.iter().filter(|s| q_stem_set.contains(s)).count() as f32
                / c_stem_set.len() as f32
        };

        [f0, f1, f2, f3, f4, f5, f6]
    }

    /// Relevance score in `[0, 1]`.
    pub fn score(&self, question: &str, chunk: &str) -> f32 {
        let f = self.features(question, chunk);
        self.mlp.infer(&Matrix::from_row(&f)).get(0, 0)
    }

    /// Train on labelled `(question, chunk, relevance ∈ {0,1})` examples;
    /// returns mean loss per epoch.
    pub fn train(&mut self, examples: &[(String, String, f32)], lr: f32, epochs: usize) -> Vec<f32> {
        let mut losses = Vec::with_capacity(epochs);
        for _ in 0..epochs {
            let mut total = 0.0;
            for (q, c, label) in examples {
                let f = self.features(q, c);
                let x = Matrix::from_row(&f);
                let y = Matrix::from_vec(1, 1, vec![*label]);
                let (loss, _) = self.mlp.train_batch_mse(&x, &y, lr);
                total += loss;
            }
            losses.push(total / examples.len().max(1) as f32);
        }
        losses
    }

    /// Convenience: train from (question, positive, negative) triples.
    pub fn train_from_triples(
        &mut self,
        triples: &[(String, String, String)],
        lr: f32,
        epochs: usize,
    ) -> Vec<f32> {
        let mut examples = Vec::with_capacity(triples.len() * 2);
        for (q, p, n) in triples {
            examples.push((q.clone(), p.clone(), 1.0));
            examples.push((q.clone(), n.clone(), 0.0));
        }
        self.train(&examples, lr, epochs)
    }

    /// Score all candidate chunks and return them sorted best-first
    /// (paper §III-B steps 5–6). A batch of one through
    /// [`crate::RerankBatch`], so the single-call and coalesced paths are
    /// the same code.
    pub fn rerank(&self, question: &str, chunks: &[&str]) -> Vec<RankedChunk> {
        use crate::RerankBatch;
        self.rerank_batch(&[(question, chunks)]).pop().unwrap_or_default()
    }
}

impl crate::RerankBatch for CrossScorer {
    fn rerank_batch(&self, batch: &[(&str, &[&str])]) -> Vec<Vec<RankedChunk>> {
        batch
            .iter()
            .map(|&(question, chunks)| {
                sage_telemetry::metrics::RERANK_CALLS.inc();
                sage_telemetry::metrics::RERANK_PAIRS_SCORED.add(chunks.len() as u64);
                let mut ranked: Vec<RankedChunk> = chunks
                    .iter()
                    .enumerate()
                    .map(|(index, chunk)| RankedChunk { index, score: self.score(question, chunk) })
                    .collect();
                ranked.sort_by(|a, b| {
                    b.score.total_cmp(&a.score).then_with(|| a.index.cmp(&b.index))
                });
                ranked
            })
            .collect()
    }
}

impl sage_nn::BytesSerialize for CrossScorer {
    fn write(&self, buf: &mut bytes::BytesMut) {
        use bytes::BufMut;
        use sage_nn::io::put_string;
        self.mlp.write(buf);
        self.embedder.write(buf);
        buf.put_u32_le(self.idf.len() as u32);
        for (term, &df) in self.idf.terms().iter().zip(self.idf.doc_freqs()) {
            put_string(buf, term);
            buf.put_u32_le(df);
        }
        buf.put_u32_le(self.idf.num_docs());
    }

    fn read(buf: &mut bytes::Bytes) -> Option<Self> {
        use bytes::Buf;
        use sage_nn::io::{get_string, get_u32};
        let mlp = Mlp::read(buf)?;
        let embedder = HashedEmbedder::read(buf)?;
        let n = get_u32(buf)? as usize;
        // Untrusted count: each entry needs at least a 4-byte string
        // length plus a 4-byte doc frequency, so bound it by the bytes
        // actually present before allocating.
        if n > buf.remaining() / 8 {
            return None;
        }
        let mut terms = Vec::with_capacity(n);
        let mut dfs = Vec::with_capacity(n);
        for _ in 0..n {
            terms.push(get_string(buf)?);
            dfs.push(get_u32(buf)?);
        }
        let num_docs = get_u32(buf)?;
        let idf = Vocab::from_parts(terms, dfs, num_docs)?;
        if mlp.in_dim() != NUM_FEATURES {
            return None;
        }
        Some(Self { mlp, embedder, idf })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sage_corpus::training::retrieval_triples;

    fn trained() -> CrossScorer {
        let mut scorer = CrossScorer::new(7);
        let triples = retrieval_triples(150, 11);
        scorer.train_from_triples(&triples, 0.05, 4);
        scorer
    }

    #[test]
    fn features_are_bounded() {
        let s = CrossScorer::new(1);
        for (q, c) in [
            ("What color are Whiskers' eyes?", "Whiskers has bright green eyes."),
            ("", ""),
            ("anything?", "totally unrelated text about harbors"),
        ] {
            for (i, f) in s.features(q, c).iter().enumerate() {
                assert!((0.0..=1.0).contains(f), "feature {i} = {f} out of range");
            }
        }
    }

    #[test]
    fn evidence_features_dominate_filler_features() {
        let s = CrossScorer::new(2);
        let q = "What color are Whiskers' eyes?";
        let evidence = s.features(q, "Whiskers has bright green eyes.");
        let filler = s.features(q, "The morning fog settled over the valley, as usual.");
        assert!(evidence[0] > filler[0], "idf overlap");
        assert!(evidence[4] > filler[4], "entity match");
    }

    #[test]
    fn training_reduces_loss() {
        let mut scorer = CrossScorer::new(3);
        let triples = retrieval_triples(100, 13);
        let losses = scorer.train_from_triples(&triples, 0.05, 5);
        assert!(losses.last().unwrap() < &losses[0], "{losses:?}");
    }

    #[test]
    fn trained_scorer_ranks_evidence_first() {
        let scorer = trained();
        let q = "What is the color of Whiskers's eyes?";
        let chunks = vec![
            "The harbor town woke early that day.",
            "Whiskers has bright green eyes.",
            "Brone wears a thick orange coat of fur.",
        ];
        let ranked = scorer.rerank(q, &chunks);
        assert_eq!(ranked[0].index, 1, "{ranked:?}");
        assert!(ranked[0].score > ranked.last().unwrap().score);
    }

    #[test]
    fn distractor_scores_between_evidence_and_filler() {
        // Same relation, wrong entity: should outrank filler but not the
        // true evidence — the precondition for Figure 8's noise behaviour.
        let scorer = trained();
        let q = "What is the color of Whiskers's eyes?";
        let evidence = scorer.score(q, "Whiskers has bright green eyes.");
        let distractor = scorer.score(q, "Patchy has bright orange eyes.");
        let filler = scorer.score(q, "Rain tapped gently on the old roof, and the day passed.");
        assert!(
            evidence > distractor && distractor > filler,
            "evidence {evidence}, distractor {distractor}, filler {filler}"
        );
    }

    #[test]
    fn rerank_is_deterministic_and_complete() {
        let scorer = trained();
        let chunks = vec!["a b c", "d e f", "g h i"];
        let r1 = scorer.rerank("a question about c", &chunks);
        let r2 = scorer.rerank("a question about c", &chunks);
        assert_eq!(r1, r2);
        assert_eq!(r1.len(), 3);
        let idx: HashSet<usize> = r1.iter().map(|r| r.index).collect();
        assert_eq!(idx.len(), 3);
    }

    #[test]
    fn fit_idf_changes_weighting() {
        let mut scorer = CrossScorer::new(5);
        let chunks: Vec<String> = vec![
            "the cat sat on the mat".into(),
            "the cat chased the dog".into(),
            "a rare zyzzyva appeared".into(),
        ];
        scorer.fit_idf(&chunks);
        // "zyzzyva" is rarer than "cat": idf-weighted overlap with the rare
        // term should exceed the common one.
        let rare = scorer.features("zyzzyva", "a rare zyzzyva appeared")[0];
        let common = scorer.features("cat", "the cat sat on the mat")[0];
        assert!(rare >= common);
    }
}
