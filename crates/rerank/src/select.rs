//! Gradient-based chunk selection — the paper's Algorithm 2.
//!
//! See the crate-level docs for the threshold semantics we adopt (keep
//! chunk *i* while `S[i] > S[i-1] * g`): the paper's pseudocode as printed
//! is unsatisfiable for descending scores, and the prose pins this reading.

// sage-lint: allow-file(panic-reachability) - take is clamped to ranked.len() before slicing and window indexing touches the two elements windows(2) guarantees

use crate::RankedChunk;

/// Parameters of Algorithm 2.
#[derive(Debug, Clone, Copy)]
pub struct SelectionConfig {
    /// Minimum number of chunks to keep (`min_k`; paper default 7, adjusted
    /// ±1 by the self-feedback loop).
    pub min_k: usize,
    /// Relative-drop threshold `g` (paper default 0.3): selection stops at
    /// the first chunk whose score falls to ≤ `g` × its predecessor.
    pub gradient: f32,
    /// Hard cap on the number of selected chunks (the paper's `N`, the
    /// vector-database candidate count).
    pub max_k: usize,
    /// Extension floor: beyond `min_k`, a chunk is only kept while its
    /// score is at least `floor_ratio` × the top score. Without this, a
    /// flat near-zero tail (every junk chunk scoring ≈ its junk
    /// predecessor) extends forever — the flat-tail degenerate case of the
    /// predecessor-ratio rule.
    pub floor_ratio: f32,
}

impl Default for SelectionConfig {
    fn default() -> Self {
        Self { min_k: 7, gradient: 0.3, max_k: 20, floor_ratio: 0.1 }
    }
}

/// Algorithm 2: dynamically select the top chunks before the first sharp
/// relative score drop.
///
/// `ranked` must be sorted best-first (as returned by
/// [`crate::CrossScorer::rerank`]). Returns a best-first prefix of
/// `ranked`: at least `min(min_k, len)` chunks, at most `max_k`.
///
/// ```
/// use sage_rerank::{gradient_select, RankedChunk, SelectionConfig};
///
/// // A focused question's score curve: strong head, sharp cliff.
/// let ranked: Vec<RankedChunk> = [0.95, 0.90, 0.85, 0.10, 0.08]
///     .iter()
///     .enumerate()
///     .map(|(index, &score)| RankedChunk { index, score })
///     .collect();
/// let cfg = SelectionConfig { min_k: 1, ..SelectionConfig::default() };
/// let selected = gradient_select(&ranked, cfg);
/// assert_eq!(selected.len(), 3); // stops at the cliff
/// ```
pub fn gradient_select(ranked: &[RankedChunk], cfg: SelectionConfig) -> Vec<RankedChunk> {
    debug_assert!(
        ranked.windows(2).all(|w| w[0].score >= w[1].score),
        "gradient_select expects descending scores"
    );
    let min_k = cfg.min_k.max(1);
    let take = min_k.min(ranked.len()).min(cfg.max_k);
    let mut selected: Vec<RankedChunk> = ranked[..take].to_vec();
    let floor = ranked.first().map_or(0.0, |r| r.score * cfg.floor_ratio);
    for i in take..ranked.len().min(cfg.max_k) {
        let prev = ranked[i - 1].score;
        // Keep while the score has not collapsed relative to its
        // predecessor and is still a meaningful fraction of the best.
        if prev > 0.0 && ranked[i].score > prev * cfg.gradient && ranked[i].score >= floor {
            selected.push(ranked[i]);
        } else {
            break;
        }
    }
    selected
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ranked(scores: &[f32]) -> Vec<RankedChunk> {
        scores
            .iter()
            .enumerate()
            .map(|(index, &score)| RankedChunk { index, score })
            .collect()
    }

    #[test]
    fn stops_at_sharp_drop() {
        // Figure 5 Article-1 shape: three strong chunks then a cliff.
        let r = ranked(&[0.95, 0.90, 0.85, 0.10, 0.08, 0.05]);
        let cfg = SelectionConfig { min_k: 1, gradient: 0.3, max_k: 10, ..SelectionConfig::default() };
        let sel = gradient_select(&r, cfg);
        assert_eq!(sel.len(), 3, "{sel:?}");
    }

    #[test]
    fn keeps_extending_on_smooth_slope() {
        // Figure 5 Article-2 / Figure 9 shape: smooth decline → take many.
        let r = ranked(&[0.9, 0.8, 0.72, 0.65, 0.6, 0.55, 0.5, 0.46]);
        let cfg = SelectionConfig { min_k: 1, gradient: 0.3, max_k: 10, ..SelectionConfig::default() };
        let sel = gradient_select(&r, cfg);
        assert_eq!(sel.len(), 8, "smooth slope should keep all: {sel:?}");
    }

    #[test]
    fn smooth_tail_above_floor_extends_despite_early_cliff() {
        // The drop happens *within* the mandatory min_k prefix; extension
        // is judged relative to each predecessor, so a smooth tail that
        // stays above the floor is kept.
        let r = ranked(&[0.9, 0.5, 0.45, 0.40, 0.36]);
        let cfg = SelectionConfig { min_k: 3, gradient: 0.3, max_k: 10, ..SelectionConfig::default() };
        let sel = gradient_select(&r, cfg);
        assert_eq!(sel.len(), 5, "{sel:?}");
    }

    #[test]
    fn flat_junk_tail_stops_at_floor() {
        // The degenerate case the floor exists for: a saturated scorer
        // gives [1.0, 1.0, ~0, ~0, …] and the near-zero tail must not be
        // dragged in by the predecessor-ratio rule.
        let r = ranked(&[1.0, 1.0, 0.004, 0.0039, 0.0038, 0.0037, 0.0036]);
        let cfg = SelectionConfig { min_k: 2, gradient: 0.3, max_k: 20, ..SelectionConfig::default() };
        let sel = gradient_select(&r, cfg);
        assert_eq!(sel.len(), 2, "{sel:?}");
    }

    #[test]
    fn cliff_at_min_k_boundary_stops() {
        let r = ranked(&[0.9, 0.8, 0.7, 0.1, 0.09]);
        let cfg = SelectionConfig { min_k: 3, gradient: 0.3, max_k: 10, ..SelectionConfig::default() };
        let sel = gradient_select(&r, cfg);
        assert_eq!(sel.len(), 3, "{sel:?}");
    }

    #[test]
    fn respects_max_k() {
        let r = ranked(&[0.9, 0.89, 0.88, 0.87, 0.86, 0.85]);
        let cfg = SelectionConfig { min_k: 1, gradient: 0.3, max_k: 4, ..SelectionConfig::default() };
        assert_eq!(gradient_select(&r, cfg).len(), 4);
    }

    #[test]
    fn fewer_candidates_than_min_k() {
        let r = ranked(&[0.9, 0.8]);
        let cfg = SelectionConfig { min_k: 7, gradient: 0.3, max_k: 20, ..SelectionConfig::default() };
        assert_eq!(gradient_select(&r, cfg).len(), 2);
    }

    #[test]
    fn empty_input() {
        let cfg = SelectionConfig::default();
        assert!(gradient_select(&[], cfg).is_empty());
    }

    #[test]
    fn zero_scores_stop_extension() {
        let r = ranked(&[0.5, 0.0, 0.0]);
        let cfg = SelectionConfig { min_k: 1, gradient: 0.3, max_k: 10, ..SelectionConfig::default() };
        assert_eq!(gradient_select(&r, cfg).len(), 1);
    }

    #[test]
    fn min_k_zero_treated_as_one() {
        let r = ranked(&[0.9, 0.1]);
        let cfg = SelectionConfig { min_k: 0, gradient: 0.3, max_k: 10, ..SelectionConfig::default() };
        let sel = gradient_select(&r, cfg);
        assert_eq!(sel.len(), 1);
    }

    #[test]
    fn selection_is_a_prefix() {
        let r = ranked(&[0.9, 0.7, 0.6, 0.2, 0.15]);
        let cfg = SelectionConfig { min_k: 2, gradient: 0.3, max_k: 10, ..SelectionConfig::default() };
        let sel = gradient_select(&r, cfg);
        for (i, s) in sel.iter().enumerate() {
            assert_eq!(s.index, r[i].index);
        }
    }

    #[test]
    fn smaller_gradient_selects_more() {
        // g → 0 tolerates any drop; g → 1 tolerates none.
        let r = ranked(&[0.9, 0.5, 0.3, 0.2, 0.12]);
        let loose = SelectionConfig { min_k: 1, gradient: 0.1, max_k: 10, ..SelectionConfig::default() };
        let tight = SelectionConfig { min_k: 1, gradient: 0.9, max_k: 10, ..SelectionConfig::default() };
        assert!(gradient_select(&r, loose).len() > gradient_select(&r, tight).len());
    }
}
