//! # sage-rerank
//!
//! Second-stage reranking and chunk selection (paper §V) — SAGE's second
//! contribution (C2).
//!
//! * [`CrossScorer`] — the "sophisticated reranking model": a trained MLP
//!   over cross features of the (question, chunk) pair (IDF-weighted
//!   overlap, bigram overlap, embedding cosine, entity match, …). Where the
//!   paper fine-tunes a BGE-style cross-encoder, we train this scorer on
//!   the same kind of (question, positive, negative) supervision; it
//!   produces the Figure-5 score patterns the selection algorithm needs
//!   (sharp dip after the relevant chunks for focused questions, smooth
//!   slopes for broad ones).
//! * [`gradient_select`] — Algorithm 2: keep the top `min_k` chunks, then
//!   keep extending while each next score stays above `gradient` × its
//!   predecessor; stop at the first sharp relative drop.
//!
//! ### Reading of Algorithm 2's threshold
//!
//! The paper's pseudocode tests `S[i] > score / g` with `g = 0.3`, which is
//! unsatisfiable for descending scores (it would require each score to
//! *exceed* 3.3× its predecessor). The prose — "select top chunks before a
//! decrease rate of `g`" and Figure 5's "sharp decline" discussion — pins
//! the intended semantics: **keep chunk i while `S[i] > S[i-1] * g`**,
//! i.e. stop when a score falls to below 30% of its predecessor. That
//! reading selects 3 chunks for Figure 5's Article-1 and keeps extending
//! through Article-2's smooth slope, exactly as the paper describes.

pub mod flexible;
pub mod scorer;
pub mod select;

pub use flexible::{FlexibleSelector, NUM_SELECT_FEATURES};
pub use scorer::CrossScorer;
pub use select::{gradient_select, SelectionConfig};

/// A reranked chunk: index into the candidate list plus relevance score.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankedChunk {
    /// Index into the chunk list the reranker was given.
    pub index: usize,
    /// Relevance score in `[0, 1]`, higher = more relevant.
    pub score: f32,
}

/// Cross-query batched reranking: the surface the slot scheduler coalesces
/// same-stage rerank work through. One request is a `(question, candidate
/// chunks)` pair; the contract is element-wise identity — result `i` of
/// `rerank_batch` must be bit-identical to `rerank(batch[i].0,
/// batch[i].1)` — so coalescing queries never changes any ranking. The
/// [`CrossScorer`] implementation makes the batch path the primitive and
/// the single-call path a batch of one.
pub trait RerankBatch {
    /// Rerank many `(question, chunks)` requests; element `i` equals the
    /// single-call reranking of request `i` exactly.
    fn rerank_batch(&self, batch: &[(&str, &[&str])]) -> Vec<Vec<RankedChunk>>;
}
