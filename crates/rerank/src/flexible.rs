//! Flexible chunk selection — the paper's future-work direction §X(3):
//! "Although SAGE selects a dynamic number of chunks, it is still possible
//! there are useless chunks, e.g., the chunk with the highest relevance
//! score is useless. Therefore, a more flexible chunk selection strategy
//! might help."
//!
//! [`FlexibleSelector`] is a trained per-chunk keep/drop classifier over
//! *list-aware* features (the chunk's score, its score relative to the top
//! and to its neighbours, its rank) plus the raw relevance score. Unlike
//! Algorithm 2 it is not constrained to select a prefix: a high-ranked
//! chunk with prefix-breaking feature patterns can be dropped and a
//! lower-ranked one kept.

use crate::{gradient_select, RankedChunk, SelectionConfig};
use sage_nn::layer::Activation;
use sage_nn::matrix::Matrix;
use sage_nn::Mlp;

/// Number of per-chunk selection features.
pub const NUM_SELECT_FEATURES: usize = 5;

/// Compute the selection features for the chunk at `pos` of a best-first
/// ranked list:
/// 0. absolute relevance score
/// 1. score / top score
/// 2. score / predecessor score (the Algorithm-2 gradient signal)
/// 3. normalised rank (`pos / len`)
/// 4. score / successor score (cliff-ahead signal)
pub fn selection_features(ranked: &[RankedChunk], pos: usize) -> [f32; NUM_SELECT_FEATURES] {
    let score = ranked[pos].score;
    let top = ranked[0].score.max(1e-6);
    let prev = if pos == 0 { score } else { ranked[pos - 1].score }.max(1e-6);
    let next = ranked.get(pos + 1).map_or(score, |r| r.score);
    [
        score,
        (score / top).clamp(0.0, 1.0),
        (score / prev).clamp(0.0, 1.0),
        pos as f32 / ranked.len().max(1) as f32,
        if score > 1e-6 { (next / score).clamp(0.0, 1.0) } else { 0.0 },
    ]
}

/// A trained keep/drop selector.
#[derive(Debug, Clone)]
pub struct FlexibleSelector {
    mlp: Mlp,
    /// Keep threshold on the classifier probability.
    pub threshold: f32,
}

impl FlexibleSelector {
    /// Untrained selector (seeded init, threshold 0.5).
    pub fn new(seed: u64) -> Self {
        Self {
            mlp: Mlp::new(&[NUM_SELECT_FEATURES, 8, 1], Activation::Tanh, Activation::Sigmoid, seed),
            threshold: 0.5,
        }
    }

    /// Keep-probability for one chunk of a ranked list.
    pub fn keep_probability(&self, ranked: &[RankedChunk], pos: usize) -> f32 {
        let f = selection_features(ranked, pos);
        self.mlp.infer(&Matrix::from_row(&f)).get(0, 0)
    }

    /// Train on `(features, keep-label)` examples; returns mean loss per
    /// epoch. Examples come from ranked lists with evidence ground truth
    /// (assembled by `sage-core::models`).
    pub fn train(
        &mut self,
        examples: &[([f32; NUM_SELECT_FEATURES], f32)],
        lr: f32,
        epochs: usize,
    ) -> Vec<f32> {
        let mut losses = Vec::with_capacity(epochs);
        for _ in 0..epochs {
            let mut total = 0.0;
            for (features, label) in examples {
                let x = Matrix::from_row(features);
                let y = Matrix::from_vec(1, 1, vec![*label]);
                let (loss, _) = self.mlp.train_batch_mse(&x, &y, lr);
                total += loss;
            }
            losses.push(total / examples.len().max(1) as f32);
        }
        losses
    }

    /// Select chunks: every chunk with keep-probability ≥ threshold, plus
    /// a fallback to the single best chunk when the classifier keeps
    /// nothing (an empty context is never useful). Not prefix-constrained.
    pub fn select(&self, ranked: &[RankedChunk], max_k: usize) -> Vec<RankedChunk> {
        let mut kept: Vec<RankedChunk> = (0..ranked.len())
            .filter(|&pos| self.keep_probability(ranked, pos) >= self.threshold)
            .map(|pos| ranked[pos])
            .take(max_k)
            .collect();
        if kept.is_empty() && !ranked.is_empty() {
            kept.push(ranked[0]);
        }
        kept
    }
}

/// Build keep/drop training examples from ranked lists with known
/// usefulness labels: `lists` pairs each ranked list with a per-position
/// "this chunk carries evidence" flag.
pub fn training_examples(
    lists: &[(Vec<RankedChunk>, Vec<bool>)],
) -> Vec<([f32; NUM_SELECT_FEATURES], f32)> {
    let mut out = Vec::new();
    for (ranked, useful) in lists {
        debug_assert_eq!(ranked.len(), useful.len());
        for (pos, &keep) in useful.iter().enumerate() {
            out.push((selection_features(ranked, pos), f32::from(keep)));
        }
    }
    out
}

/// Convenience baseline for ablation benches: Algorithm-2 selection with
/// the same signature as [`FlexibleSelector::select`].
pub fn gradient_baseline(ranked: &[RankedChunk], cfg: SelectionConfig) -> Vec<RankedChunk> {
    gradient_select(ranked, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ranked(scores: &[f32]) -> Vec<RankedChunk> {
        scores
            .iter()
            .enumerate()
            .map(|(index, &score)| RankedChunk { index, score })
            .collect()
    }

    /// Synthetic training world: chunks with score ≥ 0.5 relative to top
    /// are useful, others are not — plus "poisoned head" lists where the
    /// top chunk is useless (score 1.0 but followed immediately by equally
    /// high useful ones is indistinguishable; we poison by making the head
    /// an outlier: huge score, big gap to a *cluster* of mid scores).
    fn training_world() -> Vec<(Vec<RankedChunk>, Vec<bool>)> {
        let mut lists = Vec::new();
        // Normal lists: useful head, junk tail.
        for n_useful in 1..=4usize {
            let mut scores = vec![0.9; n_useful];
            scores.extend(vec![0.05; 6 - n_useful.min(6)]);
            let useful: Vec<bool> = (0..scores.len()).map(|i| i < n_useful).collect();
            lists.push((ranked(&scores), useful));
        }
        // Smooth lists: everything moderately relevant and useful.
        lists.push((
            ranked(&[0.8, 0.75, 0.7, 0.65, 0.6, 0.55]),
            vec![true; 6],
        ));
        lists
    }

    #[test]
    fn training_reduces_loss() {
        let examples = training_examples(&training_world());
        let mut sel = FlexibleSelector::new(1);
        let losses = sel.train(&examples, 0.05, 40);
        assert!(losses.last().unwrap() < &losses[0], "{losses:?}");
    }

    #[test]
    fn trained_selector_separates_head_from_tail() {
        let examples = training_examples(&training_world());
        let mut sel = FlexibleSelector::new(2);
        sel.train(&examples, 0.05, 80);
        let r = ranked(&[0.9, 0.88, 0.06, 0.05, 0.04]);
        let kept = sel.select(&r, 10);
        let ids: Vec<usize> = kept.iter().map(|k| k.index).collect();
        assert!(ids.contains(&0) && ids.contains(&1), "{ids:?}");
        assert!(!ids.contains(&3), "{ids:?}");
    }

    #[test]
    fn keeps_smooth_lists_broadly() {
        let examples = training_examples(&training_world());
        let mut sel = FlexibleSelector::new(3);
        sel.train(&examples, 0.05, 80);
        let r = ranked(&[0.8, 0.74, 0.69, 0.63, 0.58]);
        assert!(sel.select(&r, 10).len() >= 4);
    }

    #[test]
    fn never_returns_empty_for_nonempty_input() {
        let sel = FlexibleSelector::new(4); // untrained: arbitrary outputs
        let r = ranked(&[0.01]);
        assert_eq!(sel.select(&r, 10).len(), 1);
        assert!(sel.select(&[], 10).is_empty());
    }

    #[test]
    fn respects_max_k() {
        let examples = training_examples(&training_world());
        let mut sel = FlexibleSelector::new(5);
        sel.train(&examples, 0.05, 40);
        let r = ranked(&[0.9; 12]);
        assert!(sel.select(&r, 3).len() <= 3);
    }

    #[test]
    fn features_are_bounded_and_ordered() {
        let r = ranked(&[1.0, 0.5, 0.1]);
        let f0 = selection_features(&r, 0);
        let f2 = selection_features(&r, 2);
        assert_eq!(f0[1], 1.0, "top chunk's relative score is 1");
        assert!(f2[1] < f0[1]);
        assert!(f2[3] > f0[3], "rank feature grows");
        for f in f0.iter().chain(f2.iter()) {
            assert!(f.is_finite());
        }
    }
}
