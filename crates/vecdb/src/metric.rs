//! Similarity metrics. The paper's retrieval phase uses "the shortest
//! cosine distance" (§II-A); since every embedder in this workspace emits
//! unit-L2 vectors, cosine similarity equals the dot product, but the
//! metric is kept explicit so the index also works with unnormalised data.

/// Similarity metric for a vector index. All variants are oriented so that
/// **higher is more similar**.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Metric {
    /// Cosine similarity in `[-1, 1]`.
    #[default]
    Cosine,
    /// Raw inner product.
    Dot,
    /// Negated Euclidean distance (so higher is closer).
    NegEuclidean,
}

impl Metric {
    /// Similarity between two equal-length vectors.
    #[inline]
    pub fn similarity(self, a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        match self {
            Metric::Dot => dot(a, b),
            Metric::Cosine => {
                let na = dot(a, a).sqrt();
                let nb = dot(b, b).sqrt();
                if na == 0.0 || nb == 0.0 {
                    0.0
                } else {
                    dot(a, b) / (na * nb)
                }
            }
            Metric::NegEuclidean => {
                let mut s = 0.0;
                for (x, y) in a.iter().zip(b) {
                    let d = x - y;
                    s += d * d;
                }
                -s.sqrt()
            }
        }
    }
}

#[inline]
fn dot(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cosine_self_is_one() {
        let v = [0.6, 0.8];
        assert!((Metric::Cosine.similarity(&v, &v) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_zero_vector_is_zero() {
        assert_eq!(Metric::Cosine.similarity(&[0.0, 0.0], &[1.0, 0.0]), 0.0);
    }

    #[test]
    fn dot_matches_cosine_for_unit_vectors() {
        let a = [0.6, 0.8];
        let b = [1.0, 0.0];
        assert!(
            (Metric::Dot.similarity(&a, &b) - Metric::Cosine.similarity(&a, &b)).abs() < 1e-6
        );
    }

    #[test]
    fn euclidean_orientation() {
        let origin = [0.0, 0.0];
        let near = [1.0, 0.0];
        let far = [3.0, 4.0];
        let m = Metric::NegEuclidean;
        assert!(m.similarity(&origin, &near) > m.similarity(&origin, &far));
        assert_eq!(m.similarity(&origin, &far), -5.0);
    }
}
