//! Exact brute-force index over a contiguous vector arena.
//!
//! Scan + binary-heap top-N. At the paper's corpus sizes (thousands of
//! chunks per document) an exact scan is microseconds, so this is the
//! default index for accuracy experiments; the `micro_vecdb` bench
//! quantifies where [`crate::HnswIndex`] overtakes it.

use crate::metric::Metric;
use crate::{Hit, VectorIndex};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Min-heap entry so the heap evicts the *worst* of the current top-N.
#[derive(PartialEq)]
struct HeapHit(Hit);

impl Eq for HeapHit {}

impl PartialOrd for HeapHit {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapHit {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse on score => BinaryHeap::peek is the smallest score.
        // NaN-safe: total_cmp. Ties broken by id for determinism.
        other
            .0
            .score
            .total_cmp(&self.0.score)
            .then_with(|| self.0.id.cmp(&other.0.id))
    }
}

/// Exact top-N index backed by one contiguous `Vec<f32>` arena.
///
/// ```
/// use sage_vecdb::{FlatIndex, VectorIndex};
///
/// let mut index = FlatIndex::cosine();
/// index.add(vec![1.0, 0.0]);
/// index.add(vec![0.0, 1.0]);
/// let hits = index.search(&[0.9, 0.1], 1);
/// assert_eq!(hits[0].id, 0);
/// ```
#[derive(Debug, Clone)]
pub struct FlatIndex {
    metric: Metric,
    dim: usize,
    data: Vec<f32>,
}

impl FlatIndex {
    /// Empty index with the given metric; the dimensionality is fixed by
    /// the first insert.
    pub fn new(metric: Metric) -> Self {
        Self { metric, dim: 0, data: Vec::new() }
    }

    /// Empty cosine index (the paper default).
    pub fn cosine() -> Self {
        Self::new(Metric::Cosine)
    }

    /// Borrow the vector with internal id `id`.
    pub fn vector(&self, id: usize) -> Option<&[f32]> {
        if self.dim == 0 || id >= self.len() {
            return None;
        }
        // sage-lint: allow(panic-reachability) - the id >= len guard above makes the dim-wide row slice valid
        Some(&self.data[id * self.dim..(id + 1) * self.dim])
    }

    /// Serialize to a compact binary blob (little-endian):
    /// `[metric u8][dim u32][count u32][f32 * dim * count]`.
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(9 + self.data.len() * 4);
        buf.put_u8(match self.metric {
            Metric::Cosine => 0,
            Metric::Dot => 1,
            Metric::NegEuclidean => 2,
        });
        buf.put_u32_le(self.dim as u32);
        buf.put_u32_le(self.len() as u32);
        for &v in &self.data {
            buf.put_f32_le(v);
        }
        buf.freeze()
    }

    /// Deserialize a blob produced by [`FlatIndex::to_bytes`].
    /// Returns `None` on malformed input.
    pub fn from_bytes(mut bytes: Bytes) -> Option<Self> {
        if bytes.remaining() < 9 {
            return None;
        }
        let metric = match bytes.get_u8() {
            0 => Metric::Cosine,
            1 => Metric::Dot,
            2 => Metric::NegEuclidean,
            _ => return None,
        };
        let dim = bytes.get_u32_le() as usize;
        let count = bytes.get_u32_le() as usize;
        let need = dim.checked_mul(count)?.checked_mul(4)?;
        if bytes.remaining() != need {
            return None;
        }
        let mut data = Vec::with_capacity(dim * count);
        for _ in 0..dim * count {
            data.push(bytes.get_f32_le());
        }
        Some(Self { metric, dim, data })
    }

    /// Exact top-N over many queries concurrently (one scoped thread per
    /// worker; queries are striped). Used by the scalability experiment to
    /// model concurrent retrieval load.
    pub fn search_batch(&self, queries: &[Vec<f32>], n: usize, workers: usize) -> Vec<Vec<Hit>> {
        let workers = workers.clamp(1, queries.len().max(1));
        let mut results: Vec<Vec<Hit>> = vec![Vec::new(); queries.len()];
        let chunks: Vec<(usize, &Vec<f32>)> = queries.iter().enumerate().collect();
        std::thread::scope(|s| {
            let mut handles = Vec::new();
            for w in 0..workers {
                let my: Vec<(usize, &Vec<f32>)> =
                    chunks.iter().skip(w).step_by(workers).cloned().collect();
                handles.push(s.spawn(move || {
                    my.into_iter()
                        .map(|(i, q)| {
                            // Isolate a panicking query (e.g. a poisoned
                            // vector): its slot stays empty, the batch
                            // completes.
                            let hits = std::panic::catch_unwind(std::panic::AssertUnwindSafe(
                                || self.search(q, n),
                            ))
                            .unwrap_or_default();
                            (i, hits)
                        })
                        .collect::<Vec<_>>()
                }));
            }
            for h in handles {
                if let Ok(batch) = h.join() {
                    for (i, hits) in batch {
                        results[i] = hits;
                    }
                }
            }
        });
        results
    }
}

impl VectorIndex for FlatIndex {
    fn add(&mut self, vector: Vec<f32>) -> usize {
        if self.dim == 0 {
            assert!(!vector.is_empty(), "cannot index empty vectors");
            self.dim = vector.len();
        }
        assert_eq!(vector.len(), self.dim, "vector dim {} != index dim {}", vector.len(), self.dim);
        let id = self.len();
        self.data.extend_from_slice(&vector);
        id
    }

    fn search(&self, query: &[f32], n: usize) -> Vec<Hit> {
        if self.dim == 0 || n == 0 {
            return Vec::new();
        }
        assert_eq!(query.len(), self.dim, "query dim mismatch");
        sage_telemetry::metrics::VECDB_FLAT_SEARCHES.inc();
        sage_telemetry::metrics::VECDB_FLAT_DISTANCE_EVALS.add(self.len() as u64);
        let mut heap: BinaryHeap<HeapHit> = BinaryHeap::with_capacity(n + 1);
        for id in 0..self.len() {
            // sage-lint: allow(panic-reachability) - ids iterate 0..len over rows sized dim*len at insert
            let v = &self.data[id * self.dim..(id + 1) * self.dim];
            let score = self.metric.similarity(query, v);
            heap.push(HeapHit(Hit { id, score }));
            if heap.len() > n {
                heap.pop();
            }
        }
        let mut hits: Vec<Hit> = heap.into_iter().map(|h| h.0).collect();
        hits.sort_by(|a, b| b.score.total_cmp(&a.score).then_with(|| a.id.cmp(&b.id)));
        hits
    }

    fn clear(&mut self) {
        self.dim = 0;
        self.data.clear();
    }

    fn len(&self) -> usize {
        self.data.len().checked_div(self.dim).unwrap_or(0)
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn memory_bytes(&self) -> usize {
        self.data.capacity() * std::mem::size_of::<f32>() + std::mem::size_of::<Self>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit(theta: f32) -> Vec<f32> {
        vec![theta.cos(), theta.sin()]
    }

    #[test]
    fn exact_nearest_neighbour() {
        let mut idx = FlatIndex::cosine();
        for i in 0..10 {
            idx.add(unit(i as f32 * 0.3));
        }
        let hits = idx.search(&unit(0.95), 3);
        assert_eq!(hits.len(), 3);
        assert_eq!(hits[0].id, 3); // 0.9 is the closest angle to 0.95
        assert!(hits[0].score >= hits[1].score && hits[1].score >= hits[2].score);
    }

    #[test]
    fn ids_are_sequential() {
        let mut idx = FlatIndex::cosine();
        assert_eq!(idx.add(vec![1.0, 0.0]), 0);
        assert_eq!(idx.add(vec![0.0, 1.0]), 1);
        assert_eq!(idx.len(), 2);
    }

    #[test]
    fn n_larger_than_len() {
        let mut idx = FlatIndex::cosine();
        idx.add(vec![1.0, 0.0]);
        let hits = idx.search(&[1.0, 0.0], 10);
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn empty_index_or_zero_n() {
        let idx = FlatIndex::cosine();
        assert!(idx.search(&[1.0], 5).is_empty());
        let mut idx2 = FlatIndex::cosine();
        idx2.add(vec![1.0]);
        assert!(idx2.search(&[1.0], 0).is_empty());
    }

    #[test]
    fn deterministic_tie_break_by_id() {
        let mut idx = FlatIndex::cosine();
        idx.add(vec![1.0, 0.0]);
        idx.add(vec![1.0, 0.0]); // identical vector
        let hits = idx.search(&[1.0, 0.0], 2);
        assert_eq!(hits[0].id, 0);
        assert_eq!(hits[1].id, 1);
    }

    #[test]
    fn roundtrip_bytes() {
        let mut idx = FlatIndex::new(Metric::Dot);
        idx.add(vec![1.0, 2.0, 3.0]);
        idx.add(vec![-1.0, 0.5, 0.25]);
        let blob = idx.to_bytes();
        let back = FlatIndex::from_bytes(blob).expect("roundtrip");
        assert_eq!(back.len(), 2);
        assert_eq!(back.dim(), 3);
        assert_eq!(back.vector(1), idx.vector(1));
    }

    #[test]
    fn from_bytes_rejects_garbage() {
        assert!(FlatIndex::from_bytes(Bytes::from_static(b"xx")).is_none());
        assert!(FlatIndex::from_bytes(Bytes::from_static(b"\x09\x01\x00\x00\x00\x01\x00\x00\x00"))
            .is_none());
    }

    #[test]
    fn batch_matches_sequential() {
        let mut idx = FlatIndex::cosine();
        for i in 0..50 {
            idx.add(unit(i as f32 * 0.13));
        }
        let queries: Vec<Vec<f32>> = (0..7).map(|i| unit(i as f32 * 0.31)).collect();
        let batch = idx.search_batch(&queries, 5, 4);
        for (q, got) in queries.iter().zip(&batch) {
            assert_eq!(got, &idx.search(q, 5));
        }
    }

    #[test]
    fn memory_reported() {
        let mut idx = FlatIndex::cosine();
        for _ in 0..100 {
            idx.add(vec![0.0; 64]);
        }
        assert!(idx.memory_bytes() >= 100 * 64 * 4);
    }

    #[test]
    #[should_panic(expected = "vector dim")]
    fn dim_mismatch_panics() {
        let mut idx = FlatIndex::cosine();
        idx.add(vec![1.0, 0.0]);
        idx.add(vec![1.0]);
    }
}
