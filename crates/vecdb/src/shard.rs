//! Deterministic shard routing and scatter-gather merge.
//!
//! The shard layer partitions a corpus into N fault domains by a *stable*
//! hash of the document/chunk id — never by insertion order modulo N or
//! any other layout-dependent scheme — so the same corpus always shards
//! the same way regardless of build order or shard count changes elsewhere.
//! [`ShardedFlat`] keeps one exact [`FlatIndex`] per shard plus the
//! local→global id mapping; because the flat scan is exact, searching each
//! shard for the full top-k and merging with [`merge_hits`] returns
//! *byte-identical* results to the unsharded index at every N (scores are
//! per-vector, and ties break on the global id in both paths). That
//! exactness is what lets the serving layer drop shards and still reason
//! about what the survivors contribute.
//!
//! Routing state (`ShardRouter`, `ShardedFlat`, `merge_hits`) is confined
//! to this crate and `core/src/exec/` by the `shard-state-confined` lint
//! rule: nothing else in the workspace may hold per-shard handles.

use crate::flat::FlatIndex;
use crate::{Hit, VectorIndex};

/// FNV-1a over `bytes` (the same stable hash family the fault planner and
/// live-corpus digest use; duplicated here because `sage-vecdb` sits below
/// `sage-resilience` in the crate DAG).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Stable corpus→shard routing: a pure function of the id and the shard
/// count, independent of insertion order and wall-clock anything.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRouter {
    shards: u32,
}

impl ShardRouter {
    /// A router over `shards` fault domains (clamped to at least 1).
    pub fn new(shards: u32) -> Self {
        Self { shards: shards.max(1) }
    }

    /// Number of shards.
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// Route a document id (any stable string key) to its shard.
    pub fn route(&self, doc_id: &str) -> u32 {
        (fnv1a(doc_id.as_bytes()) % u64::from(self.shards)) as u32
    }

    /// Route a chunk by its stable internal id (== chunk index). The id is
    /// hashed through its decimal rendering so `route_id(7)` and
    /// `route("7")` agree.
    pub fn route_id(&self, id: usize) -> u32 {
        let mut buf = [0u8; 20];
        let mut n = id;
        let mut i = buf.len();
        loop {
            i -= 1;
            buf[i] = b'0' + (n % 10) as u8;
            n /= 10;
            if n == 0 {
                break;
            }
        }
        (fnv1a(&buf[i..]) % u64::from(self.shards)) as u32
    }

    /// The full shard assignment for ids `0..count` (one pass, reusable by
    /// sparse retrieval which filters postings rather than splitting them).
    pub fn assignment(&self, count: usize) -> Vec<u32> {
        (0..count).map(|id| self.route_id(id)).collect()
    }
}

/// Exact dense search partitioned into per-shard [`FlatIndex`] arenas.
///
/// Each shard keeps its vectors in insertion (== global id) order, so the
/// per-shard local tie-break is monotone in the global id and the merged
/// top-k equals the unsharded top-k exactly.
#[derive(Debug, Clone)]
pub struct ShardedFlat {
    router: ShardRouter,
    shards: Vec<FlatIndex>,
    global_ids: Vec<Vec<usize>>,
}

impl ShardedFlat {
    /// Partition `vectors` (indexed by global id) across `router.shards()`
    /// cosine shards.
    pub fn build<'a, I>(router: ShardRouter, vectors: I) -> Self
    where
        I: IntoIterator<Item = &'a [f32]>,
    {
        let n = router.shards() as usize;
        let mut shards: Vec<FlatIndex> = (0..n).map(|_| FlatIndex::cosine()).collect();
        let mut global_ids: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (id, v) in vectors.into_iter().enumerate() {
            let s = router.route_id(id) as usize;
            shards[s].add(v.to_vec());
            global_ids[s].push(id);
        }
        Self { router, shards, global_ids }
    }

    /// The router this partition was built with.
    pub fn router(&self) -> ShardRouter {
        self.router
    }

    /// Number of shards.
    pub fn shard_count(&self) -> u32 {
        self.router.shards()
    }

    /// Vectors resident in shard `s`.
    pub fn shard_len(&self, s: u32) -> usize {
        self.shards.get(s as usize).map_or(0, |ix| ix.len())
    }

    /// Exact top-k within one shard, hits carrying *global* ids.
    pub fn search_shard(&self, s: u32, query: &[f32], k: usize) -> Vec<Hit> {
        let Some(index) = self.shards.get(s as usize) else { return Vec::new() };
        if index.is_empty() {
            return Vec::new();
        }
        // sage-lint: allow(panic-reachability) - the shards.get above bounds s; global_ids is built in lockstep with shards
        let ids = &self.global_ids[s as usize];
        index
            .search(query, k)
            .into_iter()
            // sage-lint: allow(panic-reachability) - FlatIndex::search returns local ids < len, and global_ids is built in lockstep with the shard
            .map(|h| Hit { id: ids[h.id], score: h.score })
            .collect()
    }

    /// Approximate resident memory across all shards.
    pub fn memory_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.memory_bytes()).sum::<usize>()
            + self.global_ids.iter().map(|g| g.capacity() * std::mem::size_of::<usize>()).sum::<usize>()
    }
}

/// Deterministic scatter-gather merge: flatten the per-shard result lists,
/// order by score (descending, `total_cmp`) with ties broken by the global
/// id, truncate to `k`. The comparator is a strict total order over the
/// disjoint (id, score) pairs a partition produces, so the output is
/// *invariant to the order of `parts`* — shard completion order cannot
/// leak into the merged bytes.
pub fn merge_hits(parts: &[Vec<Hit>], k: usize) -> Vec<Hit> {
    let mut all: Vec<Hit> = parts.iter().flatten().copied().collect();
    all.sort_by(|a, b| b.score.total_cmp(&a.score).then_with(|| a.id.cmp(&b.id)));
    all.truncate(k);
    all
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit(theta: f32) -> Vec<f32> {
        vec![theta.cos(), theta.sin()]
    }

    fn corpus(n: usize) -> Vec<Vec<f32>> {
        (0..n).map(|i| unit(i as f32 * 0.17)).collect()
    }

    fn unsharded(vectors: &[Vec<f32>]) -> FlatIndex {
        let mut ix = FlatIndex::cosine();
        for v in vectors {
            ix.add(v.clone());
        }
        ix
    }

    #[test]
    fn routing_is_stable_and_in_range() {
        let r = ShardRouter::new(4);
        for id in 0..200 {
            let s = r.route_id(id);
            assert!(s < 4);
            assert_eq!(s, r.route_id(id), "routing must be a pure function");
            assert_eq!(s, r.route(&id.to_string()), "route_id must agree with route");
        }
        assert_eq!(ShardRouter::new(0).shards(), 1, "clamped to one shard");
    }

    #[test]
    fn every_shard_gets_vectors_at_modest_counts() {
        let r = ShardRouter::new(4);
        let assign = r.assignment(100);
        for s in 0..4 {
            assert!(assign.contains(&s), "shard {s} is empty over 100 ids");
        }
    }

    #[test]
    fn sharded_search_equals_unsharded_at_any_n() {
        let vectors = corpus(60);
        let flat = unsharded(&vectors);
        let q = unit(0.95);
        for n in [1u32, 2, 3, 4, 7] {
            let sharded = ShardedFlat::build(
                ShardRouter::new(n),
                vectors.iter().map(Vec::as_slice),
            );
            let parts: Vec<Vec<Hit>> =
                (0..n).map(|s| sharded.search_shard(s, &q, 5)).collect();
            assert_eq!(merge_hits(&parts, 5), flat.search(&q, 5), "N={n}");
        }
    }

    #[test]
    fn merge_is_invariant_to_part_order() {
        let vectors = corpus(40);
        let sharded =
            ShardedFlat::build(ShardRouter::new(4), vectors.iter().map(Vec::as_slice));
        let q = unit(0.4);
        let mut parts: Vec<Vec<Hit>> = (0..4).map(|s| sharded.search_shard(s, &q, 6)).collect();
        let merged = merge_hits(&parts, 6);
        parts.reverse();
        assert_eq!(merge_hits(&parts, 6), merged);
        parts.swap(0, 2);
        assert_eq!(merge_hits(&parts, 6), merged);
    }

    #[test]
    fn lost_shards_shrink_results_without_reordering() {
        let vectors = corpus(40);
        let sharded =
            ShardedFlat::build(ShardRouter::new(4), vectors.iter().map(Vec::as_slice));
        let q = unit(1.3);
        let full: Vec<Vec<Hit>> = (0..4).map(|s| sharded.search_shard(s, &q, 8)).collect();
        let merged_full = merge_hits(&full, 8);
        let partial: Vec<Vec<Hit>> = full[..3].to_vec();
        let merged_partial = merge_hits(&partial, 8);
        // Hits present in both merges keep their relative order (the
        // partial merge may also surface survivor tail hits that missed
        // the full top-k cutoff — that is the point of partial serving).
        let common: Vec<usize> = merged_partial
            .iter()
            .filter_map(|h| merged_full.iter().position(|f| f.id == h.id))
            .collect();
        assert!(!common.is_empty(), "partial merge shares no hits with the full merge");
        assert!(
            common.windows(2).all(|w| w[0] < w[1]),
            "partial merge reordered survivor hits"
        );
    }

    #[test]
    fn shard_accessors() {
        let vectors = corpus(30);
        let sharded =
            ShardedFlat::build(ShardRouter::new(3), vectors.iter().map(Vec::as_slice));
        assert_eq!(sharded.shard_count(), 3);
        let total: usize = (0..3).map(|s| sharded.shard_len(s)).sum();
        assert_eq!(total, 30, "partition must cover the corpus exactly");
        assert!(sharded.memory_bytes() > 0);
        assert!(sharded.search_shard(9, &unit(0.0), 3).is_empty(), "out-of-range shard is empty");
    }
}
