//! Thread-safe wrapper for concurrent query workloads.
//!
//! The scalability experiment (Tables VIII/IX) drives 5x/10x concurrent
//! question streams against one shared vector database. `SharedIndex` wraps
//! any [`VectorIndex`] in a `parking_lot::RwLock`: searches take read locks
//! (fully concurrent), inserts take the write lock, and a query counter
//! exposes throughput to the harness.

use crate::{Hit, VectorIndex};
use parking_lot::RwLock;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A cloneable, thread-safe handle to a vector index.
pub struct SharedIndex<I> {
    inner: Arc<RwLock<I>>,
    queries: Arc<AtomicU64>,
}

impl<I> Clone for SharedIndex<I> {
    fn clone(&self) -> Self {
        Self { inner: Arc::clone(&self.inner), queries: Arc::clone(&self.queries) }
    }
}

impl<I: VectorIndex> SharedIndex<I> {
    /// Wrap an index.
    pub fn new(index: I) -> Self {
        Self { inner: Arc::new(RwLock::new(index)), queries: Arc::new(AtomicU64::new(0)) }
    }

    /// Insert a vector (exclusive lock).
    pub fn add(&self, vector: Vec<f32>) -> usize {
        self.inner.write().add(vector)
    }

    /// Search (shared lock — concurrent readers run in parallel).
    pub fn search(&self, query: &[f32], n: usize) -> Vec<Hit> {
        // sage-lint: allow(relaxed-atomics-confined) - monotonic telemetry-style query counter; no other memory is published under it
        self.queries.fetch_add(1, Ordering::Relaxed);
        self.inner.read().search(query, n)
    }

    /// Number of vectors.
    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total searches served since construction.
    pub fn query_count(&self) -> u64 {
        // sage-lint: allow(relaxed-atomics-confined) - reads the monotonic counter above; approximate totals are acceptable by contract
        self.queries.load(Ordering::Relaxed)
    }

    /// Approximate resident memory of the wrapped index.
    pub fn memory_bytes(&self) -> usize {
        self.inner.read().memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FlatIndex;

    #[test]
    fn concurrent_searches_agree_with_serial() {
        let shared = SharedIndex::new(FlatIndex::cosine());
        for i in 0..64 {
            let theta = i as f32 * 0.1;
            shared.add(vec![theta.cos(), theta.sin()]);
        }
        let expected = shared.search(&[1.0, 0.0], 5);
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let s = shared.clone();
                std::thread::spawn(move || s.search(&[1.0, 0.0], 5))
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), expected);
        }
        // 1 serial + 8 threads
        assert_eq!(shared.query_count(), 9);
    }

    #[test]
    fn add_while_searching_is_safe() {
        let shared = SharedIndex::new(FlatIndex::cosine());
        shared.add(vec![1.0, 0.0]);
        let writer = {
            let s = shared.clone();
            std::thread::spawn(move || {
                for i in 0..100 {
                    let theta = i as f32 * 0.05;
                    s.add(vec![theta.cos(), theta.sin()]);
                }
            })
        };
        for _ in 0..100 {
            let hits = shared.search(&[0.0, 1.0], 3);
            assert!(!hits.is_empty());
        }
        writer.join().unwrap();
        assert_eq!(shared.len(), 101);
    }
}
