//! IVF (inverted-file) approximate index — the other classic Faiss design
//! (`IndexIVFFlat`): a k-means coarse quantiser partitions the vectors into
//! `nlist` cells; a query probes the `nprobe` nearest cells and scores their
//! members exactly.
//!
//! Complements [`crate::HnswIndex`]: IVF has a training phase and bulk
//! memory locality (arena per cell), HNSW is incremental with per-node
//! links. The `micro` bench compares all three index types.

// sage-lint: allow-file(panic-reachability) - cell ids come from nearest_centroid over self.cells and vector rows are sized dim*count at build

use crate::metric::Metric;
use crate::{Hit, VectorIndex};
use sage_nn::cluster::{kmeans, squared_distance};

/// IVF parameters.
#[derive(Debug, Clone, Copy)]
pub struct IvfConfig {
    /// Number of coarse cells (k-means clusters).
    pub nlist: usize,
    /// Cells probed per query (recall/latency knob).
    pub nprobe: usize,
    /// Vectors buffered before the coarse quantiser is trained; until
    /// then, searches fall back to an exact scan of the buffer.
    pub train_size: usize,
    /// K-means iterations for quantiser training.
    pub train_iters: usize,
}

impl Default for IvfConfig {
    fn default() -> Self {
        Self { nlist: 64, nprobe: 8, train_size: 512, train_iters: 8 }
    }
}

/// IVF-Flat approximate nearest-neighbour index.
#[derive(Debug, Clone)]
pub struct IvfIndex {
    cfg: IvfConfig,
    metric: Metric,
    dim: usize,
    /// All vectors, contiguous, in insertion order (ids are offsets).
    vectors: Vec<f32>,
    /// Trained centroids (empty until `train_size` inserts).
    centroids: Vec<Vec<f32>>,
    /// Per-cell member ids.
    cells: Vec<Vec<u32>>,
    count: usize,
}

impl IvfIndex {
    /// Empty index.
    pub fn new(metric: Metric, cfg: IvfConfig) -> Self {
        Self {
            cfg,
            metric,
            dim: 0,
            vectors: Vec::new(),
            centroids: Vec::new(),
            cells: Vec::new(),
            count: 0,
        }
    }

    /// Cosine index with default parameters.
    pub fn cosine() -> Self {
        Self::new(Metric::Cosine, IvfConfig::default())
    }

    /// Whether the coarse quantiser has been trained yet.
    pub fn is_trained(&self) -> bool {
        !self.centroids.is_empty()
    }

    #[inline]
    fn vec_of(&self, id: usize) -> &[f32] {
        &self.vectors[id * self.dim..(id + 1) * self.dim]
    }

    fn nearest_cell(&self, v: &[f32]) -> usize {
        self.centroids
            .iter()
            .enumerate()
            .min_by(|a, b| {
                squared_distance(v, a.1)
                    .total_cmp(&squared_distance(v, b.1))
                    .then_with(|| a.0.cmp(&b.0))
            })
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Train the quantiser on everything inserted so far and assign all
    /// vectors to cells.
    fn train(&mut self) {
        let all: Vec<Vec<f32>> = (0..self.count).map(|i| self.vec_of(i).to_vec()).collect();
        let k = self.cfg.nlist.min(all.len()).max(1);
        let km = kmeans(&all, k, self.cfg.train_iters);
        self.centroids = km.centroids;
        self.cells = vec![Vec::new(); self.centroids.len()];
        for (id, &cell) in km.assignments.iter().enumerate() {
            self.cells[cell].push(id as u32);
        }
    }

    fn score_ids<'a>(
        &self,
        query: &[f32],
        ids: impl Iterator<Item = &'a u32>,
        n: usize,
    ) -> Vec<Hit> {
        let mut hits: Vec<Hit> = ids
            .map(|&id| Hit {
                id: id as usize,
                score: self.metric.similarity(query, self.vec_of(id as usize)),
            })
            .collect();
        sage_telemetry::metrics::VECDB_IVF_DISTANCE_EVALS.add(hits.len() as u64);
        hits.sort_by(|a, b| b.score.total_cmp(&a.score).then_with(|| a.id.cmp(&b.id)));
        hits.truncate(n);
        hits
    }
}

impl VectorIndex for IvfIndex {
    fn add(&mut self, vector: Vec<f32>) -> usize {
        if self.dim == 0 {
            assert!(!vector.is_empty(), "cannot index empty vectors");
            self.dim = vector.len();
        }
        assert_eq!(vector.len(), self.dim, "vector dim mismatch");
        let id = self.count;
        self.vectors.extend_from_slice(&vector);
        self.count += 1;
        if self.is_trained() {
            let cell = self.nearest_cell(self.vec_of(id));
            self.cells[cell].push(id as u32);
        } else if self.count >= self.cfg.train_size {
            self.train();
        }
        id
    }

    fn search(&self, query: &[f32], n: usize) -> Vec<Hit> {
        if self.count == 0 || n == 0 {
            return Vec::new();
        }
        assert_eq!(query.len(), self.dim, "query dim mismatch");
        sage_telemetry::metrics::VECDB_IVF_SEARCHES.inc();
        if !self.is_trained() {
            // Exact scan over the pre-training buffer.
            let all: Vec<u32> = (0..self.count as u32).collect();
            return self.score_ids(query, all.iter(), n);
        }
        // Probe the nprobe nearest cells.
        let mut cell_order: Vec<(f32, usize)> = self
            .centroids
            .iter()
            .enumerate()
            .map(|(i, c)| (squared_distance(query, c), i))
            .collect();
        cell_order.sort_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
        let nprobe = self.cfg.nprobe.max(1).min(cell_order.len());
        sage_telemetry::metrics::VECDB_IVF_CELLS_PROBED.add(nprobe as u64);
        let probed = cell_order.iter().take(nprobe).flat_map(|&(_, cell)| self.cells[cell].iter());
        self.score_ids(query, probed, n)
    }

    fn clear(&mut self) {
        self.dim = 0;
        self.vectors.clear();
        self.centroids.clear();
        self.cells.clear();
        self.count = 0;
    }

    fn len(&self) -> usize {
        self.count
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn memory_bytes(&self) -> usize {
        self.vectors.capacity() * 4
            + self.centroids.iter().map(|c| c.capacity() * 4 + 24).sum::<usize>()
            + self.cells.iter().map(|c| c.capacity() * 4 + 24).sum::<usize>()
            + std::mem::size_of::<Self>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FlatIndex;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_unit(rng: &mut StdRng, dim: usize) -> Vec<f32> {
        let mut v: Vec<f32> = (0..dim).map(|_| rng.random_range(-1.0f32..1.0)).collect();
        let n: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        for x in &mut v {
            *x /= n;
        }
        v
    }

    #[test]
    fn exact_before_training() {
        let mut idx = IvfIndex::cosine();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            idx.add(random_unit(&mut rng, 8));
        }
        assert!(!idx.is_trained(), "below train_size");
        let q = random_unit(&mut rng, 8);
        let mut flat = FlatIndex::cosine();
        for i in 0..50 {
            flat.add(idx.vec_of(i).to_vec());
        }
        assert_eq!(idx.search(&q, 5), flat.search(&q, 5), "pre-training must be exact");
    }

    #[test]
    fn trains_at_threshold_and_keeps_ids() {
        let cfg = IvfConfig { train_size: 100, ..IvfConfig::default() };
        let mut idx = IvfIndex::new(Metric::Cosine, cfg);
        let mut rng = StdRng::seed_from_u64(2);
        for i in 0..150 {
            assert_eq!(idx.add(random_unit(&mut rng, 8)), i);
        }
        assert!(idx.is_trained());
        assert_eq!(idx.len(), 150);
        // Every id lands in exactly one cell.
        let mut seen = std::collections::HashSet::new();
        for cell in &idx.cells {
            for &id in cell {
                assert!(seen.insert(id), "duplicate id {id}");
            }
        }
        assert_eq!(seen.len(), 150);
    }

    #[test]
    fn recall_against_flat() {
        let cfg = IvfConfig { nlist: 16, nprobe: 6, train_size: 200, train_iters: 8 };
        let mut ivf = IvfIndex::new(Metric::Cosine, cfg);
        let mut flat = FlatIndex::cosine();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..600 {
            let v = random_unit(&mut rng, 16);
            ivf.add(v.clone());
            flat.add(v);
        }
        let mut found = 0usize;
        let mut total = 0usize;
        for _ in 0..20 {
            let q = random_unit(&mut rng, 16);
            let truth: std::collections::HashSet<usize> =
                flat.search(&q, 10).into_iter().map(|h| h.id).collect();
            for h in ivf.search(&q, 10) {
                total += 1;
                if truth.contains(&h.id) {
                    found += 1;
                }
            }
        }
        let recall = found as f32 / total.max(1) as f32;
        assert!(recall > 0.6, "recall@10 = {recall}");
    }

    #[test]
    fn finds_exact_match_after_training() {
        let cfg = IvfConfig { train_size: 64, ..IvfConfig::default() };
        let mut idx = IvfIndex::new(Metric::Cosine, cfg);
        let mut rng = StdRng::seed_from_u64(4);
        let vecs: Vec<Vec<f32>> = (0..200).map(|_| random_unit(&mut rng, 12)).collect();
        for v in &vecs {
            idx.add(v.clone());
        }
        // A stored vector should find itself (its own cell is nearest).
        for probe in [0usize, 99, 199] {
            let hits = idx.search(&vecs[probe], 1);
            assert_eq!(hits[0].id, probe, "failed to find vector {probe}");
        }
    }

    #[test]
    fn clear_resets() {
        let mut idx = IvfIndex::cosine();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..600 {
            idx.add(random_unit(&mut rng, 4));
        }
        assert!(idx.is_trained());
        idx.clear();
        assert_eq!(idx.len(), 0);
        assert!(!idx.is_trained());
        assert!(idx.search(&[1.0, 0.0, 0.0, 0.0], 3).is_empty());
    }

    #[test]
    fn memory_reported() {
        let mut idx = IvfIndex::cosine();
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..100 {
            idx.add(random_unit(&mut rng, 8));
        }
        assert!(idx.memory_bytes() >= 100 * 8 * 4);
    }
}
