//! Tombstoned mutable index: the vector tier of the live-corpus writer.
//!
//! Deletion in an append-only vector index is logical: [`MutableIndex`]
//! keeps every inserted vector in a [`FlatIndex`] arena (optionally
//! shadowed by an [`HnswIndex`] ANN tier), marks deleted slots in a
//! tombstone bitmap, filters tombstones out of search results, and
//! periodically [`compact`](MutableIndex::compact)s — rebuilding both tiers
//! from the survivors so the dead mass does not grow without bound.
//!
//! Compaction is deterministic: survivors are re-inserted in id order and
//! the HNSW tier is rebuilt from a fresh seeded RNG, so two stores that
//! applied the same operations compact to bit-identical indexes. The
//! single-writer invariant (`sage-lint` rule `mutation-behind-writer`)
//! keeps all mutation of this type inside `sage-core`'s `live` module.

// sage-lint: allow-file(panic-reachability) - ids are range-checked against dead.len() before tombstone reads and writes

use crate::metric::Metric;
use crate::{FlatIndex, Hit, HnswConfig, HnswIndex, VectorIndex};

/// A vector index supporting logical deletion and deterministic compaction.
///
/// ```
/// use sage_vecdb::{MutableIndex, VectorIndex};
///
/// let mut index = MutableIndex::cosine();
/// index.add(vec![1.0, 0.0]);
/// index.add(vec![0.0, 1.0]);
/// index.tombstone(0);
/// let hits = index.search(&[1.0, 0.0], 2);
/// assert_eq!(hits.len(), 1);
/// assert_eq!(hits[0].id, 1); // the tombstoned slot is never served
/// ```
#[derive(Debug, Clone)]
pub struct MutableIndex {
    metric: Metric,
    /// Authoritative arena: every vector ever inserted, by id.
    flat: FlatIndex,
    /// Optional ANN tier kept in lockstep with the arena.
    hnsw: Option<HnswIndex>,
    hnsw_cfg: HnswConfig,
    dead: Vec<bool>,
    dead_count: usize,
}

impl MutableIndex {
    /// Exact-search index (flat arena only) with the given metric.
    pub fn new(metric: Metric) -> Self {
        Self {
            metric,
            flat: FlatIndex::new(metric),
            hnsw: None,
            hnsw_cfg: HnswConfig::default(),
            dead: Vec::new(),
            dead_count: 0,
        }
    }

    /// Exact cosine index (the paper default).
    pub fn cosine() -> Self {
        Self::new(Metric::Cosine)
    }

    /// Index with an HNSW approximate tier alongside the exact arena.
    pub fn with_hnsw(metric: Metric, cfg: HnswConfig) -> Self {
        Self {
            metric,
            flat: FlatIndex::new(metric),
            hnsw: Some(HnswIndex::new(metric, cfg)),
            hnsw_cfg: cfg,
            dead: Vec::new(),
            dead_count: 0,
        }
    }

    /// Whether an HNSW tier is maintained.
    pub fn has_hnsw(&self) -> bool {
        self.hnsw.is_some()
    }

    /// Borrow the vector stored at `id` (tombstoned slots included — the
    /// arena is the authoritative record until compaction purges it).
    pub fn vector(&self, id: usize) -> Option<&[f32]> {
        self.flat.vector(id)
    }

    /// Mark slot `id` dead. Returns `false` when `id` is out of range or
    /// already tombstoned (idempotent).
    pub fn tombstone(&mut self, id: usize) -> bool {
        if id >= self.dead.len() || self.dead[id] {
            return false;
        }
        self.dead[id] = true;
        self.dead_count += 1;
        true
    }

    /// Whether slot `id` is tombstoned.
    pub fn is_dead(&self, id: usize) -> bool {
        self.dead.get(id).copied().unwrap_or(false)
    }

    /// Number of live (non-tombstoned) vectors.
    pub fn live_len(&self) -> usize {
        self.dead.len() - self.dead_count
    }

    /// Number of tombstoned vectors awaiting compaction.
    pub fn dead_count(&self) -> usize {
        self.dead_count
    }

    /// Fraction of slots that are dead (`0.0` when empty).
    pub fn dead_fraction(&self) -> f64 {
        if self.dead.is_empty() {
            0.0
        } else {
            self.dead_count as f64 / self.dead.len() as f64
        }
    }

    /// Purge tombstones: rebuild the arena (and ANN tier, from a fresh
    /// seeded RNG) over the survivors in id order. Returns the old→new id
    /// remap (`None` for purged slots) so callers can rewrite their own
    /// id references. Deterministic: depends only on the surviving
    /// vectors and their order.
    pub fn compact(&mut self) -> Vec<Option<usize>> {
        let mut remap = vec![None; self.dead.len()];
        let mut flat = FlatIndex::new(self.metric);
        let mut hnsw = self.hnsw.as_ref().map(|_| HnswIndex::new(self.metric, self.hnsw_cfg));
        for (old, slot) in remap.iter_mut().enumerate() {
            if self.dead[old] {
                continue;
            }
            let Some(v) = self.flat.vector(old).map(<[f32]>::to_vec) else { continue };
            if let Some(h) = hnsw.as_mut() {
                h.add(v.clone());
            }
            *slot = Some(flat.add(v));
        }
        self.flat = flat;
        self.hnsw = hnsw;
        self.dead = vec![false; remap.iter().filter(|s| s.is_some()).count()];
        self.dead_count = 0;
        remap
    }
}

impl VectorIndex for MutableIndex {
    fn add(&mut self, vector: Vec<f32>) -> usize {
        if let Some(h) = self.hnsw.as_mut() {
            h.add(vector.clone());
        }
        let id = self.flat.add(vector);
        debug_assert_eq!(id, self.dead.len());
        self.dead.push(false);
        id
    }

    fn clear(&mut self) {
        self.flat.clear();
        if let Some(h) = self.hnsw.as_mut() {
            h.clear();
        }
        self.dead.clear();
        self.dead_count = 0;
    }

    fn search(&self, query: &[f32], n: usize) -> Vec<Hit> {
        if n == 0 || self.live_len() == 0 {
            return Vec::new();
        }
        // Over-fetch by the tombstone count so n live hits survive the
        // filter even if every dead slot outranks them.
        let fetch = n.saturating_add(self.dead_count);
        let raw = match &self.hnsw {
            Some(h) => h.search(query, fetch),
            None => self.flat.search(query, fetch),
        };
        let mut hits: Vec<Hit> = raw.into_iter().filter(|h| !self.dead[h.id]).collect();
        hits.truncate(n);
        hits
    }

    fn len(&self) -> usize {
        self.flat.len()
    }

    fn dim(&self) -> usize {
        self.flat.dim()
    }

    fn memory_bytes(&self) -> usize {
        self.flat.memory_bytes()
            + self.hnsw.as_ref().map_or(0, |h| h.memory_bytes())
            + self.dead.capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit(theta: f32) -> Vec<f32> {
        vec![theta.cos(), theta.sin()]
    }

    #[test]
    fn tombstoned_slots_are_never_served() {
        let mut idx = MutableIndex::cosine();
        for i in 0..8 {
            idx.add(unit(i as f32 * 0.3));
        }
        assert!(idx.tombstone(0));
        assert!(idx.tombstone(3));
        let hits = idx.search(&unit(0.0), 8);
        assert_eq!(hits.len(), 6);
        assert!(hits.iter().all(|h| h.id != 0 && h.id != 3));
    }

    #[test]
    fn tombstone_is_idempotent_and_bounds_checked() {
        let mut idx = MutableIndex::cosine();
        idx.add(vec![1.0, 0.0]);
        assert!(idx.tombstone(0));
        assert!(!idx.tombstone(0));
        assert!(!idx.tombstone(5));
        assert_eq!(idx.dead_count(), 1);
        assert_eq!(idx.live_len(), 0);
        assert!(idx.search(&[1.0, 0.0], 3).is_empty());
    }

    #[test]
    fn overfetch_fills_n_despite_top_ranked_tombstones() {
        let mut idx = MutableIndex::cosine();
        // Best match first, then progressively worse.
        for i in 0..10 {
            idx.add(unit(i as f32 * 0.2));
        }
        // Kill the top 5 matches for query angle 0.
        for id in 0..5 {
            idx.tombstone(id);
        }
        let hits = idx.search(&unit(0.0), 3);
        assert_eq!(hits.len(), 3, "must still return n live hits");
        assert_eq!(hits[0].id, 5);
    }

    #[test]
    fn compact_matches_fresh_index_over_survivors() {
        let mut idx = MutableIndex::cosine();
        for i in 0..20 {
            idx.add(unit(i as f32 * 0.17));
        }
        for id in [1, 4, 5, 13, 19] {
            idx.tombstone(id);
        }
        let before = idx.search(&unit(0.5), 6);
        let remap = idx.compact();
        assert_eq!(idx.len(), 15);
        assert_eq!(idx.dead_count(), 0);
        // A scratch index built over the survivors in the same order.
        let mut fresh = MutableIndex::cosine();
        for (i, slot) in remap.iter().enumerate().take(20) {
            if slot.is_some() {
                fresh.add(unit(i as f32 * 0.17));
            }
        }
        let after = idx.search(&unit(0.5), 6);
        assert_eq!(after, fresh.search(&unit(0.5), 6));
        // Same chunks in the same order, modulo the id remap.
        let before_remapped: Vec<usize> = before.iter().map(|h| remap[h.id].unwrap()).collect();
        let after_ids: Vec<usize> = after.iter().map(|h| h.id).collect();
        assert_eq!(before_remapped, after_ids);
    }

    #[test]
    fn remap_is_dense_and_order_preserving() {
        let mut idx = MutableIndex::cosine();
        for i in 0..6 {
            idx.add(unit(i as f32));
        }
        idx.tombstone(2);
        idx.tombstone(3);
        let remap = idx.compact();
        assert_eq!(remap, vec![Some(0), Some(1), None, None, Some(2), Some(3)]);
    }

    #[test]
    fn hnsw_tier_stays_in_lockstep_through_compaction() {
        let mut idx = MutableIndex::with_hnsw(Metric::Cosine, HnswConfig::default());
        assert!(idx.has_hnsw());
        for i in 0..30 {
            idx.add(unit(i as f32 * 0.11));
        }
        for id in [0, 7, 8, 9, 22] {
            idx.tombstone(id);
        }
        let remap = idx.compact();
        // Deterministic rebuild: a second index fed the survivors directly
        // searches identically.
        let mut fresh = MutableIndex::with_hnsw(Metric::Cosine, HnswConfig::default());
        for (i, slot) in remap.iter().enumerate().take(30) {
            if slot.is_some() {
                fresh.add(unit(i as f32 * 0.11));
            }
        }
        for q in 0..5 {
            let query = unit(q as f32 * 0.4);
            assert_eq!(idx.search(&query, 4), fresh.search(&query, 4));
        }
    }

    #[test]
    fn dead_fraction_tracks_tombstones() {
        let mut idx = MutableIndex::cosine();
        assert_eq!(idx.dead_fraction(), 0.0);
        for i in 0..4 {
            idx.add(unit(i as f32));
        }
        idx.tombstone(1);
        assert!((idx.dead_fraction() - 0.25).abs() < 1e-12);
        idx.clear();
        assert_eq!(idx.len(), 0);
        assert_eq!(idx.dead_count(), 0);
        assert_eq!(idx.dead_fraction(), 0.0);
    }
}
