//! Hierarchical Navigable Small World (HNSW) approximate index.
//!
//! A from-scratch implementation of Malkov & Yashunin's graph index, the
//! algorithm behind Faiss's `IndexHNSW`: each vector gets a random level;
//! upper layers form an expressway of long-range links, layer 0 holds all
//! vectors with denser connectivity. Search descends greedily through the
//! upper layers, then runs a best-first beam of width `ef_search` at
//! layer 0.
//!
//! Determinism: levels come from a seeded RNG and all tie-breaks are by id,
//! so a build with the same seed and insertion order is bit-reproducible.

// sage-lint: allow-file(panic-reachability) - node ids are assigned densely at insert and links/visited are sized to the node count before search

use crate::metric::Metric;
use crate::{Hit, VectorIndex};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Build/search parameters.
#[derive(Debug, Clone, Copy)]
pub struct HnswConfig {
    /// Max links per node on layers ≥ 1 (layer 0 allows `2 * m`).
    pub m: usize,
    /// Beam width during construction.
    pub ef_construction: usize,
    /// Beam width during search (raise for higher recall).
    pub ef_search: usize,
    /// RNG seed for level assignment.
    pub seed: u64,
}

impl Default for HnswConfig {
    fn default() -> Self {
        Self { m: 16, ef_construction: 100, ef_search: 64, seed: 0x4157 }
    }
}

/// Max-heap entry ordered by score (best first), ties by id.
#[derive(PartialEq)]
struct Candidate {
    score: f32,
    id: usize,
}

impl Eq for Candidate {}

impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> Ordering {
        self.score.total_cmp(&other.score).then_with(|| other.id.cmp(&self.id))
    }
}

/// HNSW approximate nearest-neighbour index.
#[derive(Debug, Clone)]
pub struct HnswIndex {
    cfg: HnswConfig,
    metric: Metric,
    dim: usize,
    vectors: Vec<f32>,
    /// `links[id][layer]` = neighbour ids of `id` at `layer`.
    links: Vec<Vec<Vec<u32>>>,
    entry: Option<usize>,
    rng: StdRng,
}

impl HnswIndex {
    /// Empty index.
    pub fn new(metric: Metric, cfg: HnswConfig) -> Self {
        Self {
            rng: StdRng::seed_from_u64(cfg.seed),
            cfg,
            metric,
            dim: 0,
            vectors: Vec::new(),
            links: Vec::new(),
            entry: None,
        }
    }

    /// Cosine index with default parameters.
    pub fn cosine() -> Self {
        Self::new(Metric::Cosine, HnswConfig::default())
    }

    #[inline]
    fn vec_of(&self, id: usize) -> &[f32] {
        &self.vectors[id * self.dim..(id + 1) * self.dim]
    }

    #[inline]
    fn sim(&self, query: &[f32], id: usize) -> f32 {
        self.metric.similarity(query, self.vec_of(id))
    }

    /// Geometric level assignment: P(level ≥ l) = (1/m)^l.
    fn random_level(&mut self) -> usize {
        let ml = 1.0 / (self.cfg.m as f64).ln();
        let u: f64 = self.rng.random_range(f64::EPSILON..1.0);
        (-u.ln() * ml).floor() as usize
    }

    fn max_links(&self, layer: usize) -> usize {
        if layer == 0 {
            self.cfg.m * 2
        } else {
            self.cfg.m
        }
    }

    /// Greedy hill-climb toward `query` at `layer`, starting from `start`.
    /// `evals` counts similarity evaluations for the caller's telemetry.
    fn greedy_step(&self, query: &[f32], start: usize, layer: usize, evals: &mut u64) -> usize {
        let mut best = start;
        let mut best_score = self.sim(query, best);
        *evals += 1;
        loop {
            let mut improved = false;
            for &nb in &self.links[best][layer] {
                let s = self.sim(query, nb as usize);
                *evals += 1;
                if s > best_score {
                    best = nb as usize;
                    best_score = s;
                    improved = true;
                }
            }
            if !improved {
                return best;
            }
        }
    }

    /// Best-first beam search at `layer` returning up to `ef` candidates
    /// sorted best-first.
    fn beam_search(
        &self,
        query: &[f32],
        start: usize,
        layer: usize,
        ef: usize,
        evals: &mut u64,
    ) -> Vec<Candidate> {
        let mut visited = vec![false; self.links.len()];
        visited[start] = true;
        let s0 = self.sim(query, start);
        *evals += 1;
        // Frontier: best-first. Results: keep the ef best seen (min at top
        // via Reverse ordering trick — we store negated comparison by
        // popping worst from a BinaryHeap of Reverse).
        let mut frontier: BinaryHeap<Candidate> = BinaryHeap::new();
        frontier.push(Candidate { score: s0, id: start });
        let mut results: Vec<Candidate> = vec![Candidate { score: s0, id: start }];
        let worst = |res: &Vec<Candidate>| res.iter().map(|c| c.score).fold(f32::INFINITY, f32::min);
        while let Some(cand) = frontier.pop() {
            if results.len() >= ef && cand.score < worst(&results) {
                break;
            }
            for &nb in &self.links[cand.id][layer] {
                let nb = nb as usize;
                if visited[nb] {
                    continue;
                }
                visited[nb] = true;
                let s = self.sim(query, nb);
                *evals += 1;
                if results.len() < ef || s > worst(&results) {
                    frontier.push(Candidate { score: s, id: nb });
                    results.push(Candidate { score: s, id: nb });
                    if results.len() > ef {
                        // Drop the current worst. `results` is over-full
                        // here so min_by always yields a victim.
                        if let Some((widx, _)) = results.iter().enumerate().min_by(|a, b| {
                            a.1.score.total_cmp(&b.1.score).then_with(|| b.1.id.cmp(&a.1.id))
                        }) {
                            results.swap_remove(widx);
                        }
                    }
                }
            }
        }
        results.sort_by(|a, b| b.score.total_cmp(&a.score).then_with(|| a.id.cmp(&b.id)));
        results
    }

    /// Link `id` to up to `max` of `candidates` (best first) at `layer`,
    /// bidirectionally, pruning over-full neighbours back to their best.
    fn connect(&mut self, id: usize, candidates: &[Candidate], layer: usize) {
        let max = self.max_links(layer);
        let chosen: Vec<usize> = candidates.iter().take(max).map(|c| c.id).collect();
        for &nb in &chosen {
            self.links[id][layer].push(nb as u32);
            self.links[nb][layer].push(id as u32);
            if self.links[nb][layer].len() > max {
                // Prune: keep the `max` most similar neighbours of nb.
                let nb_vec: Vec<f32> = self.vec_of(nb).to_vec();
                let mut scored: Vec<(f32, u32)> = self.links[nb][layer]
                    .iter()
                    .map(|&x| (self.metric.similarity(&nb_vec, self.vec_of(x as usize)), x))
                    .collect();
                scored.sort_by(|a, b| b.0.total_cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
                scored.truncate(max);
                self.links[nb][layer] = scored.into_iter().map(|(_, x)| x).collect();
            }
        }
    }
}

impl VectorIndex for HnswIndex {
    fn add(&mut self, vector: Vec<f32>) -> usize {
        if self.dim == 0 {
            assert!(!vector.is_empty(), "cannot index empty vectors");
            self.dim = vector.len();
        }
        assert_eq!(vector.len(), self.dim, "vector dim mismatch");
        let id = self.links.len();
        let level = self.random_level();
        self.vectors.extend_from_slice(&vector);
        self.links.push(vec![Vec::new(); level + 1]);

        let Some(entry) = self.entry else {
            self.entry = Some(id);
            return id;
        };
        let query = self.vec_of(id).to_vec();
        let entry_level = self.links[entry].len() - 1;

        // Phase 1: greedy descent through layers above `level`.
        // Construction-time similarity evaluations are not exported.
        let mut build_evals = 0u64;
        let mut ep = entry;
        let mut layer = entry_level;
        while layer > level {
            ep = self.greedy_step(&query, ep, layer, &mut build_evals);
            layer -= 1;
        }
        // Phase 2: beam search + connect on each layer from min(level,
        // entry_level) down to 0.
        let top = level.min(entry_level);
        for l in (0..=top).rev() {
            let candidates =
                self.beam_search(&query, ep, l, self.cfg.ef_construction, &mut build_evals);
            ep = candidates.first().map_or(ep, |c| c.id);
            self.connect(id, &candidates, l);
        }
        // New global entry point if this node is taller.
        if level > entry_level {
            self.entry = Some(id);
        }
        id
    }

    fn search(&self, query: &[f32], n: usize) -> Vec<Hit> {
        let Some(entry) = self.entry else {
            return Vec::new();
        };
        if n == 0 {
            return Vec::new();
        }
        assert_eq!(query.len(), self.dim, "query dim mismatch");
        let mut evals = 0u64;
        let mut ep = entry;
        let entry_level = self.links[entry].len() - 1;
        for layer in (1..=entry_level).rev() {
            ep = self.greedy_step(query, ep, layer, &mut evals);
        }
        let ef = self.cfg.ef_search.max(n);
        let beam = self.beam_search(query, ep, 0, ef, &mut evals);
        sage_telemetry::metrics::VECDB_HNSW_SEARCHES.inc();
        sage_telemetry::metrics::VECDB_HNSW_DISTANCE_EVALS.add(evals);
        beam.into_iter().take(n).map(|c| Hit { id: c.id, score: c.score }).collect()
    }

    fn clear(&mut self) {
        self.dim = 0;
        self.vectors.clear();
        self.links.clear();
        self.entry = None;
        self.rng = StdRng::seed_from_u64(self.cfg.seed);
    }

    fn len(&self) -> usize {
        self.links.len()
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn memory_bytes(&self) -> usize {
        let vec_bytes = self.vectors.capacity() * 4;
        let link_bytes: usize = self
            .links
            .iter()
            .map(|layers| layers.iter().map(|l| l.capacity() * 4 + 24).sum::<usize>() + 24)
            .sum();
        vec_bytes + link_bytes + std::mem::size_of::<Self>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FlatIndex;

    fn random_unit(rng: &mut StdRng, dim: usize) -> Vec<f32> {
        let mut v: Vec<f32> = (0..dim).map(|_| rng.random_range(-1.0f32..1.0)).collect();
        let n: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        for x in &mut v {
            *x /= n;
        }
        v
    }

    #[test]
    fn empty_and_single() {
        let mut idx = HnswIndex::cosine();
        assert!(idx.search(&[1.0, 0.0], 3).is_empty());
        idx.add(vec![1.0, 0.0]);
        let hits = idx.search(&[1.0, 0.0], 3);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].id, 0);
    }

    #[test]
    fn finds_exact_match() {
        let mut idx = HnswIndex::cosine();
        let mut rng = StdRng::seed_from_u64(1);
        let vecs: Vec<Vec<f32>> = (0..200).map(|_| random_unit(&mut rng, 16)).collect();
        for v in &vecs {
            idx.add(v.clone());
        }
        for probe in [0usize, 57, 123, 199] {
            let hits = idx.search(&vecs[probe], 1);
            assert_eq!(hits[0].id, probe, "failed to find vector {probe}");
        }
    }

    #[test]
    fn recall_against_flat() {
        let mut hnsw = HnswIndex::cosine();
        let mut flat = FlatIndex::cosine();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..500 {
            let v = random_unit(&mut rng, 24);
            hnsw.add(v.clone());
            flat.add(v);
        }
        let mut found = 0usize;
        let mut total = 0usize;
        for _ in 0..20 {
            let q = random_unit(&mut rng, 24);
            let truth: std::collections::HashSet<usize> =
                flat.search(&q, 10).into_iter().map(|h| h.id).collect();
            for h in hnsw.search(&q, 10) {
                total += 1;
                if truth.contains(&h.id) {
                    found += 1;
                }
            }
        }
        let recall = found as f32 / total.max(1) as f32;
        assert!(recall > 0.85, "recall@10 = {recall}");
    }

    #[test]
    fn deterministic_builds() {
        let build = || {
            let mut idx = HnswIndex::cosine();
            let mut rng = StdRng::seed_from_u64(3);
            for _ in 0..100 {
                idx.add(random_unit(&mut rng, 8));
            }
            idx.search(&random_unit(&mut rng, 8), 5)
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn len_and_memory() {
        let mut idx = HnswIndex::cosine();
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..50 {
            idx.add(random_unit(&mut rng, 8));
        }
        assert_eq!(idx.len(), 50);
        assert!(idx.memory_bytes() > 50 * 8 * 4);
    }

    #[test]
    fn search_more_than_len() {
        let mut idx = HnswIndex::cosine();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..5 {
            idx.add(random_unit(&mut rng, 4));
        }
        let hits = idx.search(&random_unit(&mut rng, 4), 50);
        assert!(hits.len() <= 5);
        assert!(!hits.is_empty());
        // Scores must be sorted descending.
        for w in hits.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }
}
