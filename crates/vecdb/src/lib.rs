//! # sage-vecdb
//!
//! The vector-database substrate (the paper uses Faiss, §VII-A). Three index
//! types behind one [`VectorIndex`] trait:
//!
//! * [`FlatIndex`] — exact brute-force top-N search. The default for all
//!   accuracy experiments (the paper's corpora fit comfortably in RAM).
//! * [`HnswIndex`] — Hierarchical Navigable Small World approximate index,
//!   used at TriviaQA scale (Tables VIII/IX) and in the flat-vs-ANN
//!   micro-benchmarks.
//! * [`IvfIndex`] — inverted-file index with a k-means coarse quantiser
//!   (Faiss's other workhorse design), trading a training phase for
//!   cell-local scans.
//!
//! [`MutableIndex`] layers logical deletion (tombstones + deterministic
//! compaction) over a flat arena with an optional HNSW tier — the vector
//! side of `sage-core`'s live-corpus writer. All mutation of it is
//! confined to that writer by the `mutation-behind-writer` lint rule.
//!
//! All three assign sequential internal ids in insertion order, which is exactly
//! the paper's "record of the mapping between the index of each chunk in 𝕋
//! and its corresponding vector" (§III-A): insert chunks in order and the
//! internal id *is* the chunk index.
//!
//! [`SharedIndex`] wraps any index for concurrent query workloads
//! (scalability experiment), and [`flat::FlatIndex::to_bytes`] provides a
//! compact persistence format.

pub mod flat;
pub mod hnsw;
pub mod ivf;
pub mod metric;
pub mod mutable;
pub mod shard;
pub mod shared;

pub use flat::FlatIndex;
pub use hnsw::{HnswConfig, HnswIndex};
pub use mutable::MutableIndex;
pub use ivf::{IvfConfig, IvfIndex};
pub use metric::Metric;
pub use shard::{merge_hits, ShardRouter, ShardedFlat};
pub use shared::SharedIndex;

/// A search hit: internal vector id plus similarity score (higher = closer).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hit {
    /// Internal id (== insertion order == chunk index).
    pub id: usize,
    /// Similarity under the index metric; higher is more similar.
    pub score: f32,
}

/// Top-N nearest-neighbour index over `f32` vectors.
pub trait VectorIndex: Send + Sync {
    /// Insert a vector, returning its internal id (sequential).
    ///
    /// Panics if the vector dimensionality differs from earlier inserts.
    fn add(&mut self, vector: Vec<f32>) -> usize;

    /// Remove all vectors, keeping configuration (metric, parameters).
    fn clear(&mut self);

    /// Return up to `n` most similar vectors, most similar first.
    fn search(&self, query: &[f32], n: usize) -> Vec<Hit>;

    /// Number of stored vectors.
    fn len(&self) -> usize;

    /// Whether the index is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Vector dimensionality (0 when empty and not yet fixed).
    fn dim(&self) -> usize;

    /// Approximate resident memory in bytes (vectors + graph structures).
    /// Backs the memory columns of the scalability tables.
    fn memory_bytes(&self) -> usize;
}
