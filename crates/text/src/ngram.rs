//! N-gram extraction and stable feature hashing.
//!
//! The hashed sentence encoder ([`sage-embed`]'s OpenAI-analog) and the
//! trainable encoders all map token n-grams into a fixed number of feature
//! buckets with [`hash_token`], an FNV-1a implementation. FNV is implemented
//! inline (8 lines) rather than pulled in as a dependency, and — critically
//! for reproducibility — is platform-independent, unlike `DefaultHasher`.

/// A feature id produced by hashing a token or n-gram into `dim` buckets,
/// together with a deterministic sign used for hash-kernel embedding
/// (sign-alternation keeps the expected dot-product of unrelated texts at
/// zero).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HashedFeature {
    /// Bucket index in `0..dim`.
    pub bucket: u32,
    /// +1.0 or -1.0.
    pub sign: f32,
}

/// FNV-1a 64-bit hash of a byte string, seeded.
///
/// `seed` lets different embedding models (question tower vs. passage tower
/// of the DPR analog) use decorrelated hash functions.
pub fn fnv1a(bytes: &[u8], seed: u64) -> u64 {
    let mut hash: u64 = 0xcbf29ce484222325 ^ seed.wrapping_mul(0x100000001b3);
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

/// Hash a token into one of `dim` buckets with a deterministic sign.
pub fn hash_token(token: &str, dim: usize, seed: u64) -> HashedFeature {
    debug_assert!(dim > 0);
    let h = fnv1a(token.as_bytes(), seed);
    let bucket = (h % dim as u64) as u32;
    // Use a high bit (independent of the modulus) for the sign.
    let sign = if (h >> 62) & 1 == 0 { 1.0 } else { -1.0 };
    HashedFeature { bucket, sign }
}

/// Produce word n-grams of order `n` from a token slice, joined with `_`.
///
/// Returns an empty vector when `tokens.len() < n`.
pub fn ngrams(tokens: &[String], n: usize) -> Vec<String> {
    if n == 0 || tokens.len() < n {
        return Vec::new();
    }
    tokens.windows(n).map(|w| w.join("_")).collect()
}

/// Convenience: bigrams of a token slice.
pub fn bigrams(tokens: &[String]) -> Vec<String> {
    ngrams(tokens, 2)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &[&str]) -> Vec<String> {
        s.iter().map(|t| t.to_string()).collect()
    }

    #[test]
    fn fnv_is_stable() {
        // Regression pin: the embedding layout depends on these exact values.
        assert_eq!(fnv1a(b"cat", 0), fnv1a(b"cat", 0));
        assert_ne!(fnv1a(b"cat", 0), fnv1a(b"dog", 0));
        assert_ne!(fnv1a(b"cat", 0), fnv1a(b"cat", 1));
    }

    #[test]
    fn hash_token_in_range() {
        for dim in [1usize, 7, 256, 4096] {
            for tok in ["a", "cat", "retrieval-augmented"] {
                let f = hash_token(tok, dim, 42);
                assert!((f.bucket as usize) < dim);
                assert!(f.sign == 1.0 || f.sign == -1.0);
            }
        }
    }

    #[test]
    fn hash_signs_are_mixed() {
        let words = ["alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta"];
        let pos = words.iter().filter(|w| hash_token(w, 64, 0).sign > 0.0).count();
        assert!(pos > 0 && pos < words.len(), "signs should not be constant");
    }

    #[test]
    fn ngrams_basic() {
        let t = toks(&["a", "b", "c"]);
        assert_eq!(ngrams(&t, 1), toks(&["a", "b", "c"]));
        assert_eq!(ngrams(&t, 2), toks(&["a_b", "b_c"]));
        assert_eq!(ngrams(&t, 3), toks(&["a_b_c"]));
        assert!(ngrams(&t, 4).is_empty());
        assert!(ngrams(&t, 0).is_empty());
    }

    #[test]
    fn bigrams_match_ngrams2() {
        let t = toks(&["x", "y", "z"]);
        assert_eq!(bigrams(&t), ngrams(&t, 2));
    }
}
