//! A compact English stopword list.
//!
//! Used by retrieval scoring and the reranker's lexical-overlap features so
//! that function words do not dominate similarity. The list is sorted so
//! lookup is a binary search — no hashing, no allocation.

/// Sorted list of stopwords. Keep sorted: [`is_stopword`] binary-searches.
const STOPWORDS: &[&str] = &[
    "a", "about", "above", "after", "again", "all", "also", "am", "an", "and", "any", "are",
    "as", "at", "be", "because", "been", "before", "being", "below", "between", "both", "but",
    "by", "can", "could", "did", "do", "does", "doing", "down", "during", "each", "few", "for",
    "from", "further", "had", "has", "have", "having", "he", "her", "here", "hers", "herself",
    "him", "himself", "his", "how", "i", "if", "in", "into", "is", "it", "its", "itself",
    "just", "me", "more", "most", "my", "myself", "no", "nor", "not", "now", "of", "off", "on",
    "once", "only", "or", "other", "our", "ours", "ourselves", "out", "over", "own", "s",
    "same", "she", "should", "so", "some", "such", "t", "than", "that", "the", "their",
    "theirs", "them", "themselves", "then", "there", "these", "they", "this", "those",
    "through", "to", "too", "under", "until", "up", "very", "was", "we", "were", "what",
    "when", "where", "which", "while", "who", "whom", "why", "will", "with", "would", "you",
    "your", "yours", "yourself", "yourselves",
];

/// Return `true` if `word` (already lowercase) is a stopword.
pub fn is_stopword(word: &str) -> bool {
    STOPWORDS.binary_search(&word).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn list_is_sorted_and_deduped() {
        for w in STOPWORDS.windows(2) {
            assert!(w[0] < w[1], "{} >= {}", w[0], w[1]);
        }
    }

    #[test]
    fn common_words_are_stopwords() {
        for w in ["the", "is", "a", "of", "and", "he", "his"] {
            assert!(is_stopword(w), "{w} should be a stopword");
        }
    }

    #[test]
    fn content_words_are_not() {
        for w in ["cat", "whiskers", "retrieval", "segment", "green"] {
            assert!(!is_stopword(w), "{w} should not be a stopword");
        }
    }
}
