//! A Porter-style suffix stripper.
//!
//! Full Porter stemming is overkill for the synthetic corpus; this
//! implements the high-yield steps (plurals, `-ed`/`-ing`, `-ly`,
//! `-ness`/`-ment`/`-tion`) with the "measure > 0" safeguard so that short
//! words like `sing` or `red` are left intact. BM25, METEOR-lite, and the
//! cross-feature reranker all match stems rather than surface forms.

// sage-lint: allow-file(panic-reachability) - byte positions are bounded by the explicit length guards in each suffix rule

/// Return `true` if the character is an English vowel (with `y` treated as
/// a vowel when not word-initial, a simplification of Porter's rule).
fn is_vowel(bytes: &[u8], i: usize) -> bool {
    match bytes[i] {
        b'a' | b'e' | b'i' | b'o' | b'u' => true,
        b'y' => i > 0 && !is_vowel(bytes, i - 1),
        _ => false,
    }
}

/// Whether the stem (as bytes) contains at least one vowel.
fn has_vowel(bytes: &[u8]) -> bool {
    (0..bytes.len()).any(|i| is_vowel(bytes, i))
}

/// Stem a lowercase token. Tokens shorter than 4 characters are returned
/// unchanged; unknown suffixes are left intact.
pub fn stem(word: &str) -> String {
    let mut w = word.to_string();
    if w.len() < 4 || !w.is_ascii() {
        return w;
    }

    // Step 1: plurals and -es/-ies
    if let Some(base) = w.strip_suffix("sses") {
        w = format!("{base}ss");
    } else if let Some(base) = w.strip_suffix("ies") {
        w = format!("{base}i");
    } else if w.ends_with('s') && !w.ends_with("ss") && !w.ends_with("us") {
        w.pop();
    }

    // Step 2: -ed / -ing (only when a vowel remains in the stem)
    if let Some(base) = w.strip_suffix("ing") {
        if has_vowel(base.as_bytes()) && base.len() >= 3 {
            w = undouble(base);
        }
    } else if let Some(base) = w.strip_suffix("ed") {
        if has_vowel(base.as_bytes()) && base.len() >= 3 {
            w = undouble(base);
        }
    }

    // Step 3: adverbial/nominal suffixes
    for (suffix, replacement) in [
        ("ational", "ate"),
        ("ization", "ize"),
        ("fulness", "ful"),
        ("ousness", "ous"),
        ("iveness", "ive"),
        ("tional", "tion"),
        ("biliti", "ble"),
        ("entli", "ent"),
        ("ousli", "ous"),
        ("ment", ""),
        ("ness", ""),
        ("ally", "al"),
        ("ly", ""),
    ] {
        if let Some(base) = w.strip_suffix(suffix) {
            if base.len() >= 3 {
                w = format!("{base}{replacement}");
            }
            break;
        }
    }

    // Final y -> i normalisation so "happy"/"happi(ness)" merge.
    if w.len() > 3 && w.ends_with('y') {
        w.pop();
        w.push('i');
    }
    w
}

/// Collapse a doubled final consonant left by -ed/-ing removal
/// (`hopping` → `hop`), except for l/s/z which legitimately double.
fn undouble(base: &str) -> String {
    let b = base.as_bytes();
    let n = b.len();
    if n >= 2 && b[n - 1] == b[n - 2] && !matches!(b[n - 1], b'l' | b's' | b'z') && !is_vowel(b, n - 1)
    {
        base[..n - 1].to_string()
    } else {
        base.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plurals() {
        assert_eq!(stem("cats"), "cat");
        assert_eq!(stem("ponies"), "poni");
        assert_eq!(stem("classes"), "class");
    }

    #[test]
    fn keeps_short_words() {
        assert_eq!(stem("is"), "is");
        assert_eq!(stem("red"), "red");
        assert_eq!(stem("bus"), "bus");
    }

    #[test]
    fn ed_ing() {
        assert_eq!(stem("jumped"), "jump");
        assert_eq!(stem("jumping"), "jump");
        assert_eq!(stem("hopping"), "hop");
        // "sing" keeps its vowel-less prefix intact
        assert_eq!(stem("sing"), "sing");
    }

    #[test]
    fn derivational() {
        assert_eq!(stem("quickly"), "quick");
        assert_eq!(stem("happiness"), "happi");
        assert_eq!(stem("government"), "govern");
    }

    #[test]
    fn y_to_i_merges_variants() {
        assert_eq!(stem("happy"), "happi");
    }

    #[test]
    fn double_l_kept() {
        assert_eq!(stem("falling"), "fall");
    }

    #[test]
    fn shared_stem_for_morph_variants() {
        assert_eq!(stem("retrieves"), stem("retrieve"));
        assert_eq!(stem("segmenting"), stem("segmented"));
    }

    #[test]
    fn non_ascii_passthrough() {
        assert_eq!(stem("café"), "café");
    }
}
