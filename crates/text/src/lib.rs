//! # sage-text
//!
//! Text-processing substrate for the SAGE RAG framework.
//!
//! Every other crate in the workspace funnels raw text through this crate:
//! the segmentation model consumes [`split_sentences`] output, the BM25 and
//! dense retrievers consume [`tokenize`] + [`stem`] output, the metrics crate
//! compares token streams, and the LLM cost model (paper Eq. 1) counts tokens
//! with [`count_tokens`].
//!
//! The implementation is self-contained (no external NLP dependencies) and
//! deterministic, which keeps every experiment in the bench harness exactly
//! reproducible.
//!
//! ## Modules
//!
//! - [`token`] — word tokenization and LLM-style token counting
//! - [`sentence`] — sentence and paragraph splitting (paper §III-A splits
//!   paragraphs on `'\n'` before fine-grained segmentation)
//! - [`stem`] — a Porter-style suffix stripper used by BM25 and METEOR
//! - [`stopwords`] — a small English stopword list
//! - [`ngram`] — n-gram extraction and stable feature hashing
//! - [`vocab`] — string interning / vocabulary management

pub mod ngram;
pub mod sentence;
pub mod stem;
pub mod stopwords;
pub mod token;
pub mod vocab;

pub use ngram::{bigrams, hash_token, ngrams, HashedFeature};
pub use sentence::{split_paragraphs, split_sentences};
pub use stem::stem;
pub use stopwords::is_stopword;
pub use token::{count_tokens, normalize, tokenize, tokenize_filtered};
pub use vocab::Vocab;
