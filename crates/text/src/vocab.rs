//! String interning / vocabulary management.
//!
//! The BM25 inverted index and the trainable encoders address terms by dense
//! `u32` ids rather than strings. `Vocab` provides the bidirectional map and
//! document-frequency bookkeeping needed for IDF weighting.

use std::collections::HashMap;

/// A growable vocabulary interning strings to dense ids, with optional
/// document-frequency counts.
#[derive(Debug, Default, Clone)]
pub struct Vocab {
    // sage-lint: allow(deterministic-iteration) - id lookup table only; every enumeration goes through the id-ordered `terms` Vec
    by_term: HashMap<String, u32>,
    terms: Vec<String>,
    doc_freq: Vec<u32>,
    num_docs: u32,
}

impl Vocab {
    /// Create an empty vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `term`, returning its id (existing or fresh).
    pub fn intern(&mut self, term: &str) -> u32 {
        if let Some(&id) = self.by_term.get(term) {
            return id;
        }
        let id = self.terms.len() as u32;
        self.by_term.insert(term.to_string(), id);
        self.terms.push(term.to_string());
        self.doc_freq.push(0);
        id
    }

    /// Look up an id without inserting.
    pub fn get(&self, term: &str) -> Option<u32> {
        self.by_term.get(term).copied()
    }

    /// The term for an id, if valid.
    pub fn term(&self, id: u32) -> Option<&str> {
        self.terms.get(id as usize).map(String::as_str)
    }

    /// Number of distinct terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Whether the vocabulary is empty.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Record one document's terms for document-frequency accounting.
    /// `term_ids` may contain duplicates; each distinct id counts once.
    pub fn record_document(&mut self, term_ids: &[u32]) {
        self.num_docs += 1;
        let mut seen: Vec<u32> = term_ids.to_vec();
        seen.sort_unstable();
        seen.dedup();
        for id in seen {
            if let Some(df) = self.doc_freq.get_mut(id as usize) {
                *df += 1;
            }
        }
    }

    /// Number of documents recorded.
    pub fn num_docs(&self) -> u32 {
        self.num_docs
    }

    /// Document frequency of a term id.
    pub fn doc_freq(&self, id: u32) -> u32 {
        self.doc_freq.get(id as usize).copied().unwrap_or(0)
    }

    /// All interned terms in id order (serialization).
    pub fn terms(&self) -> &[String] {
        &self.terms
    }

    /// All document frequencies in id order (serialization).
    pub fn doc_freqs(&self) -> &[u32] {
        &self.doc_freq
    }

    /// Rebuild from persisted parts. `None` when lengths mismatch or terms
    /// contain duplicates.
    pub fn from_parts(terms: Vec<String>, doc_freq: Vec<u32>, num_docs: u32) -> Option<Self> {
        if terms.len() != doc_freq.len() {
            return None;
        }
        // sage-lint: allow(deterministic-iteration) - rebuilt lookup table for the same id-ordered `terms` Vec; never iterated
        let mut by_term = HashMap::with_capacity(terms.len());
        for (id, term) in terms.iter().enumerate() {
            if by_term.insert(term.clone(), id as u32).is_some() {
                return None;
            }
        }
        Some(Self { by_term, terms, doc_freq, num_docs })
    }

    /// Smoothed inverse document frequency:
    /// `ln(1 + (N - df + 0.5)/(df + 0.5))`, the BM25 IDF form, always ≥ 0.
    pub fn idf(&self, id: u32) -> f32 {
        let n = self.num_docs as f32;
        let df = self.doc_freq(id) as f32;
        (1.0 + (n - df + 0.5) / (df + 0.5)).ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut v = Vocab::new();
        let a = v.intern("cat");
        let b = v.intern("dog");
        assert_ne!(a, b);
        assert_eq!(v.intern("cat"), a);
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn roundtrip_term() {
        let mut v = Vocab::new();
        let id = v.intern("whiskers");
        assert_eq!(v.term(id), Some("whiskers"));
        assert_eq!(v.get("whiskers"), Some(id));
        assert_eq!(v.get("absent"), None);
        assert_eq!(v.term(999), None);
    }

    #[test]
    fn doc_freq_counts_distinct_per_doc() {
        let mut v = Vocab::new();
        let cat = v.intern("cat");
        let dog = v.intern("dog");
        v.record_document(&[cat, cat, dog]);
        v.record_document(&[cat]);
        assert_eq!(v.num_docs(), 2);
        assert_eq!(v.doc_freq(cat), 2);
        assert_eq!(v.doc_freq(dog), 1);
    }

    #[test]
    fn idf_orders_rare_above_common() {
        let mut v = Vocab::new();
        let common = v.intern("the");
        let rare = v.intern("zyzzyva");
        for i in 0..10 {
            if i == 0 {
                v.record_document(&[common, rare]);
            } else {
                v.record_document(&[common]);
            }
        }
        assert!(v.idf(rare) > v.idf(common));
        assert!(v.idf(common) >= 0.0);
    }

    #[test]
    fn empty_vocab() {
        let v = Vocab::new();
        assert!(v.is_empty());
        assert_eq!(v.num_docs(), 0);
    }
}
