//! Word tokenization and token counting.
//!
//! Tokens are lowercase alphanumeric runs. Apostrophes inside a word are
//! kept (`cat's` → `cat's`) so that possessives survive as a single token,
//! matching how the paper's motivating examples treat "my cat's eyes".

use crate::stopwords::is_stopword;

/// Lowercase a string and collapse internal whitespace to single spaces.
///
/// Used to normalize answers before metric comparison.
pub fn normalize(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut last_space = true;
    for ch in text.chars() {
        if ch.is_whitespace() {
            if !last_space {
                out.push(' ');
                last_space = true;
            }
        } else {
            for lc in ch.to_lowercase() {
                out.push(lc);
            }
            last_space = false;
        }
    }
    if out.ends_with(' ') {
        out.pop();
    }
    out
}

/// Split `text` into lowercase word tokens.
///
/// A token is a maximal run of alphanumeric characters, possibly containing
/// single embedded apostrophes or hyphens (`state-of-the-art` is one token).
/// Punctuation is dropped.
pub fn tokenize(text: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    let chars: Vec<char> = text.chars().collect();
    for (i, &ch) in chars.iter().enumerate() {
        if ch.is_alphanumeric() {
            for lc in ch.to_lowercase() {
                current.push(lc);
            }
        } else if (ch == '\'' || ch == '-')
            && !current.is_empty()
            && chars.get(i + 1).is_some_and(|c| c.is_alphanumeric())
        {
            // keep intra-word apostrophes and hyphens
            current.push(ch);
        } else if !current.is_empty() {
            tokens.push(std::mem::take(&mut current));
        }
    }
    if !current.is_empty() {
        tokens.push(current);
    }
    tokens
}

/// Tokenize and drop stopwords. Used by retrieval scoring where function
/// words carry no signal.
pub fn tokenize_filtered(text: &str) -> Vec<String> {
    tokenize(text)
        .into_iter()
        .filter(|t| !is_stopword(t))
        .collect()
}

/// Approximate the number of LLM tokens in `text`.
///
/// The paper's cost model (Eq. 1) charges per LLM token. Real BPE tokenizers
/// produce roughly 4/3 tokens per English word; we reproduce that ratio so
/// that measured token counts land in the same regime as the paper's
/// (e.g. ~5,000-token QuALITY articles). Punctuation marks count as one
/// token each.
pub fn count_tokens(text: &str) -> usize {
    let mut words = 0usize;
    let mut punct = 0usize;
    let mut in_word = false;
    for ch in text.chars() {
        if ch.is_alphanumeric() || ch == '\'' || ch == '-' {
            if !in_word {
                words += 1;
                in_word = true;
            }
        } else {
            in_word = false;
            if !ch.is_whitespace() {
                punct += 1;
            }
        }
    }
    // 4 BPE tokens per 3 words, rounded up, plus punctuation.
    words + words.div_ceil(3) + punct
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_basic() {
        assert_eq!(tokenize("I have a cat."), vec!["i", "have", "a", "cat"]);
    }

    #[test]
    fn tokenize_keeps_possessive() {
        assert_eq!(tokenize("my cat's eyes"), vec!["my", "cat's", "eyes"]);
    }

    #[test]
    fn tokenize_keeps_hyphenated() {
        assert_eq!(tokenize("state-of-the-art"), vec!["state-of-the-art"]);
    }

    #[test]
    fn tokenize_drops_trailing_apostrophe() {
        assert_eq!(tokenize("cats' toys"), vec!["cats", "toys"]);
    }

    #[test]
    fn tokenize_empty() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("  ...  ").is_empty());
    }

    #[test]
    fn tokenize_numbers() {
        assert_eq!(tokenize("GPT-4 costs 10 dollars"), vec!["gpt-4", "costs", "10", "dollars"]);
    }

    #[test]
    fn normalize_collapses_whitespace() {
        assert_eq!(normalize("  A  Big\tCat \n"), "a big cat");
    }

    #[test]
    fn count_tokens_scales_with_words() {
        // 3 words -> 3 + 1 = 4 tokens plus one period
        assert_eq!(count_tokens("I have cats."), 5);
        assert_eq!(count_tokens(""), 0);
    }

    #[test]
    fn count_tokens_monotone_in_text() {
        let short = count_tokens("one two three");
        let long = count_tokens("one two three four five six");
        assert!(long > short);
    }

    #[test]
    fn filtered_drops_stopwords() {
        let toks = tokenize_filtered("the cat is on the mat");
        assert_eq!(toks, vec!["cat", "mat"]);
    }
}
