//! Sentence and paragraph splitting.
//!
//! The SAGE workflow (paper §III-A) first splits a corpus into paragraphs on
//! `'\n'`, then the segmentation model decides, for each pair of adjacent
//! sentences, whether they belong in the same chunk. This module provides
//! both splits.

// sage-lint: allow-file(panic-reachability) - char positions are produced and bounds-checked by the same scan loops over the chars vec

/// Abbreviations after which a period does *not* end a sentence.
const ABBREVIATIONS: &[&str] = &[
    "mr", "mrs", "ms", "dr", "prof", "sr", "jr", "st", "vs", "etc", "e.g", "i.e", "fig", "eq",
    "al", "inc", "ltd", "co", "no", "vol", "pp",
];

/// Split text into paragraphs on newlines, trimming and dropping empties.
pub fn split_paragraphs(text: &str) -> Vec<&str> {
    text.split('\n')
        .map(str::trim)
        .filter(|p| !p.is_empty())
        .collect()
}

/// Split a paragraph into sentences.
///
/// Sentence terminators are `.`, `!`, `?` (optionally followed by closing
/// quotes/brackets). Periods after known abbreviations, inside numbers
/// (`3.10GHz`) or single initials (`J. Smith`) do not terminate.
pub fn split_sentences(text: &str) -> Vec<String> {
    let chars: Vec<char> = text.chars().collect();
    let mut sentences = Vec::new();
    let mut start = 0usize;
    let mut i = 0usize;
    while i < chars.len() {
        let ch = chars[i];
        if ch == '.' || ch == '!' || ch == '?' {
            // Consume runs of terminators ("?!", "...").
            let mut end = i + 1;
            while end < chars.len() && matches!(chars[end], '.' | '!' | '?') {
                end += 1;
            }
            // Trailing closers stay with the sentence.
            while end < chars.len() && matches!(chars[end], '"' | '\'' | ')' | ']' | '”' | '’') {
                end += 1;
            }
            let is_boundary = if ch == '.' && end == i + 1 {
                !period_is_internal(&chars, i)
            } else {
                true
            };
            if is_boundary {
                let sentence: String = chars[start..end].iter().collect();
                let trimmed = sentence.trim();
                if !trimmed.is_empty() {
                    sentences.push(trimmed.to_string());
                }
                start = end;
            }
            i = end;
        } else {
            i += 1;
        }
    }
    if start < chars.len() {
        let tail: String = chars[start..].iter().collect();
        let trimmed = tail.trim();
        if !trimmed.is_empty() {
            sentences.push(trimmed.to_string());
        }
    }
    sentences
}

/// Decide whether the period at `idx` is internal (abbreviation, number,
/// initial) rather than a sentence boundary.
fn period_is_internal(chars: &[char], idx: usize) -> bool {
    // Number like 3.10
    let prev_digit = idx > 0 && chars[idx - 1].is_ascii_digit();
    let next_digit = chars.get(idx + 1).is_some_and(|c| c.is_ascii_digit());
    if prev_digit && next_digit {
        return true;
    }
    // Collect the word before the period.
    let mut j = idx;
    while j > 0 && (chars[j - 1].is_alphanumeric() || chars[j - 1] == '.') {
        j -= 1;
    }
    let word: String = chars[j..idx].iter().collect::<String>().to_lowercase();
    if word.len() == 1 && word.chars().next().is_some_and(char::is_alphabetic) {
        return true; // single initial "J."
    }
    ABBREVIATIONS.contains(&word.as_str())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paragraphs_split_on_newline() {
        let ps = split_paragraphs("First para.\nSecond para.\n\n  \nThird.");
        assert_eq!(ps, vec!["First para.", "Second para.", "Third."]);
    }

    #[test]
    fn simple_sentences() {
        let s = split_sentences("I have a cat. His name is Whiskers.");
        assert_eq!(s, vec!["I have a cat.", "His name is Whiskers."]);
    }

    #[test]
    fn exclamation_and_question() {
        let s = split_sentences("Really?! Yes. Go!");
        assert_eq!(s, vec!["Really?!", "Yes.", "Go!"]);
    }

    #[test]
    fn abbreviation_not_boundary() {
        let s = split_sentences("Dr. Smith arrived. He sat down.");
        assert_eq!(s, vec!["Dr. Smith arrived.", "He sat down."]);
    }

    #[test]
    fn decimal_number_not_boundary() {
        let s = split_sentences("The CPU runs at 3.10GHz. It is fast.");
        assert_eq!(s, vec!["The CPU runs at 3.10GHz.", "It is fast."]);
    }

    #[test]
    fn initial_not_boundary() {
        let s = split_sentences("J. Smith wrote it. We read it.");
        assert_eq!(s, vec!["J. Smith wrote it.", "We read it."]);
    }

    #[test]
    fn trailing_fragment_kept() {
        let s = split_sentences("Complete sentence. trailing fragment without period");
        assert_eq!(s.len(), 2);
        assert_eq!(s[1], "trailing fragment without period");
    }

    #[test]
    fn quotes_stay_attached() {
        let s = split_sentences("He said \"stop.\" Then he left.");
        assert_eq!(s[0], "He said \"stop.\"");
        assert_eq!(s[1], "Then he left.");
    }

    #[test]
    fn empty_input() {
        assert!(split_sentences("").is_empty());
        assert!(split_paragraphs("").is_empty());
    }

    #[test]
    fn ellipsis_single_boundary() {
        let s = split_sentences("Wait... Now go.");
        assert_eq!(s, vec!["Wait...", "Now go."]);
    }
}
