//! Template rendering: facts → statement sentences, facts → questions.
//!
//! The pronoun form is the load-bearing detail: a pronoun-form sentence is
//! only interpretable next to its antecedent (the intro or a prior
//! entity-form sentence). Fixed-length segmentation that separates the two
//! reproduces the paper's Figure 3-B failure exactly.

// sage-lint: allow-file(panic-reachability) - variant is reduced modulo the template pool length on the same line

use crate::facts::Fact;
use rand::rngs::StdRng;
use rand::Rng;

/// Capitalize the first character of a string.
fn capitalize(s: &str) -> String {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) => c.to_uppercase().collect::<String>() + chars.as_str(),
        None => String::new(),
    }
}

/// Fill a statement/question template with an entity's fields and a value.
fn fill(template: &str, fact: &Fact) -> String {
    let e = &fact.entity;
    let mut out = template
        .replace("{e}", &e.name)
        .replace("{v}", &fact.value)
        .replace("{pos}", e.possessive)
        .replace("{p}", e.pronoun);
    // Sentence-initial pronouns must be capitalized.
    if template.starts_with("{p}") || template.starts_with("{pos}") {
        out = capitalize(&out);
    }
    out
}

/// Render the fact as an entity-form sentence using template `variant`
/// (wraps around the available templates).
pub fn statement_entity(fact: &Fact, variant: usize) -> String {
    let ts = fact.spec().statement_entity;
    fill(ts[variant % ts.len()], fact)
}

/// Render the fact as a pronoun-form sentence using template `variant`.
pub fn statement_pronoun(fact: &Fact, variant: usize) -> String {
    let ts = fact.spec().statement_pronoun;
    fill(ts[variant % ts.len()], fact)
}

/// Render the fact as either form, chosen by `use_pronoun`.
pub fn statement(fact: &Fact, use_pronoun: bool, variant: usize) -> String {
    if use_pronoun {
        statement_pronoun(fact, variant)
    } else {
        statement_entity(fact, variant)
    }
}

/// Render a question about the fact (template chosen by `variant`).
pub fn question(fact: &Fact, variant: usize) -> String {
    let qs = fact.spec().question;
    fill(qs[variant % qs.len()], fact)
}

/// Two different entity-form renderings of the same fact — a positive
/// paraphrase pair for the siamese (SBERT-analog) trainer. Returns `None`
/// when the relation has only one entity template.
pub fn paraphrase_pair(fact: &Fact, rng: &mut StdRng) -> Option<(String, String)> {
    let n = fact.spec().statement_entity.len();
    if n < 2 {
        return None;
    }
    let a = rng.random_range(0..n);
    let mut b = rng.random_range(0..n - 1);
    if b >= a {
        b += 1;
    }
    Some((statement_entity(fact, a), statement_entity(fact, b)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::facts::{Entity, Fact, RELATIONS};
    use rand::SeedableRng;

    fn eye_fact() -> Fact {
        let mut rng = StdRng::seed_from_u64(1);
        let mut e = Entity::pet(&mut rng);
        e.name = "Whiskers".into();
        e.pronoun = "he";
        e.possessive = "his";
        let rel = RELATIONS.iter().position(|r| r.name == "eye_color").unwrap();
        Fact { entity: e, relation: rel, value: "green".into() }
    }

    #[test]
    fn entity_form_names_entity_and_value() {
        let s = statement_entity(&eye_fact(), 0);
        assert!(s.contains("Whiskers"), "{s}");
        assert!(s.contains("green"), "{s}");
    }

    #[test]
    fn pronoun_form_hides_entity() {
        let f = eye_fact();
        for v in 0..4 {
            let s = statement_pronoun(&f, v);
            assert!(!s.contains("Whiskers"), "{s}");
            assert!(s.contains("green"), "{s}");
        }
    }

    #[test]
    fn pronoun_form_is_capitalized() {
        let s = statement_pronoun(&eye_fact(), 0);
        assert!(s.starts_with(char::is_uppercase), "{s}");
    }

    #[test]
    fn question_mentions_entity_not_value() {
        let q = question(&eye_fact(), 0);
        assert!(q.contains("Whiskers"), "{q}");
        assert!(!q.contains("green"), "{q}");
        assert!(q.ends_with('?'), "{q}");
    }

    #[test]
    fn template_variants_cycle() {
        let f = eye_fact();
        let n = f.spec().statement_entity.len();
        assert_eq!(statement_entity(&f, 0), statement_entity(&f, n));
    }

    #[test]
    fn paraphrase_pair_differs() {
        let f = eye_fact();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10 {
            let (a, b) = paraphrase_pair(&f, &mut rng).unwrap();
            assert_ne!(a, b);
            assert!(a.contains("green") && b.contains("green"));
        }
    }
}
