//! Word pools and a syllable-based proper-name generator.
//!
//! Names are generated (not drawn from a fixed list) so corpora of any size
//! have distinct entities; value pools are fixed English word lists so
//! questions and answers read naturally and the reader's lexical matching
//! has realistic collision structure (several entities share a value pool,
//! which is what makes distractors confusable).

// sage-lint: allow-file(panic-reachability) - every index is rng.random_range bounded by the pool length on the same line

use rand::rngs::StdRng;
use rand::Rng;

/// Colors — eye/fur color values.
pub const COLORS: &[&str] = &[
    "green", "orange", "blue", "amber", "gray", "hazel", "silver", "golden", "copper", "violet",
    "brown", "black", "white", "crimson", "teal", "ivory",
];

/// Cities / places.
pub const PLACES: &[&str] = &[
    "Ashford", "Brinmore", "Caldreth", "Dunhaven", "Eastmere", "Farrowdale", "Glenport",
    "Hartwick", "Ironvale", "Juniper Falls", "Kestrel Bay", "Larkspur", "Mistral Point",
    "Northgate", "Oakhollow", "Pinecrest", "Quarryton", "Ravenmoor", "Silverbrook", "Thornfield",
];

/// Professions.
pub const PROFESSIONS: &[&str] = &[
    "engineer", "botanist", "cartographer", "blacksmith", "astronomer", "baker", "archivist",
    "surgeon", "composer", "navigator", "chemist", "weaver", "geologist", "translator",
    "beekeeper", "locksmith", "sculptor", "falconer", "printer", "glassblower",
];

/// Foods.
pub const FOODS: &[&str] = &[
    "roasted chestnuts", "plum dumplings", "barley soup", "smoked trout", "honey cakes",
    "pickled beets", "rye bread", "apple tarts", "lentil stew", "ginger biscuits",
    "blackberry jam", "corn fritters", "onion pie", "salted almonds", "pear cider",
];

/// Animals — pet species and fears.
pub const ANIMALS: &[&str] = &[
    "tabby cat", "border collie", "gray parrot", "dwarf rabbit", "hedgehog", "tortoise",
    "ferret", "canary", "iguana", "pygmy goat", "barn owl", "koi carp",
];

/// Technologies / inventions (multi-valued relation pool, used by
/// elimination questions).
pub const TECHNOLOGIES: &[&str] = &[
    "signal lattice", "vapor engine", "glass capacitor", "echo compass", "spring loom",
    "arc furnace", "tide clock", "copper telegraph", "prism lens", "steam bellows",
    "gear press", "wind turbine", "salt battery", "chain elevator", "mirror beacon",
    "rail brake", "ink duplicator", "coil heater", "flux meter", "drum pump",
];

/// Musical instruments.
pub const INSTRUMENTS: &[&str] = &[
    "cello", "oboe", "mandolin", "harpsichord", "accordion", "viola", "bassoon", "zither",
    "dulcimer", "piccolo",
];

/// Academic fields (QASPER-analog paper topics).
pub const FIELDS: &[&str] = &[
    "semantic parsing", "relation extraction", "question answering", "text summarization",
    "machine translation", "dialogue modeling", "entity linking", "sentiment analysis",
    "coreference resolution", "information retrieval", "speech recognition", "topic modeling",
];

/// Filler sentence fragments — low-information scenery used to pad
/// paragraphs without adding evidence.
pub const FILLER_OPENERS: &[&str] = &[
    "The morning fog settled over the valley",
    "Rain tapped gently on the old roof",
    "The market square was quiet that season",
    "A cold wind moved through the pines",
    "Lanterns flickered along the harbor road",
    "Dust drifted in the afternoon light",
    "The river ran high after the storms",
    "Bells rang faintly from the far tower",
];

/// Filler sentence closers.
pub const FILLER_CLOSERS: &[&str] = &[
    "and nobody paid it much attention",
    "as it had for many years",
    "while the town carried on as usual",
    "long before the visitors arrived",
    "though few remembered why",
    "and the day passed slowly",
];

/// Syllables for generated proper names.
const NAME_STARTS: &[&str] = &[
    "Bar", "Dor", "Vel", "Mar", "Tam", "Ren", "Cal", "Fen", "Gal", "Hol", "Ingr", "Jor", "Kel",
    "Lor", "Mira", "Nor", "Orin", "Pell", "Quin", "Ros", "Sel", "Tor", "Ul", "Vor", "Wen", "Yar",
];
const NAME_MIDDLES: &[&str] = &["a", "e", "i", "o", "u", "an", "el", "in", "or", "ar"];
const NAME_ENDS: &[&str] = &[
    "dan", "mir", "ros", "wick", "ton", "ley", "brook", "stad", "wyn", "fell", "mond", "ric",
    "vale", "gard", "holm", "eth",
];

/// Deterministic name/word sampling over the static pools.
#[derive(Debug, Clone, Copy, Default)]
pub struct Lexicon;

impl Lexicon {
    /// Generate a proper name like "Dorinwick" or "Mirabrook".
    pub fn person_name(rng: &mut StdRng) -> String {
        let start = NAME_STARTS[rng.random_range(0..NAME_STARTS.len())];
        let end = NAME_ENDS[rng.random_range(0..NAME_ENDS.len())];
        if rng.random_bool(0.5) {
            let mid = NAME_MIDDLES[rng.random_range(0..NAME_MIDDLES.len())];
            format!("{start}{mid}{end}")
        } else {
            format!("{start}{end}")
        }
    }

    /// Generate a pet name like "Whiskin" (shorter, friendlier).
    pub fn pet_name(rng: &mut StdRng) -> String {
        const PETS: &[&str] = &[
            "Whisk", "Patch", "Brone", "Moss", "Fid", "Tuft", "Bram", "Clov", "Dapp", "Smudge",
        ];
        const SUFFIX: &[&str] = &["ers", "y", "et", "o", "le", "in"];
        let base = PETS[rng.random_range(0..PETS.len())];
        let suf = SUFFIX[rng.random_range(0..SUFFIX.len())];
        format!("{base}{suf}")
    }

    /// Pick one word from a pool.
    pub fn pick<'a>(rng: &mut StdRng, pool: &[&'a str]) -> &'a str {
        pool[rng.random_range(0..pool.len())]
    }

    /// Pick `n` distinct words from a pool (n must be ≤ pool size).
    pub fn pick_distinct<'a>(rng: &mut StdRng, pool: &[&'a str], n: usize) -> Vec<&'a str> {
        assert!(n <= pool.len(), "cannot pick {n} distinct from pool of {}", pool.len());
        let mut indices: Vec<usize> = (0..pool.len()).collect();
        // Partial Fisher-Yates.
        for i in 0..n {
            let j = rng.random_range(i..indices.len());
            indices.swap(i, j);
        }
        indices[..n].iter().map(|&i| pool[i]).collect()
    }

    /// A filler sentence with no evidence content.
    pub fn filler_sentence(rng: &mut StdRng) -> String {
        let open = Self::pick(rng, FILLER_OPENERS);
        let close = Self::pick(rng, FILLER_CLOSERS);
        format!("{open}, {close}.")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn names_are_deterministic() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        assert_eq!(Lexicon::person_name(&mut a), Lexicon::person_name(&mut b));
    }

    #[test]
    fn names_vary_across_draws() {
        let mut rng = StdRng::seed_from_u64(2);
        let names: std::collections::HashSet<String> =
            (0..50).map(|_| Lexicon::person_name(&mut rng)).collect();
        assert!(names.len() > 30, "only {} distinct names in 50 draws", names.len());
    }

    #[test]
    fn pick_distinct_no_duplicates() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..20 {
            let picked = Lexicon::pick_distinct(&mut rng, COLORS, 5);
            let set: std::collections::HashSet<&&str> = picked.iter().collect();
            assert_eq!(set.len(), 5);
        }
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn pick_distinct_overflow_panics() {
        let mut rng = StdRng::seed_from_u64(4);
        Lexicon::pick_distinct(&mut rng, INSTRUMENTS, 100);
    }

    #[test]
    fn filler_has_no_pool_values() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..20 {
            let f = Lexicon::filler_sentence(&mut rng).to_lowercase();
            for c in COLORS {
                assert!(!f.contains(c), "filler leaked value: {f}");
            }
        }
    }

    #[test]
    fn pools_are_nonempty_and_lowercase_values() {
        for pool in [COLORS, PROFESSIONS, FOODS, TECHNOLOGIES] {
            assert!(!pool.is_empty());
            for v in pool {
                assert_eq!(*v, v.to_lowercase(), "value pools must be lowercase: {v}");
            }
        }
    }
}
