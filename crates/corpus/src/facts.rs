//! The entity-fact world model: entities, relations, and facts.
//!
//! A fact is an `(entity, relation, value)` triple. Relations carry the
//! templates used to render statements (entity-form and pronoun-form) and
//! questions, plus the value pool answers are drawn from. Because every
//! sentence in a generated document comes from a known fact (or is known
//! filler), the generator can annotate each question with its exact
//! evidence sentences — ground truth the experiments rely on.

use crate::lexicon::{self, Lexicon};
use rand::rngs::StdRng;
use rand::Rng;

/// What kind of thing an entity is (drives templates and pronouns).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntityKind {
    /// A human character.
    Person,
    /// A pet/animal character (the paper's running "Whiskers" example).
    Pet,
}

/// A named participant in a document.
#[derive(Debug, Clone)]
pub struct Entity {
    /// Proper name, e.g. "Dorinwick" or "Whiskers".
    pub name: String,
    /// Person or pet.
    pub kind: EntityKind,
    /// Subject pronoun ("he", "she", "it").
    pub pronoun: &'static str,
    /// Possessive pronoun ("his", "her", "its").
    pub possessive: &'static str,
    /// Species for pets ("tabby cat"), empty for persons.
    pub species: String,
}

impl Entity {
    /// Generate a random person.
    pub fn person(rng: &mut StdRng) -> Self {
        let (pronoun, possessive) =
            if rng.random_bool(0.5) { ("he", "his") } else { ("she", "her") };
        Self {
            name: Lexicon::person_name(rng),
            kind: EntityKind::Person,
            pronoun,
            possessive,
            species: String::new(),
        }
    }

    /// Generate a random pet.
    pub fn pet(rng: &mut StdRng) -> Self {
        let (pronoun, possessive) = match rng.random_range(0..3) {
            0 => ("he", "his"),
            1 => ("she", "her"),
            _ => ("it", "its"),
        };
        Self {
            name: Lexicon::pet_name(rng),
            kind: EntityKind::Pet,
            pronoun,
            possessive,
            species: Lexicon::pick(rng, lexicon::ANIMALS).to_string(),
        }
    }

    /// An introductory sentence that names the entity (the coreference
    /// antecedent for later pronoun-form fact sentences).
    pub fn intro_sentence(&self, rng: &mut StdRng) -> String {
        match self.kind {
            EntityKind::Person => {
                const INTROS: &[&str] = &[
                    "{e} was well known in the region.",
                    "{e} had lived an unusual and busy life.",
                    "Everyone in town had a story about {e}.",
                    "{e} rarely spoke about the past.",
                ];
                Lexicon::pick(rng, INTROS).replace("{e}", &self.name)
            }
            EntityKind::Pet => {
                const INTROS: &[&str] = &[
                    "{e} is a playful {s}.",
                    "{e}, a {s}, rules the house.",
                    "{e} is a {s} with a stubborn streak.",
                ];
                Lexicon::pick(rng, INTROS).replace("{e}", &self.name).replace("{s}", &self.species)
            }
        }
    }
}

/// Which static word pool a relation draws values from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pool {
    /// Eye/fur colors.
    Colors,
    /// Cities and places.
    Places,
    /// Professions.
    Professions,
    /// Foods.
    Foods,
    /// Technologies (multi-valued; used by elimination questions).
    Technologies,
    /// Musical instruments.
    Instruments,
    /// Pet species.
    Animals,
}

impl Pool {
    /// The words in this pool.
    pub fn words(self) -> &'static [&'static str] {
        match self {
            Pool::Colors => lexicon::COLORS,
            Pool::Places => lexicon::PLACES,
            Pool::Professions => lexicon::PROFESSIONS,
            Pool::Foods => lexicon::FOODS,
            Pool::Technologies => lexicon::TECHNOLOGIES,
            Pool::Instruments => lexicon::INSTRUMENTS,
            Pool::Animals => lexicon::ANIMALS,
        }
    }
}

/// A relation type with rendering templates.
///
/// Template placeholders: `{e}` entity name, `{p}` capitalized subject
/// pronoun, `{pos}` possessive pronoun, `{v}` value.
#[derive(Debug)]
pub struct RelationSpec {
    /// Identifier, e.g. "eye_color".
    pub name: &'static str,
    /// Which entity kinds this relation applies to.
    pub applies_to: &'static [EntityKind],
    /// Whether one entity can hold several values (→ elimination questions).
    pub multi_valued: bool,
    /// Entity-form statement templates (at least 2, for paraphrase pairs).
    pub statement_entity: &'static [&'static str],
    /// Pronoun-form statement templates (the L1 mechanism).
    pub statement_pronoun: &'static [&'static str],
    /// Question templates.
    pub question: &'static [&'static str],
    /// Value pool.
    pub pool: Pool,
}

/// The global relation table.
///
/// A `static` (not `const`): relation identity is by address, so code that
/// maps a `&RelationSpec` back to its index via `std::ptr::eq` needs one
/// canonical copy of the table.
pub static RELATIONS: &[RelationSpec] = &[
    RelationSpec {
        name: "eye_color",
        applies_to: &[EntityKind::Pet],
        multi_valued: false,
        statement_entity: &[
            "{e} has bright {v} eyes.",
            "{e}'s eyes are a deep {v}.",
            "The eyes of {e} glow {v} in dim light.",
        ],
        statement_pronoun: &[
            "{p} has bright {v} eyes.",
            "{pos} eyes are a deep {v}.",
        ],
        question: &[
            "What is the color of {e}'s eyes?",
            "What color are the eyes of {e}?",
        ],
        pool: Pool::Colors,
    },
    RelationSpec {
        name: "fur_color",
        applies_to: &[EntityKind::Pet],
        multi_valued: false,
        statement_entity: &[
            "{e}'s fur is mostly {v}.",
            "{e} wears a thick {v} coat of fur.",
        ],
        statement_pronoun: &[
            "{pos} fur is mostly {v}.",
            "{p} wears a thick {v} coat of fur.",
        ],
        question: &["What color is {e}'s fur?"],
        pool: Pool::Colors,
    },
    RelationSpec {
        name: "pet_food",
        applies_to: &[EntityKind::Pet],
        multi_valued: false,
        statement_entity: &[
            "{e} loves eating {v}.",
            "{e} begs for {v} every evening.",
        ],
        statement_pronoun: &[
            "{p} loves eating {v}.",
            "{p} begs for {v} every evening.",
        ],
        question: &["What does {e} love to eat?"],
        pool: Pool::Foods,
    },
    RelationSpec {
        name: "lives_in",
        applies_to: &[EntityKind::Person],
        multi_valued: false,
        statement_entity: &[
            "{e} lives in {v}.",
            "{e} settled in {v} many years ago.",
            "{e} keeps a small house in {v}.",
        ],
        statement_pronoun: &[
            "{p} lives in {v}.",
            "{p} settled in {v} many years ago.",
        ],
        question: &["Where does {e} live?", "In which town does {e} live?"],
        pool: Pool::Places,
    },
    RelationSpec {
        name: "born_in",
        applies_to: &[EntityKind::Person],
        multi_valued: false,
        statement_entity: &[
            "{e} was born in {v}.",
            "{e} spent a childhood in {v}.",
        ],
        statement_pronoun: &[
            "{p} was born in {v}.",
            "{p} spent a childhood in {v}.",
        ],
        question: &["Where was {e} born?"],
        pool: Pool::Places,
    },
    RelationSpec {
        name: "profession",
        applies_to: &[EntityKind::Person],
        multi_valued: false,
        statement_entity: &[
            "{e} works as a {v}.",
            "{e} earns a living as a {v}.",
            "By trade, {e} is a {v}.",
        ],
        statement_pronoun: &[
            "{p} works as a {v}.",
            "{p} earns a living as a {v}.",
        ],
        question: &["What is {e}'s profession?", "What does {e} do for a living?"],
        pool: Pool::Professions,
    },
    RelationSpec {
        name: "favorite_food",
        applies_to: &[EntityKind::Person],
        multi_valued: false,
        statement_entity: &[
            "{e}'s favorite food is {v}.",
            "{e} never turns down {v}.",
        ],
        statement_pronoun: &[
            "{pos} favorite food is {v}.",
            "{p} never turns down {v}.",
        ],
        question: &["What is {e}'s favorite food?"],
        pool: Pool::Foods,
    },
    RelationSpec {
        name: "plays",
        applies_to: &[EntityKind::Person],
        multi_valued: false,
        statement_entity: &[
            "{e} plays the {v}.",
            "{e} practices the {v} every morning.",
        ],
        statement_pronoun: &[
            "{p} plays the {v}.",
            "{p} practices the {v} every morning.",
        ],
        question: &["Which instrument does {e} play?"],
        pool: Pool::Instruments,
    },
    RelationSpec {
        name: "developed",
        applies_to: &[EntityKind::Person],
        multi_valued: true,
        statement_entity: &[
            "{e} developed the {v}.",
            "{e} built the first {v}.",
            "The {v} was invented by {e}.",
        ],
        statement_pronoun: &[
            "{p} developed the {v}.",
            "{p} also built the {v}.",
        ],
        question: &["Which device did {e} develop?"],
        pool: Pool::Technologies,
    },
    RelationSpec {
        name: "keeps_pet",
        applies_to: &[EntityKind::Person],
        multi_valued: false,
        statement_entity: &[
            "{e} keeps a {v} at home.",
            "{e} takes care of a {v}.",
        ],
        statement_pronoun: &[
            "{p} keeps a {v} at home.",
            "{p} takes care of a {v}.",
        ],
        question: &["What kind of animal does {e} keep?"],
        pool: Pool::Animals,
    },
];

/// Relations applicable to a given entity kind.
pub fn relations_for(kind: EntityKind) -> Vec<&'static RelationSpec> {
    RELATIONS.iter().filter(|r| r.applies_to.contains(&kind)).collect()
}

/// A grounded fact.
#[derive(Debug, Clone)]
pub struct Fact {
    /// The subject entity.
    pub entity: Entity,
    /// Index into [`RELATIONS`].
    pub relation: usize,
    /// The value (drawn from the relation's pool).
    pub value: String,
}

impl Fact {
    /// The relation spec.
    pub fn spec(&self) -> &'static RelationSpec {
        // sage-lint: allow(panic-reachability) - self.relation is a RELATIONS position by construction
        &RELATIONS[self.relation]
    }

    /// Draw a random fact for `entity` over `relation` (an index into
    /// [`RELATIONS`]).
    pub fn sample(entity: &Entity, relation: usize, rng: &mut StdRng) -> Self {
        // sage-lint: allow(panic-reachability) - relation ids are RELATIONS positions by construction
        let spec = &RELATIONS[relation];
        debug_assert!(spec.applies_to.contains(&entity.kind));
        let value = Lexicon::pick(rng, spec.pool.words()).to_string();
        Self { entity: entity.clone(), relation, value }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn relation_table_is_consistent() {
        for (i, r) in RELATIONS.iter().enumerate() {
            assert!(!r.statement_entity.is_empty(), "{}: no entity templates", r.name);
            assert!(!r.statement_pronoun.is_empty(), "{}: no pronoun templates", r.name);
            assert!(!r.question.is_empty(), "{}: no question templates", r.name);
            assert!(!r.applies_to.is_empty(), "{}: applies to nothing", r.name);
            for t in r.statement_entity {
                assert!(t.contains("{e}") || t.contains("{v}"), "{}: template {t}", r.name);
                assert!(t.contains("{v}"), "{}: statement must mention value: {t}", r.name);
            }
            for t in r.statement_pronoun {
                assert!(
                    t.contains("{p}") || t.contains("{pos}"),
                    "{}: pronoun template must use a pronoun: {t}",
                    r.name
                );
                assert!(!t.contains("{e}"), "{}: pronoun template must not name entity: {t}", r.name);
            }
            for q in r.question {
                assert!(q.contains("{e}"), "{}: question must name entity: {q}", r.name);
            }
            // Names unique.
            for other in &RELATIONS[i + 1..] {
                assert_ne!(r.name, other.name);
            }
        }
    }

    #[test]
    fn multi_valued_pool_is_large() {
        for r in RELATIONS.iter().filter(|r| r.multi_valued) {
            assert!(
                r.pool.words().len() >= 8,
                "{}: elimination questions need a large pool",
                r.name
            );
        }
    }

    #[test]
    fn relations_for_partition() {
        let person = relations_for(EntityKind::Person);
        let pet = relations_for(EntityKind::Pet);
        assert!(person.len() >= 5);
        assert!(pet.len() >= 3);
    }

    #[test]
    fn entities_have_pronouns() {
        let mut rng = StdRng::seed_from_u64(1);
        let p = Entity::person(&mut rng);
        assert!(["he", "she"].contains(&p.pronoun));
        let pet = Entity::pet(&mut rng);
        assert!(["he", "she", "it"].contains(&pet.pronoun));
        assert!(!pet.species.is_empty());
    }

    #[test]
    fn intro_names_entity() {
        let mut rng = StdRng::seed_from_u64(2);
        let e = Entity::person(&mut rng);
        let intro = e.intro_sentence(&mut rng);
        assert!(intro.contains(&e.name));
    }

    #[test]
    fn fact_value_from_pool() {
        let mut rng = StdRng::seed_from_u64(3);
        let e = Entity::pet(&mut rng);
        let eye = RELATIONS.iter().position(|r| r.name == "eye_color").unwrap();
        let f = Fact::sample(&e, eye, &mut rng);
        assert!(Pool::Colors.words().contains(&f.value.as_str()));
    }
}
