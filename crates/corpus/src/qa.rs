//! Question generation over ground-truth fact records.
//!
//! Four question kinds mirror the paper's datasets:
//! * [`QuestionKind::Factoid`] — open-ended, answer is a short phrase
//!   (NarrativeQA / QASPER / TriviaQA style);
//! * [`QuestionKind::MultipleChoice`] — QuALITY style, with distractor
//!   options drawn preferentially from values that *actually appear* in the
//!   document (so noisy chunks genuinely support wrong options);
//! * [`QuestionKind::Elimination`] — QuALITY-hard style "which was NOT…",
//!   solvable only by retrieving all the positive facts (Figure 9's missing
//!   retrieval case);
//! * [`QuestionKind::Unanswerable`] — QASPER style, no supporting evidence.

// sage-lint: allow-file(panic-reachability) - record slices are pre-checked for arity before head indexing; relation ids are RELATIONS positions

// sage-lint: allow-file(deterministic-iteration) - sets are dedup/membership guards; questions and options are emitted in fact-record and RNG order, never by iterating these sets

use crate::document::FactRecord;
use crate::lexicon::Lexicon;
use crate::render;
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::HashSet;

/// The flavour of a question (drives prompting and scoring).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuestionKind {
    /// Open-ended factoid; graded by token overlap (F1 / ROUGE / ...).
    Factoid,
    /// Four-option multiple choice; graded by accuracy.
    MultipleChoice,
    /// "Which was NOT ..." multiple choice needing broad evidence.
    Elimination,
    /// No supporting evidence exists; gold answer is "unanswerable".
    Unanswerable,
}

/// One question with gold answers and ground-truth evidence sentences.
#[derive(Debug, Clone)]
pub struct QaItem {
    /// The question text.
    pub question: String,
    /// Reference answers (first is primary).
    pub answers: Vec<String>,
    /// Options for multiple-choice kinds (empty otherwise).
    pub options: Vec<String>,
    /// Index of the correct option in `options` (0 when not MC).
    pub correct_option: usize,
    /// Question kind.
    pub kind: QuestionKind,
    /// Whether this belongs to the "hard" subset (QuALITY-hard analog).
    pub hard: bool,
    /// Sentences that must be in the retrieved context for the question to
    /// be answerable.
    pub evidence: Vec<String>,
}

impl QaItem {
    /// Whether this item is multiple choice.
    pub fn is_multiple_choice(&self) -> bool {
        matches!(self.kind, QuestionKind::MultipleChoice | QuestionKind::Elimination)
    }
}

/// Open-ended factoid question for one fact.
pub fn factoid_item(record: &FactRecord, rng: &mut StdRng) -> QaItem {
    let variant = rng.random_range(0..4);
    QaItem {
        question: render::question(&record.fact, variant),
        answers: vec![record.fact.value.clone()],
        options: Vec::new(),
        correct_option: 0,
        kind: QuestionKind::Factoid,
        hard: false,
        evidence: record.evidence(),
    }
}

/// Multiple-choice question for one fact, preferring in-document
/// same-relation values as distractor options.
pub fn multiple_choice_item(
    record: &FactRecord,
    doc_records: &[FactRecord],
    rng: &mut StdRng,
) -> QaItem {
    let gold = record.fact.value.clone();
    let mut distractors: Vec<String> = Vec::new();
    let mut seen: HashSet<String> = HashSet::new();
    seen.insert(gold.clone());
    // In-document values for the same relation (genuine noisy support).
    for r in doc_records {
        if r.fact.relation == record.fact.relation
            && r.fact.entity.name != record.fact.entity.name
            && seen.insert(r.fact.value.clone())
        {
            distractors.push(r.fact.value.clone());
        }
    }
    // Top up from the pool.
    let pool = record.fact.spec().pool.words();
    let mut guard = 0;
    while distractors.len() < 3 && guard < 200 {
        let v = Lexicon::pick(rng, pool).to_string();
        if seen.insert(v.clone()) {
            distractors.push(v);
        }
        guard += 1;
    }
    distractors.truncate(3);
    let mut options = distractors;
    let correct = rng.random_range(0..=options.len());
    options.insert(correct, gold.clone());

    let variant = rng.random_range(0..4);
    QaItem {
        question: render::question(&record.fact, variant),
        answers: vec![gold],
        options,
        correct_option: correct,
        kind: QuestionKind::MultipleChoice,
        hard: false,
        evidence: record.evidence(),
    }
}

/// Elimination ("hard") question over an entity's multi-valued facts:
/// options are three values the entity *does* hold plus one it does not;
/// the correct answer is the one it does not.
///
/// Returns `None` when fewer than three multi-valued records exist.
pub fn elimination_item(multi_records: &[FactRecord], rng: &mut StdRng) -> Option<QaItem> {
    if multi_records.len() < 3 {
        return None;
    }
    let spec = multi_records[0].fact.spec();
    let entity = &multi_records[0].fact.entity;
    debug_assert!(multi_records.iter().all(|r| r.fact.entity.name == entity.name));

    let held: HashSet<&str> = multi_records.iter().map(|r| r.fact.value.as_str()).collect();
    let pool = spec.pool.words();
    let not_held: Vec<&&str> = pool.iter().filter(|v| !held.contains(**v)).collect();
    if not_held.is_empty() {
        return None;
    }
    let gold = not_held[rng.random_range(0..not_held.len())].to_string();

    // Pick three held values as the wrong options.
    let mut held_values: Vec<String> =
        multi_records.iter().map(|r| r.fact.value.clone()).collect();
    for i in 0..3 {
        let j = rng.random_range(i..held_values.len());
        held_values.swap(i, j);
    }
    let mut options: Vec<String> = held_values[..3].to_vec();
    let correct = rng.random_range(0..=options.len());
    options.insert(correct, gold.clone());

    // Evidence: *all* positive facts (the reader must see every held value
    // to eliminate the wrong options).
    let mut evidence = Vec::new();
    let mut seen = HashSet::new();
    for r in multi_records {
        for s in r.evidence() {
            if seen.insert(s.clone()) {
                evidence.push(s);
            }
        }
    }

    Some(QaItem {
        question: format!("Which device was not developed by {}?", entity.name),
        answers: vec![gold],
        options,
        correct_option: correct,
        kind: QuestionKind::Elimination,
        hard: true,
        evidence,
    })
}

/// Unanswerable question: asks about a relation the entity has no fact for.
/// Returns `None` when the entity's kind has no unused relation.
pub fn unanswerable_item(doc_records: &[FactRecord], rng: &mut StdRng) -> Option<QaItem> {
    use crate::facts::{relations_for, Fact, RELATIONS};
    // Pick an entity with at least one applicable-but-unused single-valued
    // relation.
    let mut entities: Vec<&FactRecord> = doc_records.iter().collect();
    if entities.is_empty() {
        return None;
    }
    // Shuffle candidate records.
    for i in 0..entities.len() {
        let j = rng.random_range(i..entities.len());
        entities.swap(i, j);
    }
    for record in entities {
        let e = &record.fact.entity;
        let used: HashSet<usize> = doc_records
            .iter()
            .filter(|r| r.fact.entity.name == e.name)
            .map(|r| r.fact.relation)
            .collect();
        let unused: Vec<usize> = relations_for(e.kind)
            .iter()
            .filter(|r| !r.multi_valued)
            .map(|r| RELATIONS.iter().position(|x| std::ptr::eq(x, *r)).unwrap())
            .filter(|idx| !used.contains(idx))
            .collect();
        if let Some(&rel) = unused.first() {
            let fake = Fact { entity: e.clone(), relation: rel, value: String::new() };
            let variant = rng.random_range(0..4);
            return Some(QaItem {
                question: render::question(&fake, variant),
                answers: vec!["unanswerable".to_string()],
                options: Vec::new(),
                correct_option: 0,
                kind: QuestionKind::Unanswerable,
                hard: false,
                evidence: Vec::new(),
            });
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::document::{generate_document, DocSpec};
    use rand::SeedableRng;

    fn gen() -> (crate::document::GeneratedDoc, StdRng) {
        let mut rng = StdRng::seed_from_u64(11);
        let g = generate_document(0, &DocSpec::default(), &mut rng);
        (g, rng)
    }

    #[test]
    fn factoid_question_and_evidence() {
        let (g, mut rng) = gen();
        let item = factoid_item(&g.records[0], &mut rng);
        assert_eq!(item.kind, QuestionKind::Factoid);
        assert!(item.question.contains(&g.records[0].fact.entity.name));
        assert_eq!(item.answers[0], g.records[0].fact.value);
        assert!(!item.evidence.is_empty());
        // Evidence sentences really exist in the document.
        let text = g.document.text();
        for e in &item.evidence {
            assert!(text.contains(e), "evidence missing from doc: {e}");
        }
    }

    #[test]
    fn multiple_choice_has_four_distinct_options() {
        let (g, mut rng) = gen();
        for record in &g.records {
            if record.fact.spec().multi_valued {
                continue;
            }
            let item = multiple_choice_item(record, &g.records, &mut rng);
            assert_eq!(item.options.len(), 4, "{:?}", item.options);
            let set: HashSet<&String> = item.options.iter().collect();
            assert_eq!(set.len(), 4, "duplicate options: {:?}", item.options);
            assert_eq!(item.options[item.correct_option], item.answers[0]);
        }
    }

    #[test]
    fn elimination_correct_option_is_not_held() {
        let (g, mut rng) = gen();
        let multi: Vec<FactRecord> =
            g.records.iter().filter(|r| r.fact.spec().multi_valued).cloned().collect();
        let item = elimination_item(&multi, &mut rng).expect("elimination item");
        assert!(item.hard);
        assert_eq!(item.kind, QuestionKind::Elimination);
        let held: HashSet<&str> = multi.iter().map(|r| r.fact.value.as_str()).collect();
        assert!(!held.contains(item.answers[0].as_str()), "gold must not be held");
        for (i, opt) in item.options.iter().enumerate() {
            if i != item.correct_option {
                assert!(held.contains(opt.as_str()), "wrong option must be held: {opt}");
            }
        }
        // Needs broad evidence.
        assert!(item.evidence.len() >= 3);
    }

    #[test]
    fn elimination_requires_enough_records() {
        let (g, mut rng) = gen();
        let multi: Vec<FactRecord> =
            g.records.iter().filter(|r| r.fact.spec().multi_valued).take(2).cloned().collect();
        assert!(elimination_item(&multi, &mut rng).is_none());
    }

    #[test]
    fn unanswerable_has_no_evidence() {
        let (g, mut rng) = gen();
        let item = unanswerable_item(&g.records, &mut rng).expect("unanswerable");
        assert_eq!(item.kind, QuestionKind::Unanswerable);
        assert!(item.evidence.is_empty());
        assert_eq!(item.answers[0], "unanswerable");
    }

    #[test]
    fn unanswerable_question_not_supported_by_doc() {
        // The asked (entity, relation) must have no record.
        let (g, mut rng) = gen();
        let item = unanswerable_item(&g.records, &mut rng).unwrap();
        for r in &g.records {
            let q = &item.question;
            if q.contains(&r.fact.entity.name) {
                // Same entity: the question must be about a different
                // relation, i.e. no question template of r's relation
                // matches.
                for variant in 0..r.fact.spec().question.len() {
                    assert_ne!(q, &render::question(&r.fact, variant));
                }
            }
        }
    }
}
