//! Document assembly: entities + facts → paragraphs → documents.
//!
//! Layout invariants the rest of the system depends on:
//!
//! * paragraphs are separated by `'\n'` in [`Document::text`] (the paper's
//!   §III-A split);
//! * each entity's paragraph opens with an intro sentence naming the entity
//!   (the coreference antecedent), followed by fact sentences that use
//!   pronouns with probability `pronoun_prob`;
//! * within one document, two entities never share the same value for the
//!   same relation, so every factoid question has a unique supported
//!   answer while *different* values for the same relation act as
//!   conflicting distractors (the paper's noisy chunks);
//! * every fact sentence is recorded in a [`FactRecord`] with its exact
//!   evidence, so experiments can check retrieval against ground truth.

// sage-lint: allow-file(panic-reachability) - relation and entity indices are RELATIONS/entities positions computed in the same scope and bounded by construction

// sage-lint: allow-file(deterministic-iteration) - sets/maps are uniqueness and membership guards during assembly; document text order comes from the ordered fact records, never from container iteration

use crate::facts::{relations_for, Entity, EntityKind, Fact, RELATIONS};
use crate::lexicon::Lexicon;
use crate::qa::QaItem;
use crate::render;
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::{HashMap, HashSet};

/// One generated document.
#[derive(Debug, Clone)]
pub struct Document {
    /// Document id within its dataset.
    pub id: usize,
    /// Title (used by the Title+Abstract baseline).
    pub title: String,
    /// Abstract — first filler-free summary sentences (Title+Abstract
    /// baseline context).
    pub abstract_text: String,
    /// Paragraph texts, in order.
    pub paragraphs: Vec<String>,
}

impl Document {
    /// Full text with paragraphs joined by `'\n'`.
    pub fn text(&self) -> String {
        self.paragraphs.join("\n")
    }
}

/// Ground-truth record for one rendered fact sentence.
#[derive(Debug, Clone)]
pub struct FactRecord {
    /// The underlying fact.
    pub fact: Fact,
    /// The rendered sentence carrying the fact.
    pub sentence: String,
    /// The intro sentence of the fact's paragraph (the antecedent).
    pub intro: String,
    /// Whether the sentence uses the pronoun form (needs the intro to be
    /// interpretable).
    pub pronoun_form: bool,
    /// Paragraph index within the document.
    pub paragraph: usize,
}

impl FactRecord {
    /// The sentences a retriever must surface for this fact to be usable:
    /// the fact sentence, plus the intro when the fact is pronoun-form.
    pub fn evidence(&self) -> Vec<String> {
        if self.pronoun_form {
            vec![self.intro.clone(), self.sentence.clone()]
        } else {
            vec![self.sentence.clone()]
        }
    }
}

/// A generated document plus its ground truth.
#[derive(Debug, Clone)]
pub struct GeneratedDoc {
    /// The document.
    pub document: Document,
    /// All fact records, in paragraph order.
    pub records: Vec<FactRecord>,
}

/// Generation parameters for one document.
#[derive(Debug, Clone)]
pub struct DocSpec {
    /// Number of character entities (persons + pets).
    pub num_entities: usize,
    /// Single-valued facts per entity.
    pub facts_per_entity: usize,
    /// Number of values for the one multi-valued ("developed") holder;
    /// 0 disables elimination material.
    pub multi_fact_count: usize,
    /// Filler paragraphs interleaved between entity paragraphs.
    pub filler_paragraphs: usize,
    /// Probability that a fact sentence uses the pronoun form.
    pub pronoun_prob: f64,
}

impl Default for DocSpec {
    fn default() -> Self {
        Self {
            num_entities: 6,
            facts_per_entity: 3,
            multi_fact_count: 5,
            filler_paragraphs: 4,
            pronoun_prob: 0.6,
        }
    }
}

/// Generate one document with ground truth.
pub fn generate_document(id: usize, spec: &DocSpec, rng: &mut StdRng) -> GeneratedDoc {
    assert!(spec.num_entities > 0, "need at least one entity");
    // 1. Entities: roughly 2/3 persons, 1/3 pets, at least one person when
    //    elimination material is requested.
    let mut entities: Vec<Entity> = Vec::with_capacity(spec.num_entities);
    for i in 0..spec.num_entities {
        if i % 3 == 2 {
            entities.push(Entity::pet(rng));
        } else {
            entities.push(Entity::person(rng));
        }
    }
    // Distinct names within a document.
    let mut seen_names = HashSet::new();
    for e in &mut entities {
        let mut guard = 0;
        while !seen_names.insert(e.name.clone()) {
            e.name = match e.kind {
                EntityKind::Person => Lexicon::person_name(rng),
                EntityKind::Pet => Lexicon::pet_name(rng),
            };
            guard += 1;
            assert!(guard < 100, "cannot generate distinct names");
        }
    }

    // 2. Facts. `used_values[relation]` enforces distinct values per
    //    relation within the document.
    let mut used_values: HashMap<usize, HashSet<String>> = HashMap::new();
    let mut entity_facts: Vec<Vec<Fact>> = Vec::with_capacity(entities.len());
    for e in &entities {
        let rels = relations_for(e.kind);
        let single: Vec<usize> = rels
            .iter()
            .filter(|r| !r.multi_valued)
            .map(|r| RELATIONS.iter().position(|x| std::ptr::eq(x, *r)).unwrap())
            .collect();
        let n = spec.facts_per_entity.min(single.len());
        let mut chosen: Vec<usize> = single.clone();
        // Partial shuffle to pick n distinct relations.
        for i in 0..n {
            let j = rng.random_range(i..chosen.len());
            chosen.swap(i, j);
        }
        let mut facts = Vec::with_capacity(n);
        for &rel in &chosen[..n] {
            let used = used_values.entry(rel).or_default();
            let mut fact = Fact::sample(e, rel, rng);
            let mut guard = 0;
            while used.contains(&fact.value) {
                fact = Fact::sample(e, rel, rng);
                guard += 1;
                if guard > 100 {
                    break; // pool exhausted; accept a duplicate rather than hang
                }
            }
            used.insert(fact.value.clone());
            facts.push(fact);
        }
        entity_facts.push(facts);
    }

    // 3. Multi-valued facts for one person (elimination material).
    let mut multi_facts: Vec<Fact> = Vec::new();
    if spec.multi_fact_count > 0 {
        if let Some(holder_idx) = entities.iter().position(|e| e.kind == EntityKind::Person) {
            let rel = RELATIONS.iter().position(|r| r.multi_valued).expect("multi relation");
            let pool = RELATIONS[rel].pool.words();
            let n = spec.multi_fact_count.min(pool.len().saturating_sub(2));
            let values = Lexicon::pick_distinct(rng, pool, n);
            for v in values {
                multi_facts.push(Fact {
                    entity: entities[holder_idx].clone(),
                    relation: rel,
                    value: v.to_string(),
                });
            }
        }
    }

    // 4. Assemble paragraphs: per entity, intro + fact sentences; the
    //    multi-valued holder's development facts form their own paragraph.
    let mut paragraphs: Vec<String> = Vec::new();
    let mut records: Vec<FactRecord> = Vec::new();
    let mut filler_left = spec.filler_paragraphs;

    let emit_filler = |paragraphs: &mut Vec<String>, rng: &mut StdRng| {
        let n = rng.random_range(2..5);
        let text: Vec<String> = (0..n).map(|_| Lexicon::filler_sentence(rng)).collect();
        paragraphs.push(text.join(" "));
    };

    for (ei, e) in entities.iter().enumerate() {
        // Interleave filler to separate entity paragraphs.
        if filler_left > 0 && rng.random_bool(0.5) {
            emit_filler(&mut paragraphs, rng);
            filler_left -= 1;
        }
        let intro = e.intro_sentence(rng);
        let mut sentences = vec![intro.clone()];
        let paragraph_idx = paragraphs.len();
        for fact in &entity_facts[ei] {
            let pronoun = rng.random_bool(spec.pronoun_prob);
            let variant = rng.random_range(0..4);
            let sentence = render::statement(fact, pronoun, variant);
            sentences.push(sentence.clone());
            records.push(FactRecord {
                fact: fact.clone(),
                sentence,
                intro: intro.clone(),
                pronoun_form: pronoun,
                paragraph: paragraph_idx,
            });
        }
        paragraphs.push(sentences.join(" "));

        // Development paragraph right after its holder's paragraph.
        if !multi_facts.is_empty() && multi_facts[0].entity.name == e.name {
            let intro2 = format!("{} spent years at the workbench.", e.name);
            let mut dev_sentences = vec![intro2.clone()];
            let dev_paragraph = paragraphs.len();
            for (i, fact) in multi_facts.iter().enumerate() {
                // First development fact names the entity; later ones may
                // use pronouns — mirrors how real prose lists achievements.
                let pronoun = i > 0 && rng.random_bool(spec.pronoun_prob);
                let variant = rng.random_range(0..4);
                let sentence = render::statement(fact, pronoun, variant);
                dev_sentences.push(sentence.clone());
                records.push(FactRecord {
                    fact: fact.clone(),
                    sentence,
                    intro: intro2.clone(),
                    pronoun_form: pronoun,
                    paragraph: dev_paragraph,
                });
            }
            paragraphs.push(dev_sentences.join(" "));
        }
    }
    while filler_left > 0 {
        emit_filler(&mut paragraphs, rng);
        filler_left -= 1;
    }

    // 5. Title + abstract from the first entity.
    let lead = &entities[0];
    let title = format!("The Account of {}", lead.name);
    let abstract_text = format!(
        "This account concerns {} and the people of the region. {}",
        lead.name,
        Lexicon::filler_sentence(rng)
    );

    GeneratedDoc { document: Document { id, title, abstract_text, paragraphs }, records }
}

/// A question bound to its document.
#[derive(Debug, Clone)]
pub struct QaTask {
    /// Index into [`Dataset::documents`].
    pub doc: usize,
    /// The question item.
    pub item: QaItem,
}

/// A complete generated dataset.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Dataset name ("quality", "qasper", ...).
    pub name: &'static str,
    /// Documents (the corpus).
    pub documents: Vec<Document>,
    /// Question tasks over those documents.
    pub tasks: Vec<QaTask>,
}

impl Dataset {
    /// Total paragraphs across all documents.
    pub fn num_paragraphs(&self) -> usize {
        self.documents.iter().map(|d| d.paragraphs.len()).sum()
    }

    /// Total LLM-token estimate for the whole corpus.
    pub fn corpus_tokens(&self) -> usize {
        self.documents.iter().map(|d| sage_text::count_tokens(&d.text())).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn gen(seed: u64) -> GeneratedDoc {
        let mut rng = StdRng::seed_from_u64(seed);
        generate_document(0, &DocSpec::default(), &mut rng)
    }

    #[test]
    fn document_structure() {
        let g = gen(1);
        assert!(!g.document.paragraphs.is_empty());
        assert!(!g.records.is_empty());
        assert!(g.document.text().contains('\n'));
        assert!(!g.document.title.is_empty());
    }

    #[test]
    fn records_point_at_real_paragraphs() {
        let g = gen(2);
        for r in &g.records {
            let para = &g.document.paragraphs[r.paragraph];
            assert!(para.contains(&r.sentence), "sentence not in its paragraph: {}", r.sentence);
            assert!(para.contains(&r.intro), "intro not in paragraph: {}", r.intro);
        }
    }

    #[test]
    fn pronoun_facts_have_two_evidence_sentences() {
        let g = gen(3);
        let pronoun_record = g.records.iter().find(|r| r.pronoun_form);
        let entity_record = g.records.iter().find(|r| !r.pronoun_form);
        if let Some(r) = pronoun_record {
            assert_eq!(r.evidence().len(), 2);
            assert!(!r.sentence.contains(&r.fact.entity.name));
        }
        if let Some(r) = entity_record {
            assert_eq!(r.evidence().len(), 1);
        }
    }

    #[test]
    fn values_distinct_per_relation() {
        let g = gen(4);
        let mut seen: HashMap<usize, HashSet<&str>> = HashMap::new();
        for r in &g.records {
            if !r.fact.spec().multi_valued {
                let set = seen.entry(r.fact.relation).or_default();
                assert!(
                    set.insert(r.fact.value.as_str()),
                    "duplicate value {} for relation {}",
                    r.fact.value,
                    r.fact.spec().name
                );
            }
        }
    }

    #[test]
    fn multi_valued_facts_present() {
        let g = gen(5);
        let dev: Vec<_> = g.records.iter().filter(|r| r.fact.spec().multi_valued).collect();
        assert_eq!(dev.len(), DocSpec::default().multi_fact_count);
        // All by the same holder, all distinct values.
        let holder = &dev[0].fact.entity.name;
        let values: HashSet<&str> = dev.iter().map(|r| r.fact.value.as_str()).collect();
        assert!(dev.iter().all(|r| &r.fact.entity.name == holder));
        assert_eq!(values.len(), dev.len());
    }

    #[test]
    fn generation_is_deterministic() {
        let a = gen(6);
        let b = gen(6);
        assert_eq!(a.document.text(), b.document.text());
        assert_eq!(a.records.len(), b.records.len());
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(gen(7).document.text(), gen(8).document.text());
    }

    #[test]
    fn corpus_token_estimate_positive() {
        let g = gen(9);
        let ds = Dataset { name: "t", documents: vec![g.document], tasks: vec![] };
        assert!(ds.corpus_tokens() > 100);
        assert_eq!(ds.num_paragraphs(), ds.documents[0].paragraphs.len());
    }
}
