//! Dataset generators — one module per paper dataset analog.
//!
//! | Module | Paper dataset | Shape |
//! |---|---|---|
//! | [`quality`] | QuALITY | long stories, multiple-choice + hard elimination subset |
//! | [`qasper`] | QASPER | "papers" with title/abstract, factoid + unanswerable |
//! | [`narrativeqa`] | NarrativeQA | long narratives, free-form answers |
//! | [`triviaqa`] | TriviaQA | large corpus of short evidence docs |
//! | [`wiki`] | Wikipedia dump | paragraph-structured docs for Algorithm 1 |

pub mod narrativeqa;
pub mod qasper;
pub mod quality;
pub mod triviaqa;
pub mod wiki;

/// Shared size knobs for dataset generation.
#[derive(Debug, Clone, Copy)]
pub struct SizeConfig {
    /// Number of documents.
    pub num_docs: usize,
    /// Questions generated per document (best effort; some kinds may yield
    /// fewer when a document lacks material).
    pub questions_per_doc: usize,
    /// Master seed.
    pub seed: u64,
}

impl Default for SizeConfig {
    fn default() -> Self {
        Self { num_docs: 20, questions_per_doc: 4, seed: 0x5A6E }
    }
}

/// A small preset for fast unit tests.
pub fn tiny() -> SizeConfig {
    SizeConfig { num_docs: 4, questions_per_doc: 2, seed: 7 }
}
