//! NarrativeQA analog: long narratives (many characters, heavy filler,
//! frequent pronoun coreference) with free-form factoid questions graded by
//! ROUGE / BLEU / METEOR. Each question carries two reference answers, like
//! NarrativeQA's multiple human references.

use super::SizeConfig;
use crate::document::{generate_document, Dataset, DocSpec, QaTask};
use crate::qa::factoid_item;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Document shape: the longest documents of any analog (books / scripts).
fn doc_spec() -> DocSpec {
    DocSpec {
        num_entities: 26,
        facts_per_entity: 3,
        multi_fact_count: 5,
        filler_paragraphs: 26,
        pronoun_prob: 0.65,
    }
}

/// Generate the NarrativeQA-analog dataset.
pub fn generate(cfg: SizeConfig) -> Dataset {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut documents = Vec::with_capacity(cfg.num_docs);
    let mut tasks = Vec::new();
    for doc_id in 0..cfg.num_docs {
        let generated = generate_document(doc_id, &doc_spec(), &mut rng);
        let singles: Vec<_> =
            generated.records.iter().filter(|r| !r.fact.spec().multi_valued).collect();
        let mut order: Vec<usize> = (0..singles.len()).collect();
        for i in 0..order.len() {
            let j = rng.random_range(i..order.len());
            order.swap(i, j);
        }
        for &idx in order.iter().take(cfg.questions_per_doc) {
            // sage-lint: allow(panic-reachability) - idx is rng.random_range bounded by singles.len()
            let mut item = factoid_item(singles[idx], &mut rng);
            // Second human-style reference phrasing.
            // sage-lint: allow(panic-reachability) - answers holds the gold answer pushed by factoid_item
            item.answers.push(format!("the {}", item.answers[0]));
            tasks.push(QaTask { doc: doc_id, item });
        }
        documents.push(generated.document);
    }
    Dataset { name: "narrativeqa", documents, tasks }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::tiny;
    use crate::qa::QuestionKind;

    #[test]
    fn questions_are_free_form_with_two_references() {
        let ds = generate(tiny());
        assert!(!ds.tasks.is_empty());
        for t in &ds.tasks {
            assert_eq!(t.item.kind, QuestionKind::Factoid);
            assert!(t.item.options.is_empty());
            assert_eq!(t.item.answers.len(), 2);
            assert!(t.item.answers[1].starts_with("the "));
        }
    }

    #[test]
    fn documents_are_longest_analog() {
        let nq = generate(tiny());
        let qa = crate::datasets::qasper::generate(tiny());
        let nq_avg: usize =
            nq.documents.iter().map(|d| d.text().len()).sum::<usize>() / nq.documents.len();
        let qa_avg: usize =
            qa.documents.iter().map(|d| d.text().len()).sum::<usize>() / qa.documents.len();
        assert!(nq_avg > qa_avg, "narrativeqa {nq_avg} should exceed qasper {qa_avg}");
    }

    #[test]
    fn deterministic() {
        let a = generate(tiny());
        let b = generate(tiny());
        assert_eq!(a.tasks[0].item.question, b.tasks[0].item.question);
    }
}
