//! QASPER analog: "research papers" (title + abstract + body) with
//! information-seeking factoid questions and an unanswerable share, graded
//! by token-F1 ("F1-Match" in the paper).

use super::SizeConfig;
use crate::document::{generate_document, Dataset, DocSpec, QaTask};
use crate::lexicon::{Lexicon, FIELDS};
use crate::qa::{factoid_item, unanswerable_item};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Document shape: paper-sized, moderate entities, some filler (related
/// work / method boilerplate).
fn doc_spec() -> DocSpec {
    DocSpec {
        num_entities: 12,
        facts_per_entity: 3,
        multi_fact_count: 4,
        filler_paragraphs: 10,
        pronoun_prob: 0.55,
    }
}

/// Fraction of questions that are unanswerable (QASPER has a substantial
/// unanswerable share).
const UNANSWERABLE_SHARE: f64 = 0.2;

/// Generate the QASPER-analog dataset.
pub fn generate(cfg: SizeConfig) -> Dataset {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut documents = Vec::with_capacity(cfg.num_docs);
    let mut tasks = Vec::new();
    for doc_id in 0..cfg.num_docs {
        let mut generated = generate_document(doc_id, &doc_spec(), &mut rng);
        // Paper-style title/abstract.
        let field = Lexicon::pick(&mut rng, FIELDS);
        let lead = generated
            .records
            .first()
            .map(|r| r.fact.entity.name.clone())
            .unwrap_or_else(|| "the authors".to_string());
        generated.document.title = format!("A Study of {field} Methods");
        generated.document.abstract_text = format!(
            "We present a study of {field}. The work follows {lead} and colleagues. {}",
            Lexicon::filler_sentence(&mut rng)
        );

        let singles: Vec<_> =
            generated.records.iter().filter(|r| !r.fact.spec().multi_valued).collect();
        let mut order: Vec<usize> = (0..singles.len()).collect();
        for i in 0..order.len() {
            let j = rng.random_range(i..order.len());
            order.swap(i, j);
        }
        let mut picked = 0usize;
        for &idx in &order {
            if picked >= cfg.questions_per_doc {
                break;
            }
            if rng.random_bool(UNANSWERABLE_SHARE) {
                if let Some(item) = unanswerable_item(&generated.records, &mut rng) {
                    tasks.push(QaTask { doc: doc_id, item });
                    picked += 1;
                    continue;
                }
            }
            // sage-lint: allow(panic-reachability) - idx is rng.random_range bounded by singles.len()
            let item = factoid_item(singles[idx], &mut rng);
            tasks.push(QaTask { doc: doc_id, item });
            picked += 1;
        }
        documents.push(generated.document);
    }
    Dataset { name: "qasper", documents, tasks }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::tiny;
    use crate::qa::QuestionKind;

    #[test]
    fn mixes_factoid_and_unanswerable() {
        let cfg = SizeConfig { num_docs: 10, questions_per_doc: 5, seed: 9 };
        let ds = generate(cfg);
        let factoid = ds.tasks.iter().filter(|t| t.item.kind == QuestionKind::Factoid).count();
        let unans =
            ds.tasks.iter().filter(|t| t.item.kind == QuestionKind::Unanswerable).count();
        assert!(factoid > 0);
        assert!(unans > 0, "expected some unanswerable questions");
        assert!(factoid > unans, "factoid should dominate");
    }

    #[test]
    fn titles_look_like_papers() {
        let ds = generate(tiny());
        for d in &ds.documents {
            assert!(d.title.starts_with("A Study of"), "{}", d.title);
            assert!(!d.abstract_text.is_empty());
        }
    }

    #[test]
    fn factoid_evidence_present_unanswerable_absent() {
        let ds = generate(tiny());
        for t in &ds.tasks {
            match t.item.kind {
                QuestionKind::Factoid => assert!(!t.item.evidence.is_empty()),
                QuestionKind::Unanswerable => assert!(t.item.evidence.is_empty()),
                _ => panic!("unexpected kind in qasper"),
            }
        }
    }

    #[test]
    fn deterministic() {
        let a = generate(tiny());
        let b = generate(tiny());
        assert_eq!(a.tasks.len(), b.tasks.len());
        assert_eq!(a.documents[1].title, b.documents[1].title);
    }
}
