//! QuALITY analog: long multi-entity stories with four-option
//! multiple-choice questions, including a *hard* subset of elimination
//! questions that require broad evidence (the paper reports test-set and
//! hard-set accuracy separately in Table VII).

use super::SizeConfig;
use crate::document::{generate_document, Dataset, DocSpec, QaTask};
use crate::qa::{elimination_item, multiple_choice_item};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Document shape: long story, many entities, generous filler and
/// elimination material.
fn doc_spec() -> DocSpec {
    DocSpec {
        num_entities: 18,
        facts_per_entity: 3,
        multi_fact_count: 6,
        filler_paragraphs: 16,
        pronoun_prob: 0.6,
    }
}

/// Generate the QuALITY-analog dataset.
pub fn generate(cfg: SizeConfig) -> Dataset {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut documents = Vec::with_capacity(cfg.num_docs);
    let mut tasks = Vec::new();
    for doc_id in 0..cfg.num_docs {
        let generated = generate_document(doc_id, &doc_spec(), &mut rng);
        // Normal multiple-choice questions over single-valued facts.
        let singles: Vec<_> =
            generated.records.iter().filter(|r| !r.fact.spec().multi_valued).collect();
        let mut picked = 0usize;
        let mut order: Vec<usize> = (0..singles.len()).collect();
        for i in 0..order.len() {
            let j = rng.random_range(i..order.len());
            order.swap(i, j);
        }
        for &idx in &order {
            if picked >= cfg.questions_per_doc {
                break;
            }
            // sage-lint: allow(panic-reachability) - idx is rng.random_range bounded by singles.len()
            let item = multiple_choice_item(singles[idx], &generated.records, &mut rng);
            tasks.push(QaTask { doc: doc_id, item });
            picked += 1;
        }
        // One hard elimination question per document.
        let multi: Vec<_> =
            generated.records.iter().filter(|r| r.fact.spec().multi_valued).cloned().collect();
        if let Some(item) = elimination_item(&multi, &mut rng) {
            tasks.push(QaTask { doc: doc_id, item });
        }
        documents.push(generated.document);
    }
    Dataset { name: "quality", documents, tasks }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::tiny;
    use crate::qa::QuestionKind;

    #[test]
    fn has_normal_and_hard_questions() {
        let ds = generate(tiny());
        assert_eq!(ds.documents.len(), 4);
        let normal = ds.tasks.iter().filter(|t| !t.item.hard).count();
        let hard = ds.tasks.iter().filter(|t| t.item.hard).count();
        assert!(normal >= 4, "normal: {normal}");
        assert_eq!(hard, 4, "one elimination question per doc");
    }

    #[test]
    fn all_questions_are_multiple_choice() {
        let ds = generate(tiny());
        for t in &ds.tasks {
            assert!(t.item.is_multiple_choice());
            assert_eq!(t.item.options.len(), 4);
            assert!(matches!(
                t.item.kind,
                QuestionKind::MultipleChoice | QuestionKind::Elimination
            ));
        }
    }

    #[test]
    fn evidence_lives_in_the_right_document() {
        let ds = generate(tiny());
        for t in &ds.tasks {
            let text = ds.documents[t.doc].text();
            for e in &t.item.evidence {
                assert!(text.contains(e), "doc {} missing evidence {e}", t.doc);
            }
        }
    }

    #[test]
    fn deterministic() {
        let a = generate(tiny());
        let b = generate(tiny());
        assert_eq!(a.documents[0].text(), b.documents[0].text());
        assert_eq!(a.tasks.len(), b.tasks.len());
        assert_eq!(a.tasks[0].item.question, b.tasks[0].item.question);
    }

    #[test]
    fn documents_are_long() {
        let ds = generate(tiny());
        for d in &ds.documents {
            assert!(
                sage_text::count_tokens(&d.text()) > 200,
                "QuALITY-analog docs should be long"
            );
        }
    }
}
