//! TriviaQA analog: a large corpus of short evidence documents with
//! factoid questions — the scalability workload of Tables VIII/IX. The
//! corpus is one shared retrieval pool (all documents indexed together),
//! unlike the per-document datasets.

use super::SizeConfig;
use crate::document::{generate_document, Dataset, DocSpec, QaTask};
use crate::qa::factoid_item;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Document shape: short evidence snippets.
fn doc_spec() -> DocSpec {
    DocSpec {
        num_entities: 2,
        facts_per_entity: 3,
        multi_fact_count: 0,
        filler_paragraphs: 1,
        pronoun_prob: 0.5,
    }
}

/// Generate the TriviaQA-analog dataset. With `SizeConfig::num_docs` in the
/// hundreds this produces a corpus of tens of thousands of tokens, enough
/// to exercise index-scale behaviour on a laptop.
pub fn generate(cfg: SizeConfig) -> Dataset {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut documents = Vec::with_capacity(cfg.num_docs);
    let mut tasks = Vec::new();
    for doc_id in 0..cfg.num_docs {
        let generated = generate_document(doc_id, &doc_spec(), &mut rng);
        let singles: Vec<_> =
            generated.records.iter().filter(|r| !r.fact.spec().multi_valued).collect();
        let mut order: Vec<usize> = (0..singles.len()).collect();
        for i in 0..order.len() {
            let j = rng.random_range(i..order.len());
            order.swap(i, j);
        }
        for &idx in order.iter().take(cfg.questions_per_doc) {
            // sage-lint: allow(panic-reachability) - idx is rng.random_range bounded by singles.len()
            let item = factoid_item(singles[idx], &mut rng);
            tasks.push(QaTask { doc: doc_id, item });
        }
        documents.push(generated.document);
    }
    Dataset { name: "triviaqa", documents, tasks }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_to_many_documents() {
        let cfg = SizeConfig { num_docs: 100, questions_per_doc: 1, seed: 3 };
        let ds = generate(cfg);
        assert_eq!(ds.documents.len(), 100);
        assert_eq!(ds.tasks.len(), 100);
        assert!(ds.corpus_tokens() > 5_000);
    }

    #[test]
    fn documents_are_short() {
        let ds = generate(SizeConfig { num_docs: 10, questions_per_doc: 1, seed: 4 });
        for d in &ds.documents {
            assert!(
                sage_text::count_tokens(&d.text()) < 400,
                "trivia docs should be short evidence snippets"
            );
        }
    }

    #[test]
    fn generation_speed_is_linear_ish() {
        // Smoke guard: generating 200 docs must be fast (< a few seconds);
        // the scalability bench generates thousands.
        let start = std::time::Instant::now();
        let ds = generate(SizeConfig { num_docs: 200, questions_per_doc: 1, seed: 5 });
        assert_eq!(ds.documents.len(), 200);
        assert!(start.elapsed().as_secs() < 5);
    }
}
