//! Wikipedia analog for Algorithm 1: documents whose *paragraph structure*
//! is the training signal. "Typically, sentences that are closely related
//! appear within the same paragraph consecutively, whereas unrelated
//! sentences are found in separate paragraphs" (paper §IV-C) — exactly the
//! property our generator guarantees by construction.

use super::SizeConfig;
use crate::document::{generate_document, Dataset, DocSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Document shape: encyclopedia-like, varied entities, some filler topics.
fn doc_spec() -> DocSpec {
    DocSpec {
        num_entities: 6,
        facts_per_entity: 4,
        multi_fact_count: 4,
        filler_paragraphs: 5,
        pronoun_prob: 0.6,
    }
}

/// Generate the Wikipedia-analog corpus (documents only; questions are not
/// needed for segmentation training).
pub fn generate(cfg: SizeConfig) -> Dataset {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let documents = (0..cfg.num_docs)
        .map(|doc_id| generate_document(doc_id, &doc_spec(), &mut rng).document)
        .collect();
    Dataset { name: "wiki", documents, tasks: Vec::new() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::tiny;
    use crate::training::segmentation_pairs;

    #[test]
    fn yields_balanced_segmentation_pairs() {
        let ds = generate(tiny());
        let pairs = segmentation_pairs(&ds.documents, 0, 1);
        let pos = pairs.iter().filter(|p| p.2 == 1.0).count();
        let neg = pairs.iter().filter(|p| p.2 == 0.0).count();
        assert!(pos >= 20, "positives: {pos}");
        assert!(neg >= 10, "negatives: {neg}");
    }

    #[test]
    fn has_no_tasks() {
        let ds = generate(tiny());
        assert!(ds.tasks.is_empty());
        assert_eq!(ds.documents.len(), 4);
    }

    #[test]
    fn paragraphs_have_multiple_sentences() {
        let ds = generate(tiny());
        let multi = ds
            .documents
            .iter()
            .flat_map(|d| &d.paragraphs)
            .filter(|p| sage_text::split_sentences(p).len() >= 2)
            .count();
        assert!(multi > 10, "need multi-sentence paragraphs for positive pairs");
    }
}
