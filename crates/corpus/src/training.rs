//! Training-data generators for the trainable models:
//!
//! * [`paraphrase_pairs`] — labelled sentence pairs for the siamese
//!   (SBERT-analog) encoder;
//! * [`retrieval_triples`] — (question, positive, negative) triples for the
//!   dual-tower (DPR-analog) encoder;
//! * [`segmentation_pairs`] — Algorithm 1's `(s₁, s₂, label)` pairs
//!   harvested from paragraph structure: consecutive sentences in one
//!   paragraph → label 1, sentences straddling a paragraph boundary →
//!   label 0 (paper §IV-C).

use crate::document::Document;
use crate::facts::{relations_for, Entity, Fact, RELATIONS};
use crate::render;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sage_text::split_sentences;

/// Sample a standalone fact about a fresh random entity.
fn random_fact(rng: &mut StdRng) -> Fact {
    let entity = if rng.random_bool(0.5) { Entity::person(rng) } else { Entity::pet(rng) };
    let rels = relations_for(entity.kind);
    let spec = rels[rng.random_range(0..rels.len())];
    let rel = RELATIONS.iter().position(|r| std::ptr::eq(r, spec)).unwrap();
    Fact::sample(&entity, rel, rng)
}

/// `n` positive (two renderings of one fact, label 1.0) and `n` negative
/// (renderings of unrelated facts, label 0.0) sentence pairs.
pub fn paraphrase_pairs(n: usize, seed: u64) -> Vec<(String, String, f32)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(2 * n);
    while out.len() < n {
        let fact = random_fact(&mut rng);
        if let Some((a, b)) = render::paraphrase_pair(&fact, &mut rng) {
            out.push((a, b, 1.0));
        }
    }
    for _ in 0..n {
        let f1 = random_fact(&mut rng);
        let mut f2 = random_fact(&mut rng);
        let mut guard = 0;
        while f2.relation == f1.relation && guard < 20 {
            f2 = random_fact(&mut rng);
            guard += 1;
        }
        out.push((render::statement_entity(&f1, 0), render::statement_entity(&f2, 0), 0.0));
    }
    out
}

/// `n` (question, positive passage, negative passage) triples: the positive
/// states the queried fact; negatives alternate between *easy* (a different
/// relation entirely) and *hard* (the same relation about a different
/// entity — the conflicting-distractor chunks of the paper's Figure 8).
/// Hard negatives teach the reranker to score distractors low, which is
/// what produces the sharp Figure-5 score cliffs that gradient selection
/// cuts at.
pub fn retrieval_triples(n: usize, seed: u64) -> Vec<(String, String, String)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let fact = random_fact(&mut rng);
        let negative = if i % 2 == 0 {
            // Easy negative: unrelated relation.
            let mut neg = random_fact(&mut rng);
            let mut guard = 0;
            while neg.relation == fact.relation && guard < 20 {
                neg = random_fact(&mut rng);
                guard += 1;
            }
            neg
        } else {
            // Hard negative: same relation, different entity and value.
            let entity = if fact.entity.kind == crate::facts::EntityKind::Person {
                Entity::person(&mut rng)
            } else {
                Entity::pet(&mut rng)
            };
            let mut neg = Fact::sample(&entity, fact.relation, &mut rng);
            let mut guard = 0;
            while neg.value == fact.value && guard < 20 {
                neg = Fact::sample(&entity, fact.relation, &mut rng);
                guard += 1;
            }
            neg
        };
        let q_variant = rng.random_range(0..4);
        let s_variant = rng.random_range(0..4);
        out.push((
            render::question(&fact, q_variant),
            render::statement_entity(&fact, s_variant),
            render::statement_entity(&negative, s_variant),
        ));
    }
    out
}

/// Harvest Algorithm 1's training pairs from documents with paragraph
/// structure, **class-balanced**.
///
/// Positives are in-paragraph sentence adjacencies; negatives are paragraph
/// boundaries plus random cross-paragraph pairs (within one document).
/// In-paragraph adjacencies vastly outnumber boundaries (~3:1 on
/// Wikipedia-shaped text), and an imbalanced set collapses the MSE-trained
/// model to "always same chunk", so the classes are equalised before
/// shuffling. `limit` caps the total (0 = no cap); truncation preserves
/// balance because the output is a deterministic shuffle of an equal mix.
pub fn segmentation_pairs(docs: &[Document], limit: usize, seed: u64) -> Vec<(String, String, f32)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut positives: Vec<(String, String, f32)> = Vec::new();
    let mut negatives: Vec<(String, String, f32)> = Vec::new();
    for doc in docs {
        let paragraphs: Vec<Vec<String>> = doc
            .paragraphs
            .iter()
            .map(|p| split_sentences(p))
            .filter(|s| !s.is_empty())
            .collect();
        for w in paragraphs.windows(2) {
            negatives.push((w[0].last().unwrap().clone(), w[1][0].clone(), 0.0));
        }
        for para in &paragraphs {
            for w in para.windows(2) {
                positives.push((w[0].clone(), w[1].clone(), 1.0));
            }
        }
        // Random cross-paragraph negatives (Algorithm 1's "unrelated
        // sentences are found in separate paragraphs").
        if paragraphs.len() >= 2 {
            let extra = positives.len().saturating_sub(negatives.len()).min(paragraphs.len() * 2);
            for _ in 0..extra {
                let a = rng.random_range(0..paragraphs.len());
                let mut b = rng.random_range(0..paragraphs.len() - 1);
                if b >= a {
                    b += 1;
                }
                let sa = &paragraphs[a][rng.random_range(0..paragraphs[a].len())];
                let sb = &paragraphs[b][rng.random_range(0..paragraphs[b].len())];
                negatives.push((sa.clone(), sb.clone(), 0.0));
            }
        }
    }
    // Equalise class sizes.
    let n = positives.len().min(negatives.len());
    shuffle(&mut positives, &mut rng);
    shuffle(&mut negatives, &mut rng);
    positives.truncate(n);
    negatives.truncate(n);
    let mut out = Vec::with_capacity(2 * n);
    for (p, n) in positives.into_iter().zip(negatives) {
        out.push(p);
        out.push(n);
    }
    shuffle(&mut out, &mut rng);
    if limit > 0 {
        out.truncate(limit);
    }
    out
}

fn shuffle<T>(items: &mut [T], rng: &mut StdRng) {
    for i in (1..items.len()).rev() {
        let j = rng.random_range(0..=i);
        items.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::document::{generate_document, DocSpec};

    #[test]
    fn paraphrase_pairs_balanced() {
        let pairs = paraphrase_pairs(50, 1);
        let pos = pairs.iter().filter(|p| p.2 == 1.0).count();
        let neg = pairs.iter().filter(|p| p.2 == 0.0).count();
        assert_eq!(pos, 50);
        assert_eq!(neg, 50);
    }

    #[test]
    fn paraphrase_positives_share_value() {
        for (a, b, label) in paraphrase_pairs(30, 2) {
            if label == 1.0 {
                // Two renderings of the same fact must share the value
                // token(s); cheap check: some non-stopword token overlap.
                let ta: std::collections::HashSet<String> =
                    sage_text::tokenize_filtered(&a).into_iter().collect();
                let tb: std::collections::HashSet<String> =
                    sage_text::tokenize_filtered(&b).into_iter().collect();
                assert!(ta.intersection(&tb).count() > 0, "{a} / {b}");
            }
        }
    }

    #[test]
    fn triples_have_three_distinct_texts() {
        for (q, p, n) in retrieval_triples(30, 3) {
            assert!(q.ends_with('?'));
            assert_ne!(p, n);
            assert_ne!(q, p);
        }
    }

    #[test]
    fn segmentation_pairs_labels_match_structure() {
        let mut rng = StdRng::seed_from_u64(4);
        let docs: Vec<Document> =
            (0..5).map(|i| generate_document(i, &DocSpec::default(), &mut rng).document).collect();
        let pairs = segmentation_pairs(&docs, 0, 5);
        assert!(!pairs.is_empty());
        let pos = pairs.iter().filter(|p| p.2 == 1.0).count();
        let neg = pairs.iter().filter(|p| p.2 == 0.0).count();
        assert!(pos > 0 && neg > 0);
        // Positive pairs must be adjacent within some paragraph.
        let (a, b, _) = pairs.iter().find(|p| p.2 == 1.0).unwrap();
        let found = docs.iter().any(|d| {
            d.paragraphs.iter().any(|p| {
                let s = split_sentences(p);
                s.windows(2).any(|w| &w[0] == a && &w[1] == b)
            })
        });
        assert!(found, "positive pair not adjacent in any paragraph");
    }

    #[test]
    fn segmentation_pairs_limit_and_determinism() {
        let mut rng = StdRng::seed_from_u64(6);
        let docs: Vec<Document> =
            (0..3).map(|i| generate_document(i, &DocSpec::default(), &mut rng).document).collect();
        let a = segmentation_pairs(&docs, 20, 7);
        let b = segmentation_pairs(&docs, 20, 7);
        assert_eq!(a.len(), 20);
        assert_eq!(a, b);
    }
}
