//! # sage-corpus
//!
//! Synthetic dataset substrate. The paper evaluates on QuALITY, QASPER,
//! NarrativeQA, and TriviaQA, and trains its segmentation model on
//! Wikipedia — none of which can be downloaded in this offline environment.
//! This crate generates analog corpora that reproduce the *mechanisms* those
//! datasets exercise (see DESIGN.md §1 for the substitution argument):
//!
//! * **Entity-fact world model** ([`facts`], [`lexicon`]): documents are
//!   built from (entity, relation, value) facts rendered through templates.
//!   Ground truth — which sentences carry the evidence for each question —
//!   is therefore known exactly.
//! * **Pronoun coreference** ([`render`]): inside a paragraph, facts about
//!   an entity are often stated with pronouns ("He has bright green
//!   eyes."), so splitting a paragraph mid-way produces exactly the
//!   semantically broken chunks of the paper's Figure 3 (limitation L1).
//! * **Conflicting distractors** ([`document`]): other entities share
//!   relations with different values ("Brone's eyes are orange"), creating
//!   the noisy chunks of Figure 8 (limitation L2).
//! * **Elimination questions** ([`qa`]): "Which technology was NOT
//!   developed by X?" needs many evidence chunks at once — the missing
//!   retrieval case of Figure 9.
//!
//! Dataset generators live in [`datasets`]; trainable-model data
//! (paraphrase pairs, DPR triples, segmentation sentence pairs) in
//! [`training`]. Everything is deterministic given a seed.

pub mod datasets;
pub mod document;
pub mod facts;
pub mod lexicon;
pub mod qa;
pub mod render;
pub mod training;

pub use document::{Dataset, Document, QaTask};
pub use facts::{Entity, EntityKind, Fact, RelationSpec, RELATIONS};
pub use lexicon::Lexicon;
pub use qa::{QaItem, QuestionKind};
