//! Statistical utilities for experiment reporting: bootstrap confidence
//! intervals over per-question scores, so table margins can be read
//! against their sampling noise (most cells in this reproduction have
//! 40-60 questions).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A mean with a bootstrap confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeanCi {
    /// Sample mean.
    pub mean: f32,
    /// Lower bound of the interval.
    pub lo: f32,
    /// Upper bound of the interval.
    pub hi: f32,
}

/// Percentile-bootstrap confidence interval of the mean at the given
/// `confidence` (e.g. 0.95), with `resamples` draws. Deterministic given
/// `seed`. Empty input yields all-zero; a single sample collapses the
/// interval to the point.
pub fn bootstrap_mean_ci(
    values: &[f32],
    confidence: f32,
    resamples: usize,
    seed: u64,
) -> MeanCi {
    assert!((0.0..1.0).contains(&confidence) || confidence == 0.0 || confidence < 1.0);
    if values.is_empty() {
        return MeanCi { mean: 0.0, lo: 0.0, hi: 0.0 };
    }
    let mean = values.iter().sum::<f32>() / values.len() as f32;
    if values.len() == 1 || resamples == 0 {
        return MeanCi { mean, lo: mean, hi: mean };
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut means: Vec<f32> = (0..resamples)
        .map(|_| {
            let total: f32 =
                (0..values.len()).map(|_| values[rng.random_range(0..values.len())]).sum();
            total / values.len() as f32
        })
        .collect();
    means.sort_by(f32::total_cmp);
    let alpha = (1.0 - confidence) / 2.0;
    let lo_idx = ((resamples as f32 * alpha) as usize).min(resamples - 1);
    let hi_idx = ((resamples as f32 * (1.0 - alpha)) as usize).min(resamples - 1);
    MeanCi { mean, lo: means[lo_idx], hi: means[hi_idx] }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_contains_mean() {
        let values: Vec<f32> = (0..50).map(|i| (i % 2) as f32).collect();
        let ci = bootstrap_mean_ci(&values, 0.95, 500, 1);
        assert!((ci.mean - 0.5).abs() < 1e-6);
        assert!(ci.lo <= ci.mean && ci.mean <= ci.hi);
        assert!(ci.lo < ci.hi, "varied data must have a nonzero interval");
    }

    #[test]
    fn constant_data_collapses() {
        let values = vec![0.7f32; 30];
        let ci = bootstrap_mean_ci(&values, 0.95, 200, 2);
        assert!((ci.lo - 0.7).abs() < 1e-6);
        assert!((ci.hi - 0.7).abs() < 1e-6);
    }

    #[test]
    fn wider_confidence_wider_interval() {
        let values: Vec<f32> = (0..40).map(|i| (i % 5) as f32 / 4.0).collect();
        let narrow = bootstrap_mean_ci(&values, 0.5, 1000, 3);
        let wide = bootstrap_mean_ci(&values, 0.99, 1000, 3);
        assert!(wide.hi - wide.lo >= narrow.hi - narrow.lo);
    }

    #[test]
    fn more_samples_tighter_interval() {
        let small: Vec<f32> = (0..10).map(|i| (i % 2) as f32).collect();
        let large: Vec<f32> = (0..400).map(|i| (i % 2) as f32).collect();
        let s = bootstrap_mean_ci(&small, 0.95, 800, 4);
        let l = bootstrap_mean_ci(&large, 0.95, 800, 4);
        assert!(l.hi - l.lo < s.hi - s.lo);
    }

    #[test]
    fn edge_cases() {
        let empty = bootstrap_mean_ci(&[], 0.95, 100, 5);
        assert_eq!(empty.mean, 0.0);
        let single = bootstrap_mean_ci(&[0.42], 0.95, 100, 6);
        assert_eq!(single.lo, single.hi);
        assert!((single.mean - 0.42).abs() < 1e-6);
    }

    #[test]
    fn deterministic() {
        let values: Vec<f32> = (0..30).map(|i| i as f32 / 30.0).collect();
        let a = bootstrap_mean_ci(&values, 0.95, 300, 7);
        let b = bootstrap_mean_ci(&values, 0.95, 300, 7);
        assert_eq!(a, b);
    }
}
