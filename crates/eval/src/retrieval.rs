//! Retrieval-quality metrics: how well a ranked chunk list covers the gold
//! evidence, independent of the reader. The paper argues SAGE's gains come
//! from *retrieval precision* — these metrics let the benches demonstrate
//! that claim directly against the synthetic corpora's exact ground truth.

/// Whether any of the top-`k` ranked items is relevant (hit rate @ k).
pub fn hit_rate_at_k(relevant: &[bool], k: usize) -> f32 {
    f32::from(relevant.iter().take(k).any(|&r| r))
}

/// Fraction of the top-`k` that is relevant (precision @ k).
pub fn precision_at_k(relevant: &[bool], k: usize) -> f32 {
    let k = k.min(relevant.len());
    if k == 0 {
        return 0.0;
    }
    relevant.iter().take(k).filter(|&&r| r).count() as f32 / k as f32
}

/// Fraction of all relevant items that appear in the top-`k` (recall @ k).
/// Returns 1.0 when there are no relevant items (nothing to recall).
pub fn recall_at_k(relevant: &[bool], k: usize) -> f32 {
    let total: usize = relevant.iter().filter(|&&r| r).count();
    if total == 0 {
        return 1.0;
    }
    relevant.iter().take(k).filter(|&&r| r).count() as f32 / total as f32
}

/// Reciprocal rank of the first relevant item (0 when none).
pub fn reciprocal_rank(relevant: &[bool]) -> f32 {
    relevant
        .iter()
        .position(|&r| r)
        .map(|pos| 1.0 / (pos as f32 + 1.0))
        .unwrap_or(0.0)
}

/// Normalised discounted cumulative gain at `k` with binary relevance.
/// Returns 1.0 when there are no relevant items.
pub fn ndcg_at_k(relevant: &[bool], k: usize) -> f32 {
    let gain = |pos: usize| 1.0 / ((pos as f32 + 2.0).log2());
    let dcg: f32 = relevant
        .iter()
        .take(k)
        .enumerate()
        .filter(|(_, &r)| r)
        .map(|(pos, _)| gain(pos))
        .sum();
    let total: usize = relevant.iter().filter(|&&r| r).count();
    if total == 0 {
        return 1.0;
    }
    let ideal: f32 = (0..total.min(k)).map(gain).sum();
    if ideal == 0.0 {
        0.0
    } else {
        dcg / ideal
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PERFECT: [bool; 5] = [true, true, false, false, false];
    const LATE: [bool; 5] = [false, false, false, true, true];
    const NONE: [bool; 5] = [false; 5];

    #[test]
    fn hit_rate_basics() {
        assert_eq!(hit_rate_at_k(&PERFECT, 1), 1.0);
        assert_eq!(hit_rate_at_k(&LATE, 3), 0.0);
        assert_eq!(hit_rate_at_k(&LATE, 4), 1.0);
        assert_eq!(hit_rate_at_k(&NONE, 5), 0.0);
        assert_eq!(hit_rate_at_k(&[], 3), 0.0);
    }

    #[test]
    fn precision_basics() {
        assert_eq!(precision_at_k(&PERFECT, 2), 1.0);
        assert_eq!(precision_at_k(&PERFECT, 4), 0.5);
        assert_eq!(precision_at_k(&NONE, 5), 0.0);
        assert_eq!(precision_at_k(&[], 3), 0.0);
    }

    #[test]
    fn recall_basics() {
        assert_eq!(recall_at_k(&PERFECT, 1), 0.5);
        assert_eq!(recall_at_k(&PERFECT, 2), 1.0);
        assert_eq!(recall_at_k(&LATE, 5), 1.0);
        assert_eq!(recall_at_k(&NONE, 5), 1.0, "vacuous recall");
    }

    #[test]
    fn mrr_basics() {
        assert_eq!(reciprocal_rank(&PERFECT), 1.0);
        assert_eq!(reciprocal_rank(&LATE), 0.25);
        assert_eq!(reciprocal_rank(&NONE), 0.0);
    }

    #[test]
    fn ndcg_orders_early_above_late() {
        let early = ndcg_at_k(&PERFECT, 5);
        let late = ndcg_at_k(&LATE, 5);
        assert!((early - 1.0).abs() < 1e-6, "front-loaded ranking is ideal: {early}");
        assert!(late < early);
        assert!(late > 0.0);
        assert_eq!(ndcg_at_k(&NONE, 5), 1.0, "vacuous ndcg");
    }

    #[test]
    fn ndcg_monotone_in_k_for_late_relevance() {
        assert!(ndcg_at_k(&LATE, 3) < ndcg_at_k(&LATE, 5));
    }
}
