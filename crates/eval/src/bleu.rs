//! Sentence-level BLEU-n with brevity penalty [36], add-ε smoothing for
//! higher orders (standard practice when grading short answers, where raw
//! BLEU-4 would be zero almost everywhere — note the paper's BLEU-4
//! columns sit around 1%).

use sage_text::{ngrams, tokenize};
use std::collections::HashMap;

/// Clipped n-gram precision of candidate tokens against one reference.
fn clipped_precision(c: &[String], r: &[String], n: usize) -> (usize, usize) {
    let c_ngrams = ngrams(c, n);
    if c_ngrams.is_empty() {
        return (0, 0);
    }
    // sage-lint: allow(deterministic-iteration) - integer n-gram multiset; clipped counts are a commutative sum, order-independent
    let mut ref_counts: HashMap<String, usize> = HashMap::new();
    for g in ngrams(r, n) {
        *ref_counts.entry(g).or_insert(0) += 1;
    }
    // sage-lint: allow(deterministic-iteration) - integer n-gram multiset; clipped counts are a commutative sum, order-independent
    let mut cand_counts: HashMap<&str, usize> = HashMap::new();
    for g in &c_ngrams {
        *cand_counts.entry(g).or_insert(0) += 1;
    }
    let mut hits = 0usize;
    for (g, &count) in &cand_counts {
        if let Some(&rc) = ref_counts.get(*g) {
            hits += count.min(rc);
        }
    }
    (hits, c_ngrams.len())
}

/// BLEU-`order` against the best single reference, geometric mean of
/// 1..=order clipped precisions with brevity penalty. Returns a value in
/// `[0, 1]`.
pub fn bleu(candidate: &str, references: &[String], order: usize) -> f32 {
    assert!(order >= 1, "BLEU order must be >= 1");
    let c = tokenize(candidate);
    if c.is_empty() || references.is_empty() {
        return 0.0;
    }
    references
        .iter()
        .map(|reference| {
            let r = tokenize(reference);
            if r.is_empty() {
                return 0.0;
            }
            let mut log_sum = 0.0f64;
            for n in 1..=order {
                let (hits, total) = clipped_precision(&c, &r, n);
                // ε-smoothing keeps higher orders finite on short answers.
                let p = (hits as f64 + 0.1) / (total as f64 + 0.1).max(0.2);
                log_sum += p.ln();
            }
            let precision = (log_sum / order as f64).exp();
            let bp = if c.len() >= r.len() {
                1.0
            } else {
                (1.0 - r.len() as f64 / c.len() as f64).exp()
            };
            (bp * precision) as f32
        })
        .fold(0.0, f32::max)
        .clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn refs(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn identical_near_one() {
        let s = bleu("the cat sat on the mat", &refs(&["the cat sat on the mat"]), 4);
        assert!(s > 0.9, "{s}");
    }

    #[test]
    fn disjoint_near_zero() {
        let s = bleu("alpha beta gamma", &refs(&["delta epsilon zeta"]), 1);
        assert!(s < 0.2, "{s}");
    }

    #[test]
    fn bleu1_geq_bleu4() {
        let c = "the green eyes of the cat";
        let r = refs(&["the cat has green eyes"]);
        assert!(bleu(c, &r, 1) >= bleu(c, &r, 4));
    }

    #[test]
    fn brevity_penalty_punishes_short_candidates() {
        let r = refs(&["the cat has bright green eyes today"]);
        let long = bleu("the cat has bright green eyes today", &r, 1);
        let short = bleu("green", &r, 1);
        assert!(long > short, "{long} vs {short}");
    }

    #[test]
    fn clipping_limits_repeats() {
        // "the the the" must not get credit for three "the"s against a
        // single-"the" reference.
        let repeated = bleu("the the the", &refs(&["the cat"]), 1);
        let single = bleu("the cat", &refs(&["the cat"]), 1);
        assert!(repeated < single);
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(bleu("", &refs(&["x"]), 1), 0.0);
        assert_eq!(bleu("x", &[], 1), 0.0);
        assert_eq!(bleu("x", &refs(&[""]), 1), 0.0);
    }

    #[test]
    fn best_reference_wins() {
        let r = refs(&["nothing shared", "green eyes"]);
        assert!(bleu("green eyes", &r, 1) > 0.9);
    }

    #[test]
    #[should_panic(expected = "order")]
    fn order_zero_panics() {
        bleu("x", &refs(&["x"]), 0);
    }
}
