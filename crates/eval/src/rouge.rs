//! ROUGE-L: longest-common-subsequence F-measure [28].

use sage_text::tokenize;

/// Length of the longest common subsequence of two token slices.
fn lcs_len(a: &[String], b: &[String]) -> usize {
    if a.is_empty() || b.is_empty() {
        return 0;
    }
    // Two-row DP.
    let mut prev = vec![0usize; b.len() + 1];
    let mut curr = vec![0usize; b.len() + 1];
    for ai in a {
        for (j, bj) in b.iter().enumerate() {
            curr[j + 1] = if ai == bj { prev[j] + 1 } else { prev[j + 1].max(curr[j]) };
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[b.len()]
}

/// ROUGE-L F-measure against the best reference (β = 1).
pub fn rouge_l(candidate: &str, references: &[String]) -> f32 {
    let c = tokenize(candidate);
    references
        .iter()
        .map(|r| {
            let rt = tokenize(r);
            let lcs = lcs_len(&c, &rt);
            if lcs == 0 {
                return 0.0;
            }
            let p = lcs as f32 / c.len() as f32;
            let r = lcs as f32 / rt.len() as f32;
            2.0 * p * r / (p + r)
        })
        .fold(0.0, f32::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn refs(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn identical_is_one() {
        assert!((rouge_l("the cat sat", &refs(&["the cat sat"])) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn disjoint_is_zero() {
        assert_eq!(rouge_l("alpha beta", &refs(&["gamma delta"])), 0.0);
    }

    #[test]
    fn subsequence_not_substring() {
        // "the green eyes" vs "the bright green cat eyes": LCS = the green
        // eyes (3).
        let score = rouge_l("the green eyes", &refs(&["the bright green cat eyes"]));
        let p = 3.0 / 3.0;
        let r = 3.0 / 5.0;
        let want = 2.0 * p * r / (p + r);
        assert!((score - want).abs() < 1e-5, "{score} vs {want}");
    }

    #[test]
    fn order_matters_for_lcs() {
        let inorder = rouge_l("green eyes", &refs(&["green eyes"]));
        let reversed = rouge_l("eyes green", &refs(&["green eyes"]));
        assert!(inorder > reversed);
        assert!(reversed > 0.0, "still shares a 1-token subsequence");
    }

    #[test]
    fn best_reference_wins() {
        let s = rouge_l("green", &refs(&["totally different", "green"]));
        assert!((s - 1.0).abs() < 1e-6);
    }

    #[test]
    fn empty_candidate_zero() {
        assert_eq!(rouge_l("", &refs(&["green"])), 0.0);
        assert_eq!(rouge_l("green", &[]), 0.0);
    }
}
