//! LLM inference cost (paper Eq. 1) and cost-efficiency (Eq. 2).

use serde::{Deserialize, Serialize};

/// Per-token prices in dollars (the paper quotes GPT-4 at $10/M input and
/// $30/M output).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PriceTable {
    /// Dollars per input token (`c_i`).
    pub input_per_token: f64,
    /// Dollars per output token (`c_o`).
    pub output_per_token: f64,
}

impl PriceTable {
    /// GPT-4 pricing from §I/§II-B: $10 / 1M input, $30 / 1M output.
    pub fn gpt4() -> Self {
        Self { input_per_token: 10.0 / 1e6, output_per_token: 30.0 / 1e6 }
    }

    /// GPT-4o-mini pricing (public list price at the time of the paper:
    /// $0.15 / 1M input, $0.60 / 1M output).
    pub fn gpt4o_mini() -> Self {
        Self { input_per_token: 0.15 / 1e6, output_per_token: 0.60 / 1e6 }
    }

    /// GPT-3.5-turbo pricing ($0.50 / 1M input, $1.50 / 1M output).
    pub fn gpt35_turbo() -> Self {
        Self { input_per_token: 0.50 / 1e6, output_per_token: 1.50 / 1e6 }
    }

    /// A local model has no per-token API fee.
    pub fn free() -> Self {
        Self { input_per_token: 0.0, output_per_token: 0.0 }
    }
}

/// Accumulated token usage for a sequence of LLM calls.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Cost {
    /// Total input tokens (`I_t`).
    pub input_tokens: u64,
    /// Total output tokens (`O_t`).
    pub output_tokens: u64,
}

impl Cost {
    /// No usage.
    pub fn zero() -> Self {
        Self::default()
    }

    /// Record one call.
    pub fn add_call(&mut self, input_tokens: usize, output_tokens: usize) {
        self.input_tokens += input_tokens as u64;
        self.output_tokens += output_tokens as u64;
    }

    /// Merge another accumulator.
    pub fn merge(&mut self, other: Cost) {
        self.input_tokens += other.input_tokens;
        self.output_tokens += other.output_tokens;
    }

    /// Total tokens, input + output.
    pub fn total_tokens(&self) -> u64 {
        self.input_tokens + self.output_tokens
    }

    /// Eq. 1: `Cost = I_t * c_i + O_t * c_o`, in dollars.
    pub fn dollars(&self, prices: PriceTable) -> f64 {
        self.input_tokens as f64 * prices.input_per_token
            + self.output_tokens as f64 * prices.output_per_token
    }
}

/// Eq. 2: `Cost-efficiency = Acc / Cost`. Returns `f64::INFINITY` for zero
/// cost with positive accuracy, 0 for zero accuracy.
pub fn cost_efficiency(accuracy: f64, cost_dollars: f64) -> f64 {
    if accuracy <= 0.0 {
        0.0
    } else if cost_dollars <= 0.0 {
        f64::INFINITY
    } else {
        accuracy / cost_dollars
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq1_worked_example() {
        // 1M input + 1M output tokens at GPT-4 prices = $40.
        let mut cost = Cost::zero();
        cost.add_call(1_000_000, 1_000_000);
        assert!((cost.dollars(PriceTable::gpt4()) - 40.0).abs() < 1e-9);
    }

    #[test]
    fn accumulation_and_merge() {
        let mut a = Cost::zero();
        a.add_call(100, 10);
        a.add_call(50, 5);
        let mut b = Cost::zero();
        b.add_call(25, 2);
        a.merge(b);
        assert_eq!(a.input_tokens, 175);
        assert_eq!(a.output_tokens, 17);
        assert_eq!(a.total_tokens(), 192);
    }

    #[test]
    fn price_ordering_matches_reality() {
        let c = {
            let mut c = Cost::zero();
            c.add_call(10_000, 1_000);
            c
        };
        let gpt4 = c.dollars(PriceTable::gpt4());
        let gpt35 = c.dollars(PriceTable::gpt35_turbo());
        let mini = c.dollars(PriceTable::gpt4o_mini());
        assert!(gpt4 > gpt35 && gpt35 > mini && mini > 0.0);
        assert_eq!(c.dollars(PriceTable::free()), 0.0);
    }

    #[test]
    fn eq2_behaviour() {
        assert!((cost_efficiency(0.8, 0.4) - 2.0).abs() < 1e-9);
        assert_eq!(cost_efficiency(0.0, 1.0), 0.0);
        assert_eq!(cost_efficiency(0.5, 0.0), f64::INFINITY);
    }

    #[test]
    fn higher_accuracy_lower_cost_wins() {
        let sage = cost_efficiency(0.75, 0.010);
        let baseline = cost_efficiency(0.65, 0.014);
        assert!(sage > baseline);
    }
}
