//! # sage-eval
//!
//! Evaluation metrics (paper §VII-A "Metrics") and the cost model
//! (§II-B/§II-C):
//!
//! * [`rouge_l`] — ROUGE-L F-measure (NarrativeQA tables);
//! * [`bleu`] — smoothed sentence-level BLEU-n with brevity penalty
//!   (BLEU-1 and BLEU-4 columns);
//! * [`meteor`] — METEOR-lite: stem-aware unigram alignment with a
//!   fragmentation penalty;
//! * [`f1_match`] — token-level F1 (QASPER / TriviaQA "F1-Match");
//! * [`exact_match`] / multiple-choice accuracy helpers;
//! * [`cost::Cost`] — Eq. 1 token pricing and Eq. 2 cost-efficiency.
//!
//! All text comparisons are case-insensitive over word tokens; metrics with
//! multiple references take the best score across references (the standard
//! convention on these datasets).

pub mod bleu;
pub mod cost;
pub mod meteor;
pub mod retrieval;
pub mod rouge;
pub mod stats;

pub use bleu::bleu;
pub use cost::{cost_efficiency, Cost, PriceTable};
pub use meteor::meteor;
pub use retrieval::{hit_rate_at_k, ndcg_at_k, precision_at_k, recall_at_k, reciprocal_rank};
pub use rouge::rouge_l;
pub use stats::{bootstrap_mean_ci, MeanCi};

use sage_text::{normalize, tokenize};

/// Token-level F1 between a candidate and the best-matching reference — the
/// paper's "F1-Match" metric [38].
///
/// ```
/// use sage_eval::f1_match;
/// let refs = vec!["green eyes".to_string()];
/// assert_eq!(f1_match("green eyes", &refs), 1.0);
/// assert!(f1_match("bright green", &refs) >= 0.5); // overlap "green": P=1/2, R=1/2
/// assert_eq!(f1_match("orange", &refs), 0.0);
/// ```
pub fn f1_match(candidate: &str, references: &[String]) -> f32 {
    references.iter().map(|r| f1_single(candidate, r)).fold(0.0, f32::max)
}

fn f1_single(candidate: &str, reference: &str) -> f32 {
    let c = tokenize(candidate);
    let r = tokenize(reference);
    if c.is_empty() || r.is_empty() {
        return if c.is_empty() && r.is_empty() { 1.0 } else { 0.0 };
    }
    // Multiset intersection.
    // sage-lint: allow(deterministic-iteration) - integer multiset counts consumed by commutative min/sum; iteration order cannot change the score
    let mut counts = std::collections::HashMap::new();
    for t in &r {
        *counts.entry(t.as_str()).or_insert(0i32) += 1;
    }
    let mut overlap = 0i32;
    for t in &c {
        if let Some(n) = counts.get_mut(t.as_str()) {
            if *n > 0 {
                overlap += 1;
                *n -= 1;
            }
        }
    }
    if overlap == 0 {
        return 0.0;
    }
    let precision = overlap as f32 / c.len() as f32;
    let recall = overlap as f32 / r.len() as f32;
    2.0 * precision * recall / (precision + recall)
}

/// Whether the candidate exactly matches any reference after
/// normalisation.
pub fn exact_match(candidate: &str, references: &[String]) -> bool {
    let c = normalize(candidate);
    references.iter().any(|r| normalize(r) == c)
}

/// Mean of a score list (0 for empty input).
pub fn mean(values: &[f32]) -> f32 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f32>() / values.len() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn refs(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn f1_perfect_match() {
        assert!((f1_match("green eyes", &refs(&["green eyes"])) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn f1_partial_overlap() {
        let f1 = f1_match("bright green", &refs(&["green"]));
        // precision 1/2, recall 1/1 -> 2/3
        assert!((f1 - 2.0 / 3.0).abs() < 1e-5);
    }

    #[test]
    fn f1_no_overlap_zero() {
        assert_eq!(f1_match("orange", &refs(&["green"])), 0.0);
    }

    #[test]
    fn f1_best_of_references() {
        let f1 = f1_match("the green", &refs(&["orange", "the green"]));
        assert!((f1 - 1.0).abs() < 1e-6);
    }

    #[test]
    fn f1_empty_edge_cases() {
        assert_eq!(f1_match("", &refs(&["x"])), 0.0);
        assert_eq!(f1_match("x", &refs(&[""])), 0.0);
        assert_eq!(f1_match("", &refs(&[""])), 1.0);
    }

    #[test]
    fn f1_counts_duplicates_once() {
        // candidate repeats a token; only one copy matches.
        let f1 = f1_match("green green", &refs(&["green"]));
        // overlap 1, precision 1/2, recall 1 -> 2/3
        assert!((f1 - 2.0 / 3.0).abs() < 1e-5);
    }

    #[test]
    fn exact_match_normalises() {
        assert!(exact_match("  Green  Eyes ", &refs(&["green eyes"])));
        assert!(!exact_match("green eye", &refs(&["green eyes"])));
    }

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[]), 0.0);
        assert!((mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-6);
    }
}
