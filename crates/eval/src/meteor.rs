//! METEOR-lite [3]: unigram alignment with exact + stem matching, a
//! recall-weighted harmonic mean, and a fragmentation penalty. (Full METEOR
//! also uses WordNet synonymy; a synonym lexicon adds nothing on the
//! synthetic corpus, whose paraphrases vary by morphology and order.)

use sage_text::{stem, tokenize};

/// Alignment between candidate and reference tokens: exact match first,
/// then stem match, greedy left-to-right (each token on each side used
/// once). Returns `(candidate_pos, reference_pos)` pairs sorted by
/// candidate position.
fn align(c: &[String], r: &[String]) -> Vec<(usize, usize)> {
    let c_stems: Vec<String> = c.iter().map(|t| stem(t)).collect();
    let r_stems: Vec<String> = r.iter().map(|t| stem(t)).collect();
    let mut used = vec![false; r.len()];
    let mut pair_of: Vec<Option<usize>> = vec![None; c.len()];
    // Pass 1: exact.
    for (i, ct) in c.iter().enumerate() {
        if let Some(j) = (0..r.len()).find(|&j| !used[j] && &r[j] == ct) {
            used[j] = true;
            pair_of[i] = Some(j);
        }
    }
    // Pass 2: stems.
    for (i, cs) in c_stems.iter().enumerate() {
        if pair_of[i].is_some() {
            continue;
        }
        if let Some(j) = (0..r.len()).find(|&j| !used[j] && &r_stems[j] == cs) {
            used[j] = true;
            pair_of[i] = Some(j);
        }
    }
    pair_of
        .into_iter()
        .enumerate()
        .filter_map(|(i, j)| j.map(|j| (i, j)))
        .collect()
}

/// Number of METEOR "chunks": maximal runs of matches contiguous and
/// in-order in *both* candidate and reference.
fn runs(pairs: &[(usize, usize)]) -> usize {
    if pairs.is_empty() {
        return 0;
    }
    1 + pairs
        .windows(2)
        .filter(|w| w[1].0 != w[0].0 + 1 || w[1].1 != w[0].1 + 1)
        .count()
}

/// METEOR score in `[0, 1]` against the best reference.
pub fn meteor(candidate: &str, references: &[String]) -> f32 {
    let c = tokenize(candidate);
    if c.is_empty() {
        return 0.0;
    }
    references
        .iter()
        .map(|reference| {
            let r = tokenize(reference);
            if r.is_empty() {
                return 0.0;
            }
            let matches = align(&c, &r);
            let m = matches.len() as f32;
            if m == 0.0 {
                return 0.0;
            }
            let precision = m / c.len() as f32;
            let recall = m / r.len() as f32;
            // METEOR's recall-weighted harmonic mean (α = 0.9).
            let fmean = precision * recall / (0.9 * precision + 0.1 * recall);
            let frag = runs(&matches) as f32 / m;
            let penalty = 0.5 * frag.powi(3);
            fmean * (1.0 - penalty)
        })
        .fold(0.0, f32::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn refs(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn identical_high() {
        let s = meteor("the cat has green eyes", &refs(&["the cat has green eyes"]));
        assert!(s > 0.9, "{s}");
    }

    #[test]
    fn disjoint_zero() {
        assert_eq!(meteor("alpha beta", &refs(&["gamma delta"])), 0.0);
    }

    #[test]
    fn stem_matching_counts() {
        let with_stem = meteor("jumping cats", &refs(&["jumped cat"]));
        assert!(with_stem > 0.3, "morphological variants should match: {with_stem}");
    }

    #[test]
    fn fragmentation_penalty_orders() {
        // Same unigram matches, contiguous vs scattered.
        let contiguous = meteor("green eyes shine", &refs(&["green eyes shine"]));
        let scattered = meteor("green shine eyes", &refs(&["green eyes shine"]));
        assert!(contiguous > scattered, "{contiguous} vs {scattered}");
    }

    #[test]
    fn recall_weighted() {
        // Candidate covering all of a short reference beats one covering
        // half, even with equal precision.
        let full = meteor("green eyes", &refs(&["green eyes"]));
        let half = meteor("green", &refs(&["green eyes"]));
        assert!(full > half);
        assert!(half > 0.0);
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(meteor("", &refs(&["x"])), 0.0);
        assert_eq!(meteor("x", &refs(&[""])), 0.0);
        assert_eq!(meteor("x", &[]), 0.0);
    }

    #[test]
    fn runs_counting() {
        assert_eq!(runs(&[]), 0);
        assert_eq!(runs(&[(0, 0), (1, 1), (2, 2)]), 1);
        assert_eq!(runs(&[(0, 2), (1, 3), (2, 0)]), 2);
        assert_eq!(runs(&[(0, 0), (2, 1), (3, 2)]), 2);
    }
}
