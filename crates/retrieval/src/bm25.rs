//! Okapi BM25 over an inverted index (paper retriever #2, §VII-A).
//!
//! Terms are stemmed but stopwords are kept — BM25's IDF term drives their
//! weight toward zero naturally, and dropping them would distort document
//! length normalisation.

// sage-lint: allow-file(panic-reachability) - chunk ids are range-checked against deleted.len() before the parallel per-chunk arrays are read

// sage-lint: allow-file(deterministic-iteration) - posting maps are accumulated in query-term order and every result list is fully sorted with an index tie-break before returning; ordering cannot leak

use crate::{Retriever, ScoredChunk};
use sage_text::{stem, tokenize, Vocab};
use std::collections::HashMap;

/// BM25 hyper-parameters (standard Okapi defaults).
#[derive(Debug, Clone, Copy)]
pub struct Bm25Params {
    /// Term-frequency saturation.
    pub k1: f32,
    /// Length normalisation strength.
    pub b: f32,
}

impl Default for Bm25Params {
    fn default() -> Self {
        Self { k1: 1.2, b: 0.75 }
    }
}

/// BM25 retriever with an inverted index.
///
/// Supports two indexing modes: [`Retriever::index`] (full rebuild) and the
/// delta path used by `sage-core`'s live-corpus writer —
/// [`push_live_chunk`](Self::push_live_chunk) appends postings for one new
/// chunk and [`tombstone_chunk`](Self::tombstone_chunk) logically deletes
/// one. Tombstoned chunks are skipped at retrieval and excluded from the
/// average-length normaliser; their postings (and document-frequency
/// contributions) linger until the writer compacts with a full rebuild
/// over the survivors.
#[derive(Debug, Clone)]
pub struct Bm25Retriever {
    params: Bm25Params,
    vocab: Vocab,
    /// term id → postings of (chunk index, term frequency).
    postings: HashMap<u32, Vec<(u32, u32)>>,
    /// Token count per chunk.
    chunk_len: Vec<u32>,
    avg_len: f32,
    /// Tombstone bitmap for the delta path (all-live after a full rebuild).
    deleted: Vec<bool>,
    /// Token count summed over live chunks (drives `avg_len`).
    live_total_len: u64,
    live_count: u32,
}

impl Default for Bm25Retriever {
    fn default() -> Self {
        Self::new()
    }
}

impl Bm25Retriever {
    /// New retriever with default parameters.
    pub fn new() -> Self {
        Self::with_params(Bm25Params::default())
    }

    /// New retriever with custom parameters.
    pub fn with_params(params: Bm25Params) -> Self {
        Self {
            params,
            vocab: Vocab::new(),
            postings: HashMap::new(),
            chunk_len: Vec::new(),
            avg_len: 0.0,
            deleted: Vec::new(),
            live_total_len: 0,
            live_count: 0,
        }
    }

    fn terms(text: &str) -> Vec<String> {
        tokenize(text).iter().map(|t| stem(t)).collect()
    }

    /// Append one chunk's postings without rebuilding (the live writer's
    /// delta path). Returns the new chunk's index.
    pub fn push_live_chunk(&mut self, text: &str) -> usize {
        let ci = self.chunk_len.len();
        let terms = Self::terms(text);
        self.chunk_len.push(terms.len() as u32);
        self.deleted.push(false);
        self.live_total_len += terms.len() as u64;
        self.live_count += 1;
        let mut tf: HashMap<u32, u32> = HashMap::new();
        for term in &terms {
            *tf.entry(self.vocab.intern(term)).or_insert(0) += 1;
        }
        let ids: Vec<u32> = tf.keys().copied().collect();
        self.vocab.record_document(&ids);
        for (id, freq) in tf {
            self.postings.entry(id).or_default().push((ci as u32, freq));
        }
        self.recompute_avg_len();
        ci
    }

    /// Logically delete chunk `index`: it stops being retrieved and stops
    /// contributing to length normalisation. Idempotent; returns `false`
    /// when `index` is out of range or already tombstoned. Postings stay
    /// until the owner rebuilds over the survivors ([`Retriever::index`]).
    pub fn tombstone_chunk(&mut self, index: usize) -> bool {
        if index >= self.deleted.len() || self.deleted[index] {
            return false;
        }
        self.deleted[index] = true;
        self.live_total_len -= u64::from(self.chunk_len[index]);
        self.live_count -= 1;
        self.recompute_avg_len();
        true
    }

    /// Whether chunk `index` is tombstoned.
    pub fn is_deleted(&self, index: usize) -> bool {
        self.deleted.get(index).copied().unwrap_or(false)
    }

    /// Number of live (non-tombstoned) chunks.
    pub fn live_len(&self) -> usize {
        self.live_count as usize
    }

    fn recompute_avg_len(&mut self) {
        self.avg_len = if self.live_count == 0 {
            0.0
        } else {
            self.live_total_len as f32 / self.live_count as f32
        };
    }

    /// Retrieve over one shard of the corpus: only chunks whose entry in
    /// `assignment` (the router's chunk→shard table) equals `shard` are
    /// scored. Scoring keeps the *global* document frequencies and length
    /// normaliser — shard postings are a filter over one shared index, not
    /// per-shard statistics — so scores are comparable across shards and a
    /// deterministic merge of every shard's results equals the unsharded
    /// ranking exactly. Chunks beyond `assignment.len()` are treated as
    /// unassigned and skipped.
    pub fn retrieve_shard(
        &self,
        query: &str,
        n: usize,
        shard: u32,
        assignment: &[u32],
    ) -> Vec<ScoredChunk> {
        self.retrieve_where(query, n, |ci| assignment.get(ci).copied() == Some(shard))
    }

    /// Shared scoring loop behind [`Retriever::retrieve`] (allow all) and
    /// [`retrieve_shard`](Self::retrieve_shard) (shard filter).
    fn retrieve_where(
        &self,
        query: &str,
        n: usize,
        allow: impl Fn(usize) -> bool,
    ) -> Vec<ScoredChunk> {
        if self.live_count == 0 || n == 0 {
            return Vec::new();
        }
        sage_telemetry::metrics::BM25_SEARCHES.inc();
        let mut scores: HashMap<u32, f32> = HashMap::new();
        for term in Self::terms(query) {
            let Some(id) = self.vocab.get(&term) else { continue };
            let Some(postings) = self.postings.get(&id) else { continue };
            sage_telemetry::metrics::BM25_POSTINGS_SCANNED.add(postings.len() as u64);
            let idf = self.vocab.idf(id);
            for &(chunk, tf) in postings {
                if self.deleted[chunk as usize] || !allow(chunk as usize) {
                    continue;
                }
                let tf = tf as f32;
                let len = self.chunk_len[chunk as usize] as f32;
                let denom =
                    tf + self.params.k1 * (1.0 - self.params.b + self.params.b * len / self.avg_len);
                let term_score = idf * tf * (self.params.k1 + 1.0) / denom;
                *scores.entry(chunk).or_insert(0.0) += term_score;
            }
        }
        let mut hits: Vec<ScoredChunk> = scores
            .into_iter()
            .map(|(chunk, score)| ScoredChunk { index: chunk as usize, score })
            .collect();
        hits.sort_by(|a, b| b.score.total_cmp(&a.score).then_with(|| a.index.cmp(&b.index)));
        hits.truncate(n);
        hits
    }
}

impl Retriever for Bm25Retriever {
    fn index(&mut self, chunks: &[String]) {
        self.vocab = Vocab::new();
        self.postings.clear();
        self.chunk_len.clear();
        self.deleted.clear();
        let mut total_len = 0u64;
        for (ci, chunk) in chunks.iter().enumerate() {
            let terms = Self::terms(chunk);
            total_len += terms.len() as u64;
            self.chunk_len.push(terms.len() as u32);
            let mut tf: HashMap<u32, u32> = HashMap::new();
            for term in &terms {
                *tf.entry(self.vocab.intern(term)).or_insert(0) += 1;
            }
            let ids: Vec<u32> = tf.keys().copied().collect();
            self.vocab.record_document(&ids);
            for (id, freq) in tf {
                self.postings.entry(id).or_default().push((ci as u32, freq));
            }
        }
        self.deleted.resize(chunks.len(), false);
        self.live_total_len = total_len;
        self.live_count = chunks.len() as u32;
        self.avg_len = if chunks.is_empty() {
            0.0
        } else {
            total_len as f32 / chunks.len() as f32
        };
    }

    fn retrieve(&self, query: &str, n: usize) -> Vec<ScoredChunk> {
        self.retrieve_where(query, n, |_| true)
    }

    fn len(&self) -> usize {
        self.chunk_len.len()
    }

    fn name(&self) -> String {
        "BM25".to_string()
    }

    fn memory_bytes(&self) -> usize {
        let postings: usize =
            self.postings.values().map(|p| p.capacity() * 8 + 48).sum::<usize>();
        postings + self.chunk_len.capacity() * 4 + self.deleted.capacity() + self.vocab.len() * 24
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chunks() -> Vec<String> {
        vec![
            "The cat has bright green eyes and soft fur.".to_string(),
            "The dog chased the cat around the yard.".to_string(),
            "Rockets carried the crew toward the distant moon.".to_string(),
            "The moon shone over the quiet harbor town.".to_string(),
            "Bakers knead dough before the town wakes.".to_string(),
        ]
    }

    fn indexed() -> Bm25Retriever {
        let mut r = Bm25Retriever::new();
        r.index(&chunks());
        r
    }

    #[test]
    fn top_hit_shares_vocabulary() {
        let r = indexed();
        let hits = r.retrieve("what color are the cat's eyes", 3);
        assert_eq!(hits[0].index, 0, "{hits:?}");
    }

    #[test]
    fn scores_descend() {
        let r = indexed();
        let hits = r.retrieve("the moon", 5);
        for w in hits.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn no_match_returns_empty() {
        let r = indexed();
        assert!(r.retrieve("zyzzyva quux", 3).is_empty());
    }

    #[test]
    fn idf_downweights_ubiquitous_terms() {
        let r = indexed();
        // "the" appears everywhere; querying it alone must not rank any
        // chunk far above the rest.
        let hits = r.retrieve("the", 5);
        if hits.len() >= 2 {
            assert!(hits[0].score < 1.0, "stopword score too high: {}", hits[0].score);
        }
    }

    #[test]
    fn stemming_matches_variants() {
        let r = indexed();
        let hits = r.retrieve("rocket", 2); // indexed text says "Rockets"
        assert!(!hits.is_empty());
        assert_eq!(hits[0].index, 2);
    }

    #[test]
    fn reindex_replaces_old_state() {
        let mut r = indexed();
        r.index(&["completely different text about pianos".to_string()]);
        assert_eq!(r.len(), 1);
        assert!(r.retrieve("cat", 3).is_empty());
        assert!(!r.retrieve("piano", 3).is_empty());
    }

    #[test]
    fn empty_index_and_zero_n() {
        let mut r = Bm25Retriever::new();
        r.index(&[]);
        assert!(r.retrieve("anything", 3).is_empty());
        let r2 = indexed();
        assert!(r2.retrieve("cat", 0).is_empty());
    }

    #[test]
    fn length_normalisation_prefers_focused_chunks() {
        let mut r = Bm25Retriever::new();
        r.index(&[
            "green eyes".to_string(),
            "green eyes and a very long trailing description of many unrelated things in the \
             garden near the fence by the road"
                .to_string(),
        ]);
        let hits = r.retrieve("green eyes", 2);
        assert_eq!(hits[0].index, 0, "shorter chunk should win: {hits:?}");
    }

    #[test]
    fn memory_is_positive() {
        assert!(indexed().memory_bytes() > 0);
    }

    #[test]
    fn delta_path_matches_full_rebuild() {
        let mut full = Bm25Retriever::new();
        full.index(&chunks());
        let mut delta = Bm25Retriever::new();
        for chunk in chunks() {
            delta.push_live_chunk(&chunk);
        }
        assert_eq!(delta.len(), full.len());
        for query in ["cat eyes", "the moon", "rocket", "dough town"] {
            let a = full.retrieve(query, 5);
            let b = delta.retrieve(query, 5);
            assert_eq!(a.len(), b.len(), "{query}");
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.index, y.index, "{query}");
                assert!((x.score - y.score).abs() < 1e-6, "{query}: {x:?} vs {y:?}");
            }
        }
    }

    #[test]
    fn tombstoned_chunks_are_not_retrieved() {
        let mut r = indexed();
        assert_eq!(r.retrieve("eyes", 5)[0].index, 0);
        assert!(r.tombstone_chunk(0));
        assert!(!r.tombstone_chunk(0), "idempotent");
        assert!(!r.tombstone_chunk(99), "bounds-checked");
        assert_eq!(r.live_len(), 4);
        assert!(r.is_deleted(0));
        let hits = r.retrieve("cat eyes", 5);
        assert!(hits.iter().all(|h| h.index != 0), "{hits:?}");
    }

    #[test]
    fn tombstones_leave_length_normalisation_to_live_chunks() {
        let mut r = Bm25Retriever::new();
        r.push_live_chunk("green eyes");
        let long = r.push_live_chunk(
            "green eyes and a very long trailing description of many unrelated things in the \
             garden near the fence by the road",
        );
        r.push_live_chunk("unrelated harbor town");
        r.tombstone_chunk(long);
        // avg_len is now over the two short live chunks only.
        let hits = r.retrieve("green eyes", 3);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].index, 0);
    }

    #[test]
    fn all_tombstoned_returns_empty() {
        let mut r = Bm25Retriever::new();
        r.push_live_chunk("only chunk");
        r.tombstone_chunk(0);
        assert!(r.retrieve("only", 3).is_empty());
        assert_eq!(r.live_len(), 0);
    }

    #[test]
    fn shard_retrieval_partitions_and_merges_back_to_global() {
        let r = indexed();
        // A 2-shard assignment splitting the corpus by chunk parity.
        let assignment: Vec<u32> = (0..r.len() as u32).map(|i| i % 2).collect();
        for query in ["cat eyes", "the moon", "dough town"] {
            let global = r.retrieve(query, 5);
            let mut union: Vec<ScoredChunk> = Vec::new();
            for shard in 0..2 {
                let part = r.retrieve_shard(query, 5, shard, &assignment);
                for h in &part {
                    assert_eq!(assignment[h.index], shard, "{query}: hit outside its shard");
                }
                union.extend(part);
            }
            // Global statistics make shard scores comparable: re-sorting the
            // union with the same comparator reproduces the global ranking.
            union.sort_by(|a, b| b.score.total_cmp(&a.score).then_with(|| a.index.cmp(&b.index)));
            union.truncate(5);
            assert_eq!(union.len(), global.len(), "{query}");
            for (u, g) in union.iter().zip(&global) {
                assert_eq!(u.index, g.index, "{query}");
                assert!((u.score - g.score).abs() < 1e-6, "{query}");
            }
        }
        // An out-of-range shard or empty assignment yields nothing.
        assert!(r.retrieve_shard("cat", 5, 7, &assignment).is_empty());
        assert!(r.retrieve_shard("cat", 5, 0, &[]).is_empty());
    }

    #[test]
    fn full_rebuild_clears_tombstones() {
        let mut r = indexed();
        r.tombstone_chunk(0);
        r.index(&chunks());
        assert_eq!(r.live_len(), 5);
        assert_eq!(r.retrieve("eyes", 5)[0].index, 0);
    }
}
