//! Dense retrieval: an embedding model + a vector database (paper §II-A's
//! "Vector Database Construction" and "Retrieval" phases).
//!
//! The embedder and index types are generic, so the paper's three dense
//! retrievers are instantiations:
//!
//! ```
//! use sage_retrieval::{DenseRetriever, Retriever};
//! use sage_embed::HashedEmbedder;
//! use sage_vecdb::FlatIndex;
//!
//! let mut openai_analog =
//!     DenseRetriever::new(HashedEmbedder::default_model(), FlatIndex::cosine());
//! openai_analog.index(&["a chunk".to_string(), "another chunk".to_string()]);
//! let hits = openai_analog.retrieve("which chunk?", 2);
//! assert_eq!(hits.len(), 2);
//! ```

use crate::{Retriever, ScoredChunk};
use sage_embed::Embedder;
use sage_vecdb::VectorIndex;

/// An embedding model paired with a vector index.
pub struct DenseRetriever<E, I> {
    embedder: E,
    index: I,
    indexed: usize,
}

impl<E: Embedder, I: VectorIndex> DenseRetriever<E, I> {
    /// Pair an embedder with an (empty) vector index.
    pub fn new(embedder: E, index: I) -> Self {
        Self { embedder, index, indexed: 0 }
    }

    /// Borrow the embedder (e.g. to train it before indexing).
    pub fn embedder(&self) -> &E {
        &self.embedder
    }

    /// Mutably borrow the embedder.
    pub fn embedder_mut(&mut self) -> &mut E {
        &mut self.embedder
    }

    /// Borrow the vector index.
    pub fn index_ref(&self) -> &I {
        &self.index
    }

    /// Reassemble from persisted parts: an embedder and an already-built
    /// index whose ids are insertion-ordered chunk indices.
    pub fn from_parts(embedder: E, index: I) -> Self
    where
        I: sage_vecdb::VectorIndex,
    {
        let indexed = index.len();
        Self { embedder, index, indexed }
    }

    /// Embed a query without searching — the first half of
    /// [`Retriever::retrieve`], split out so callers can guard the
    /// embedding and the index lookup as separate failure domains. A
    /// batch of one through [`embed_query_batch`](Self::embed_query_batch).
    pub fn embed_query(&self, query: &str) -> Vec<f32> {
        self.embed_query_batch(&[query]).pop().unwrap_or_default()
    }

    /// Embed many queries through the [`sage_embed::EmbedBatch`] surface —
    /// the slot scheduler's coalesced-embed path. Element `i` is
    /// bit-identical to `embed_query(queries[i])`.
    pub fn embed_query_batch(&self, queries: &[&str]) -> Vec<Vec<f32>> {
        use sage_embed::EmbedBatch;
        sage_telemetry::metrics::DENSE_QUERY_EMBEDS.add(queries.len() as u64);
        self.embedder.embed_query_batch(queries)
    }

    /// Search with an already-embedded query — the second half of
    /// [`Retriever::retrieve`]. `retrieve(q, n)` is exactly
    /// `search_with(&embed_query(q), n)`.
    pub fn search_with(&self, query: &[f32], n: usize) -> Vec<ScoredChunk> {
        if self.indexed == 0 || n == 0 {
            return Vec::new();
        }
        self.index
            .search(query, n)
            .into_iter()
            .map(|h| ScoredChunk { index: h.id, score: h.score })
            .collect()
    }
}

impl<E: Embedder, I: VectorIndex> Retriever for DenseRetriever<E, I> {
    fn index(&mut self, chunks: &[String]) {
        // Rebuild from scratch: chunk ids must equal slice indices.
        self.index.clear();
        self.indexed = 0;
        for chunk in chunks {
            let v = self.embedder.embed(chunk);
            let id = self.index.add(v);
            debug_assert_eq!(id, self.indexed);
            self.indexed += 1;
        }
    }

    fn retrieve(&self, query: &str, n: usize) -> Vec<ScoredChunk> {
        if self.indexed == 0 || n == 0 {
            return Vec::new();
        }
        self.search_with(&self.embed_query(query), n)
    }

    fn len(&self) -> usize {
        self.indexed
    }

    fn name(&self) -> String {
        self.embedder.name().to_string()
    }

    fn memory_bytes(&self) -> usize {
        self.index.memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sage_embed::HashedEmbedder;
    use sage_vecdb::{FlatIndex, HnswIndex};

    fn chunks() -> Vec<String> {
        vec![
            "The cat has bright green eyes.".to_string(),
            "The dog sleeps in the yard.".to_string(),
            "Rockets fly to the moon at dawn.".to_string(),
            "The harbor town wakes early.".to_string(),
        ]
    }

    #[test]
    fn retrieves_lexically_nearest_chunk() {
        let mut r = DenseRetriever::new(HashedEmbedder::default_model(), FlatIndex::cosine());
        r.index(&chunks());
        let hits = r.retrieve("what color are the cat's eyes?", 2);
        assert_eq!(hits[0].index, 0, "{hits:?}");
        assert!(hits[0].score > hits[1].score);
    }

    #[test]
    fn works_with_hnsw_backend() {
        let mut r = DenseRetriever::new(HashedEmbedder::default_model(), HnswIndex::cosine());
        r.index(&chunks());
        let hits = r.retrieve("rockets to the moon", 1);
        assert_eq!(hits[0].index, 2);
    }

    #[test]
    fn reindex_resets_ids() {
        let mut r = DenseRetriever::new(HashedEmbedder::default_model(), FlatIndex::cosine());
        r.index(&chunks());
        r.index(&chunks()[..2]);
        assert_eq!(r.len(), 2);
        let hits = r.retrieve("dog in the yard", 5);
        assert!(hits.iter().all(|h| h.index < 2));
    }

    #[test]
    fn split_retrieval_matches_retrieve() {
        let mut r = DenseRetriever::new(HashedEmbedder::default_model(), FlatIndex::cosine());
        r.index(&chunks());
        let q = "what color are the cat's eyes?";
        let whole = r.retrieve(q, 3);
        let split = r.search_with(&r.embed_query(q), 3);
        assert_eq!(whole.len(), split.len());
        for (a, b) in whole.iter().zip(&split) {
            assert_eq!(a.index, b.index);
            assert_eq!(a.score, b.score);
        }
    }

    #[test]
    fn empty_behaviour() {
        let mut r = DenseRetriever::new(HashedEmbedder::default_model(), FlatIndex::cosine());
        r.index(&[]);
        assert!(r.retrieve("anything", 3).is_empty());
        assert!(r.is_empty());
    }
}
