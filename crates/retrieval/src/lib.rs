//! # sage-retrieval
//!
//! First-stage retrieval (paper §III-B, steps 1–4): given a question,
//! surface the N candidate chunks that the reranker will then score.
//!
//! Two retriever families, matching the paper's §VII-A lineup:
//!
//! * [`Bm25Retriever`] — a from-scratch Okapi BM25 inverted index (the
//!   paper's sparse baseline);
//! * [`DenseRetriever`] — any [`sage_embed::Embedder`] paired with any
//!   [`sage_vecdb::VectorIndex`] (OpenAI-analog / SBERT-analog /
//!   DPR-analog retrievers are all `DenseRetriever`s with different
//!   embedders).
//!
//! Both implement [`Retriever`]: index a chunk list once, then answer
//! top-N queries over it.

pub mod bm25;
pub mod dense;

pub use bm25::Bm25Retriever;
pub use dense::DenseRetriever;

/// A retrieved chunk reference: index into the indexed chunk list plus the
/// retriever's relevance score (higher = more relevant).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoredChunk {
    /// Index into the chunk list passed to [`Retriever::index`].
    pub index: usize,
    /// Retriever-specific relevance score.
    pub score: f32,
}

/// First-stage retriever over a fixed chunk list.
pub trait Retriever: Send + Sync {
    /// (Re)build the index over `chunks`. Chunk indices in
    /// [`ScoredChunk::index`] refer to this slice.
    fn index(&mut self, chunks: &[String]);

    /// Top-`n` most relevant chunks for `query`, best first.
    fn retrieve(&self, query: &str, n: usize) -> Vec<ScoredChunk>;

    /// Number of indexed chunks.
    fn len(&self) -> usize;

    /// Whether anything is indexed.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Display name for experiment tables.
    fn name(&self) -> String;

    /// Approximate index memory (for the scalability tables).
    fn memory_bytes(&self) -> usize;
}
