//! `sage-obs`: the second observability layer, built on `sage-telemetry`.
//!
//! Where `sage-telemetry` collects (histograms, counters, traces, the
//! cost ledger), this crate *interprets*: it keeps the evidence for the
//! queries that matter (the flight recorder), judges the stream against
//! declared objectives (SLO burn-rate accounting), and gates changes
//! against a committed perf trajectory (the scenario-matrix harness).
//! Everything here is deterministic by construction — retention,
//! windows, and diffs are pure functions of virtual-clock observations,
//! so soak replays and CI reruns are byte-comparable.
//!
//! - [`recorder`]: bounded, allocation-recycling ring of recent query
//!   observations with tail-based retention. Mutation is confined to this
//!   crate by the `recorder-behind-obs` lint rule; `sage-core` exposes a
//!   single bridge in its `obs` module.
//! - [`slo`]: declarative SLO specs, multi-window burn-rate alerts.
//! - [`scenario`]: scenario-file grammar, baseline rendering/parsing,
//!   tolerance-band regression diffs.
//! - [`promread`]: read-side of the Prometheus text format + the
//!   `sage top` dashboard.
//! - [`bundle`]: `sage report` diagnostics-bundle assembly and the
//!   cross-layer reconciliation checks.

pub mod bundle;
pub mod promread;
pub mod recorder;
pub mod scenario;
pub mod slo;

pub use bundle::{Bundle, Reconciliation};
pub use promread::{dashboard, parse_scrape, Scrape};
pub use recorder::{FlightRecorder, Outcome, QueryObs, RecorderConfig, RecorderStats};
pub use scenario::{
    diff_rows, parse_rows, parse_scenarios, render_rows, BenchRow, ScenarioCell, ScenarioFile,
};
pub use slo::{evaluate_slo, Objective, SloAlert, SloReport, SloSpec};
