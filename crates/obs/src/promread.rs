//! Read-side of the Prometheus text exposition format, plus the `sage
//! top` dashboard renderer.
//!
//! The exporter in `sage-telemetry` writes metrics; nothing in the repo
//! could *read* them back. `sage top --from metrics.prom` closes the loop:
//! parse a scrape, reconstruct per-family samples (including histogram
//! quantiles from cumulative `_bucket` series), and render a one-screen
//! operator view. The parser is single-shot and tolerant: `# HELP`/`#
//! TYPE` metadata is kept for display, unknown lines are skipped with a
//! count rather than an error, and escaped label values (`\\`, `\"`,
//! `\n`) are unescaped — the inverse of the exporter's
//! [`escape_label_value`](sage_telemetry::export::escape_label_value).

use std::collections::BTreeMap;

/// One parsed sample line.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Metric name (family name for `_bucket`/`_sum`/`_count` series).
    pub name: String,
    /// Label pairs in appearance order.
    pub labels: Vec<(String, String)>,
    /// Sample value.
    pub value: f64,
}

impl Sample {
    /// Label value for `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }
}

/// A parsed scrape.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Scrape {
    /// All samples, in file order.
    pub samples: Vec<Sample>,
    /// `# TYPE` declarations: family name -> kind.
    pub types: BTreeMap<String, String>,
    /// Lines that did not parse (kept as a count, not an error: a scrape
    /// with one mangled line is still mostly useful).
    pub skipped: usize,
}

impl Scrape {
    /// First sample with this exact name and no label constraints.
    pub fn value(&self, name: &str) -> Option<f64> {
        self.samples.iter().find(|s| s.name == name).map(|s| s.value)
    }

    /// Sum of all samples of a family (across label values).
    pub fn family_sum(&self, name: &str) -> f64 {
        self.samples.iter().filter(|s| s.name == name).map(|s| s.value).sum()
    }
}

fn unescape(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    let mut chars = v.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some(other) => out.push(other),
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

/// Split `name{labels}` into name and label pairs. Respects quoting and
/// escapes inside label values.
fn parse_series(head: &str) -> Option<(String, Vec<(String, String)>)> {
    let Some(brace) = head.find('{') else {
        return Some((head.trim().to_string(), Vec::new()));
    };
    let name = head[..brace].trim().to_string();
    let rest = head[brace + 1..].trim_end();
    let body = rest.strip_suffix('}')?;
    let mut labels = Vec::new();
    let mut chars = body.chars().peekable();
    loop {
        while chars.peek() == Some(&',') || chars.peek() == Some(&' ') {
            chars.next();
        }
        if chars.peek().is_none() {
            break;
        }
        let mut key = String::new();
        for c in chars.by_ref() {
            if c == '=' {
                break;
            }
            key.push(c);
        }
        if chars.next() != Some('"') {
            return None;
        }
        let mut raw = String::new();
        let mut closed = false;
        while let Some(c) = chars.next() {
            match c {
                '\\' => {
                    raw.push('\\');
                    if let Some(n) = chars.next() {
                        raw.push(n);
                    }
                }
                '"' => {
                    closed = true;
                    break;
                }
                c => raw.push(c),
            }
        }
        if !closed {
            return None;
        }
        labels.push((key.trim().to_string(), unescape(&raw)));
    }
    Some((name, labels))
}

/// Parse a text-exposition scrape.
pub fn parse_scrape(text: &str) -> Scrape {
    let mut out = Scrape::default();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(meta) = line.strip_prefix("# TYPE ") {
            let mut it = meta.split_whitespace();
            if let (Some(name), Some(kind)) = (it.next(), it.next()) {
                out.types.insert(name.to_string(), kind.to_string());
            }
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        // Value is the last whitespace-separated token; the series part is
        // everything before it (label values may themselves hold spaces).
        let Some(split_at) = line.rfind(|c: char| c.is_whitespace()) else {
            out.skipped += 1;
            continue;
        };
        let (head, value_str) = line.split_at(split_at);
        let Ok(value) = value_str.trim().parse::<f64>() else {
            out.skipped += 1;
            continue;
        };
        match parse_series(head) {
            Some((name, labels)) => out.samples.push(Sample { name, labels, value }),
            None => out.skipped += 1,
        }
    }
    out
}

/// Estimate a quantile from a family's cumulative `_bucket` samples
/// (optionally constrained to one label pair). Returns the `le` upper
/// bound of the bucket containing the quantile rank.
pub fn bucket_quantile(scrape: &Scrape, family: &str, want: Option<(&str, &str)>, q: f64) -> Option<f64> {
    let bucket_name = format!("{family}_bucket");
    let mut buckets: Vec<(f64, f64)> = scrape
        .samples
        .iter()
        .filter(|s| s.name == bucket_name)
        .filter(|s| want.is_none_or(|(k, v)| s.label(k) == Some(v)))
        .filter_map(|s| {
            let le = s.label("le")?;
            let le = if le == "+Inf" { f64::INFINITY } else { le.parse().ok()? };
            Some((le, s.value))
        })
        .collect();
    buckets.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
    let total = buckets.last()?.1;
    if total <= 0.0 {
        return None;
    }
    let rank = (q * total).ceil().max(1.0);
    buckets.iter().find(|(_, cum)| *cum >= rank).map(|(le, _)| *le)
}

fn fmt_ns(v: f64) -> String {
    if !v.is_finite() {
        return "inf".to_string();
    }
    if v >= 1e9 {
        format!("{:.2}s", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.2}ms", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.2}us", v / 1e3)
    } else {
        format!("{v:.0}ns")
    }
}

/// Render the `sage top` dashboard from a parsed scrape: query volume,
/// end-to-end and per-stage latency quantiles, admission/brownout
/// pressure, cost, and any SLO burn gauges present.
pub fn dashboard(scrape: &Scrape) -> String {
    let mut out = String::new();
    out.push_str("=== sage top ===\n");

    let queries = scrape.value("sage_queries_total").unwrap_or(0.0);
    let degrades = scrape.value("sage_degrade_events_total").unwrap_or(0.0);
    out.push_str(&format!("queries {queries:.0} | degrade events {degrades:.0}\n"));

    // End-to-end latency.
    if let Some(p50) = bucket_quantile(scrape, "sage_query_latency_ns", None, 0.50) {
        let p90 = bucket_quantile(scrape, "sage_query_latency_ns", None, 0.90).unwrap_or(p50);
        let p99 = bucket_quantile(scrape, "sage_query_latency_ns", None, 0.99).unwrap_or(p90);
        out.push_str(&format!(
            "query latency  p50 {} | p90 {} | p99 {}\n",
            fmt_ns(p50),
            fmt_ns(p90),
            fmt_ns(p99)
        ));
    }

    // Per-stage p99s, one line each, stages in scrape order.
    let mut seen_stage = Vec::new();
    for s in &scrape.samples {
        if s.name == "sage_stage_latency_ns_count" {
            if let Some(stage) = s.label("stage") {
                if !seen_stage.iter().any(|x| x == stage) {
                    seen_stage.push(stage.to_string());
                }
            }
        }
    }
    for stage in &seen_stage {
        if let Some(p99) =
            bucket_quantile(scrape, "sage_stage_latency_ns", Some(("stage", stage)), 0.99)
        {
            out.push_str(&format!("  stage {stage:<10} p99 {}\n", fmt_ns(p99)));
        }
    }

    // Admission & brownout pressure.
    let shed = scrape.family_sum("sage_shed_total");
    let brown = scrape.family_sum("sage_brownout_total");
    let mut pressure: Vec<String> = Vec::new();
    for s in &scrape.samples {
        if s.name == "sage_shed_total" && s.value > 0.0 {
            if let Some(class) = s.label("class") {
                pressure.push(format!("shed[{class}]={:.0}", s.value));
            }
        }
        if s.name == "sage_brownout_total" && s.value > 0.0 {
            if let Some(stage) = s.label("stage") {
                pressure.push(format!("brownout[{stage}]={:.0}", s.value));
            }
        }
    }
    out.push_str(&format!("pressure       shed {shed:.0} | brownout steps {brown:.0}"));
    if !pressure.is_empty() {
        out.push_str(&format!("  ({})", pressure.join(" ")));
    }
    out.push('\n');

    // Cost.
    let calls = scrape.family_sum("sage_cost_calls_total");
    let tokens = scrape.family_sum("sage_cost_tokens_total");
    if calls > 0.0 {
        out.push_str(&format!("cost           {calls:.0} calls | {tokens:.0} tokens"));
        let dollars = scrape.family_sum("sage_cost_dollars");
        if dollars > 0.0 {
            out.push_str(&format!(" | ${dollars:.6}"));
        }
        out.push('\n');
    }

    // SLO gauges, if the scrape carries them.
    let mut slo_lines = Vec::new();
    for s in &scrape.samples {
        if s.name == "sage_slo_burn_rate" {
            if let Some(obj) = s.label("objective") {
                slo_lines.push(format!("  slo {obj:<20} burn {:.2}", s.value));
            }
        }
    }
    if !slo_lines.is_empty() {
        out.push_str("slo burn rates\n");
        for l in slo_lines {
            out.push_str(&l);
            out.push('\n');
        }
    }

    // Lint phase cost, if the scrape came from `sage lint --metrics-out`.
    let mut lint_lines = Vec::new();
    let mut lint_total = 0.0;
    for s in &scrape.samples {
        if s.name == "sage_lint_phase_ns" {
            if let Some(phase) = s.label("phase") {
                lint_lines.push(format!("  lint {phase:<20} {}", fmt_ns(s.value)));
                lint_total += s.value;
            }
        }
    }
    if !lint_lines.is_empty() {
        out.push_str(&format!("lint phase cost (total {})\n", fmt_ns(lint_total)));
        for l in lint_lines {
            out.push_str(&l);
            out.push('\n');
        }
    }

    if scrape.skipped > 0 {
        out.push_str(&format!("({} unparseable line(s) skipped)\n", scrape.skipped));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SCRAPE: &str = "\
# HELP sage_queries_total Queries answered
# TYPE sage_queries_total counter
sage_queries_total 12
# TYPE sage_query_latency_ns histogram
sage_query_latency_ns_bucket{le=\"1023\"} 6
sage_query_latency_ns_bucket{le=\"4095\"} 11
sage_query_latency_ns_bucket{le=\"+Inf\"} 12
sage_query_latency_ns_sum 30000
sage_query_latency_ns_count 12
sage_shed_total{class=\"interactive\"} 3
sage_slo_burn_rate{objective=\"shed\"} 1.50
";

    #[test]
    fn parses_names_labels_and_values() {
        let s = parse_scrape(SCRAPE);
        assert_eq!(s.skipped, 0);
        assert_eq!(s.value("sage_queries_total"), Some(12.0));
        assert_eq!(s.types.get("sage_queries_total").map(String::as_str), Some("counter"));
        let shed = s.samples.iter().find(|x| x.name == "sage_shed_total").unwrap();
        assert_eq!(shed.label("class"), Some("interactive"));
    }

    #[test]
    fn unescapes_hostile_label_values() {
        let escaped = sage_telemetry::export::escape_label_value("ev\"il\\x\ny");
        let text = format!("m{{who=\"{escaped}\"}} 1\n");
        let s = parse_scrape(&text);
        assert_eq!(s.skipped, 0, "{text}");
        assert_eq!(s.samples[0].label("who"), Some("ev\"il\\x\ny"));
    }

    #[test]
    fn quantiles_from_cumulative_buckets() {
        let s = parse_scrape(SCRAPE);
        assert_eq!(bucket_quantile(&s, "sage_query_latency_ns", None, 0.50), Some(1023.0));
        assert_eq!(bucket_quantile(&s, "sage_query_latency_ns", None, 0.90), Some(4095.0));
        assert_eq!(
            bucket_quantile(&s, "sage_query_latency_ns", None, 0.999),
            Some(f64::INFINITY)
        );
    }

    #[test]
    fn dashboard_renders_key_sections() {
        let text = dashboard(&parse_scrape(SCRAPE));
        assert!(text.contains("queries 12"), "{text}");
        assert!(text.contains("query latency  p50 1.02us"), "{text}");
        assert!(text.contains("shed 3"), "{text}");
        assert!(text.contains("slo shed"), "{text}");
    }

    #[test]
    fn dashboard_shows_lint_phase_cost_when_present() {
        let plain = dashboard(&parse_scrape(SCRAPE));
        assert!(!plain.contains("lint phase cost"), "{plain}");
        let metrics = sage_telemetry::export::lint_phases(&[("scan", 2_000_000), ("callgraph", 500_000)]);
        let text = dashboard(&parse_scrape(&metrics));
        assert!(text.contains("lint phase cost (total 2.50ms)"), "{text}");
        assert!(text.contains("lint scan"), "{text}");
        assert!(text.contains("2.00ms"), "{text}");
    }

    #[test]
    fn mangled_lines_are_counted_not_fatal(){
        let s = parse_scrape("good 1\nbad_line_no_value\nworse{unclosed 2\n");
        assert_eq!(s.samples.len(), 1);
        assert_eq!(s.skipped, 2);
    }
}
