//! Declarative SLOs evaluated over virtual-clock windows, with
//! multi-window burn-rate alerting.
//!
//! An [`SloSpec`] names objectives over the per-query observation stream
//! ([`QueryObs`]): a p99 sojourn ceiling (overall and per-class for
//! interactive traffic), a shed-rate ceiling, a brownout-depth ceiling,
//! and an answer-quality floor. Each objective is evaluated as an *error
//! budget*: the allowed fraction of bad events. The **burn rate** of a
//! window is `bad_fraction / budget` — burn 1.0 consumes the budget
//! exactly, burn 2.0 twice as fast.
//!
//! Alerting follows the multi-window rule: an alert fires at the end of a
//! short window whose burn is ≥ the threshold **and** whose enclosing long
//! window also burns ≥ the threshold. The short window makes alerts
//! responsive; the long window suppresses one-off blips. All windows are
//! cut on the **virtual clock** (query completion offsets), so evaluation
//! is a pure function of the observation stream and replays exactly.

use crate::recorder::{Outcome, QueryObs};

/// One declarative SLO document: objectives plus window/alert tuning.
#[derive(Debug, Clone, PartialEq)]
pub struct SloSpec {
    /// Sojourn ceiling in milliseconds breached by at most `budget` of
    /// queries (the "p99" target when `budget` is 0.01).
    pub latency_ms: Option<u64>,
    /// Sojourn ceiling for the interactive class only.
    pub interactive_ms: Option<u64>,
    /// Allowed shed fraction of arrivals.
    pub shed_rate: Option<f64>,
    /// Deepest allowed brownout rung (queries beyond it are bad events).
    pub brownout_rung: Option<u8>,
    /// Answer-quality floor: completed queries whose confidence
    /// (milli-units) falls below this are bad events.
    pub min_confidence_milli: Option<u32>,
    /// Short alert window, virtual seconds.
    pub short_s: u64,
    /// Long alert window, virtual seconds.
    pub long_s: u64,
    /// Burn-rate threshold for alerting (both windows must exceed it).
    pub burn_threshold: f64,
    /// Error budget: allowed bad-event fraction for the latency, brownout
    /// and quality objectives (shed has its own explicit rate).
    pub budget: f64,
}

impl Default for SloSpec {
    fn default() -> Self {
        Self {
            latency_ms: Some(30_000),
            interactive_ms: Some(15_000),
            shed_rate: Some(0.5),
            brownout_rung: Some(3),
            min_confidence_milli: Some(1),
            short_s: 5,
            long_s: 30,
            burn_threshold: 1.0,
            budget: 0.01,
        }
    }
}

impl SloSpec {
    /// Parse a `key=value,key=value` spec, e.g.
    /// `latency_ms=250,interactive_ms=100,shed_rate=0.2,brownout_rung=2,`
    /// `min_confidence=500,short_s=5,long_s=30,burn=2,budget=0.01`.
    /// Omitted keys keep their defaults; `off` disables an objective.
    pub fn parse(spec: &str) -> Result<SloSpec, String> {
        let mut out = SloSpec::default();
        for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("bad SLO clause `{part}` (expected key=value)"))?;
            let (key, value) = (key.trim(), value.trim());
            let off = value == "off";
            let num = |v: &str| -> Result<f64, String> {
                v.parse::<f64>().map_err(|_| format!("bad SLO value `{v}` for `{key}`"))
            };
            match key {
                "latency_ms" => out.latency_ms = if off { None } else { Some(num(value)? as u64) },
                "interactive_ms" => {
                    out.interactive_ms = if off { None } else { Some(num(value)? as u64) }
                }
                "shed_rate" => out.shed_rate = if off { None } else { Some(num(value)?) },
                "brownout_rung" => {
                    out.brownout_rung = if off { None } else { Some(num(value)? as u8) }
                }
                "min_confidence" => {
                    out.min_confidence_milli = if off { None } else { Some(num(value)? as u32) }
                }
                "short_s" => out.short_s = (num(value)? as u64).max(1),
                "long_s" => out.long_s = (num(value)? as u64).max(1),
                "burn" => out.burn_threshold = num(value)?,
                "budget" => {
                    let b = num(value)?;
                    if b <= 0.0 || b > 1.0 {
                        return Err(format!("SLO budget must be in (0, 1], got {b}"));
                    }
                    out.budget = b;
                }
                other => return Err(format!("unknown SLO key `{other}`")),
            }
        }
        if out.long_s < out.short_s {
            return Err(format!(
                "SLO long window ({}s) must be >= short window ({}s)",
                out.long_s, out.short_s
            ));
        }
        Ok(out)
    }

    /// The objectives this spec activates, with their error budgets.
    fn objectives(&self) -> Vec<(Objective, f64)> {
        let mut out = Vec::new();
        if self.latency_ms.is_some() {
            out.push((Objective::Latency, self.budget));
        }
        if self.interactive_ms.is_some() {
            out.push((Objective::InteractiveLatency, self.budget));
        }
        if let Some(rate) = self.shed_rate {
            out.push((Objective::Shed, rate.max(f64::EPSILON)));
        }
        if self.brownout_rung.is_some() {
            out.push((Objective::Brownout, self.budget));
        }
        if self.min_confidence_milli.is_some() {
            out.push((Objective::Quality, self.budget));
        }
        out
    }
}

/// The SLO dimensions a spec may activate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Objective {
    /// Overall sojourn ceiling.
    Latency,
    /// Interactive-class sojourn ceiling.
    InteractiveLatency,
    /// Admission shed rate.
    Shed,
    /// Brownout depth ceiling.
    Brownout,
    /// Answer-quality floor.
    Quality,
}

impl Objective {
    /// Stable label used in gauges, trace events, and reports.
    pub fn label(self) -> &'static str {
        match self {
            Objective::Latency => "latency",
            Objective::InteractiveLatency => "latency-interactive",
            Objective::Shed => "shed",
            Objective::Brownout => "brownout",
            Objective::Quality => "quality",
        }
    }
}

/// Per-objective totals over the whole run.
#[derive(Debug, Clone, PartialEq)]
pub struct ObjectiveReport {
    /// Which objective.
    pub objective: Objective,
    /// Events the objective applied to.
    pub total: u64,
    /// Events that violated it.
    pub bad: u64,
    /// Error budget in effect.
    pub budget: f64,
    /// Worst short-window burn rate observed.
    pub max_burn: f64,
    /// Alerts attributed to this objective.
    pub alerts: u64,
}

impl ObjectiveReport {
    /// Whole-run burn rate: bad fraction over budget.
    pub fn run_burn(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        (self.bad as f64 / self.total as f64) / self.budget
    }
}

/// One multi-window burn alert.
#[derive(Debug, Clone, PartialEq)]
pub struct SloAlert {
    /// Virtual time (microseconds) of the short window's end.
    pub at_us: u64,
    /// The objective that burned.
    pub objective: Objective,
    /// Burn over the short window ending at `at_us`.
    pub short_burn: f64,
    /// Burn over the long window ending at `at_us`.
    pub long_burn: f64,
}

/// The result of evaluating one spec against one observation stream.
#[derive(Debug, Clone, PartialEq)]
pub struct SloReport {
    /// The spec evaluated.
    pub spec: SloSpec,
    /// Per-objective totals.
    pub objectives: Vec<ObjectiveReport>,
    /// Multi-window alerts, in virtual-time order.
    pub alerts: Vec<SloAlert>,
    /// Observations evaluated.
    pub observed: u64,
    /// Shed events counted (for reconciliation against the admission
    /// counters and the soak report).
    pub shed_seen: u64,
    /// Brownout steps beyond rung 0 counted (reconciles against the
    /// brownout ladder counters' per-query final levels).
    pub browned_out_seen: u64,
}

impl SloReport {
    /// Whether any alert fired.
    pub fn alerting(&self) -> bool {
        !self.alerts.is_empty()
    }

    /// Render the report's gauges as Prometheus text exposition lines
    /// (appended to the telemetry exporter's output by `sage report`).
    pub fn gauges(&self) -> String {
        let mut out = String::new();
        out.push_str("# HELP sage_slo_burn_rate Whole-run SLO burn rate by objective\n");
        out.push_str("# TYPE sage_slo_burn_rate gauge\n");
        for o in &self.objectives {
            out.push_str(&format!(
                "sage_slo_burn_rate{{objective=\"{}\"}} {:.6}\n",
                sage_telemetry::export::escape_label_value(o.objective.label()),
                o.run_burn()
            ));
        }
        out.push_str("# HELP sage_slo_alerts_total Multi-window burn alerts by objective\n");
        out.push_str("# TYPE sage_slo_alerts_total counter\n");
        for o in &self.objectives {
            out.push_str(&format!(
                "sage_slo_alerts_total{{objective=\"{}\"}} {}\n",
                sage_telemetry::export::escape_label_value(o.objective.label()),
                o.alerts
            ));
        }
        out
    }

    /// Record every alert as an event on a synthetic trace, so alert
    /// history travels with the JSONL trace export. The caller pushes the
    /// returned trace into a [`sage_telemetry::Telemetry`] hub.
    pub fn alert_trace(&self) -> Option<sage_telemetry::Trace> {
        if self.alerts.is_empty() {
            return None;
        }
        let mut t = sage_telemetry::Trace::start("slo-alerts");
        for a in &self.alerts {
            let id = t.event("slo-burn-alert");
            t.field(id, "objective", a.objective.label());
            t.field(id, "at_us", a.at_us);
            t.field(id, "short_burn", a.short_burn);
            t.field(id, "long_burn", a.long_burn);
        }
        Some(t)
    }

    /// Multi-line human summary.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "slo: {} observation(s), {} alert(s)\n",
            self.observed,
            self.alerts.len()
        ));
        for o in &self.objectives {
            out.push_str(&format!(
                "  {:<20} bad {}/{} | budget {:.3} | run burn {:.2} | max short burn {:.2} | alerts {}\n",
                o.objective.label(),
                o.bad,
                o.total,
                o.budget,
                o.run_burn(),
                o.max_burn,
                o.alerts
            ));
        }
        out
    }
}

/// Is `obs` a bad event for `objective` under `spec`? `None` when the
/// objective does not apply to this observation (it is excluded from the
/// window's total).
fn judge(spec: &SloSpec, objective: Objective, obs: &QueryObs) -> Option<bool> {
    let ran = matches!(obs.outcome, Outcome::Done | Outcome::Error | Outcome::Panicked);
    match objective {
        Objective::Latency => {
            let ceiling = spec.latency_ms?;
            ran.then(|| obs.sojourn_ns > ceiling * 1_000_000)
        }
        Objective::InteractiveLatency => {
            let ceiling = spec.interactive_ms?;
            (ran && obs.class == "interactive").then(|| obs.sojourn_ns > ceiling * 1_000_000)
        }
        // Every arrival counts; shed/expired are the bad ones.
        Objective::Shed => Some(matches!(obs.outcome, Outcome::Shed | Outcome::Expired)),
        Objective::Brownout => {
            let rung = spec.brownout_rung?;
            (obs.outcome == Outcome::Done).then_some(obs.brownout > rung)
        }
        Objective::Quality => {
            let floor = spec.min_confidence_milli?;
            (obs.outcome == Outcome::Done).then_some(obs.confidence_milli < floor)
        }
    }
}

/// Evaluate `spec` over an observation stream. Pure: windows are cut on
/// the virtual completion clock (`end_us`), so two identical streams
/// produce identical reports, alerts included.
pub fn evaluate_slo(spec: &SloSpec, observations: &[QueryObs]) -> SloReport {
    let objectives = spec.objectives();
    let mut reports: Vec<ObjectiveReport> = objectives
        .iter()
        .map(|&(objective, budget)| ObjectiveReport {
            objective,
            total: 0,
            bad: 0,
            budget,
            max_burn: 0.0,
            alerts: 0,
        })
        .collect();
    let mut alerts: Vec<SloAlert> = Vec::new();
    let mut shed_seen = 0u64;
    let mut browned_out_seen = 0u64;

    let horizon_us = observations.iter().map(|o| o.end_us).max().unwrap_or(0);
    let short_us = spec.short_s * 1_000_000;
    let long_us = spec.long_s * 1_000_000;

    for obs in observations {
        if matches!(obs.outcome, Outcome::Shed | Outcome::Expired) {
            shed_seen += 1;
        }
        if obs.outcome == Outcome::Done && obs.brownout > 0 {
            browned_out_seen += 1;
        }
        for rep in reports.iter_mut() {
            if let Some(bad) = judge(spec, rep.objective, obs) {
                rep.total += 1;
                rep.bad += u64::from(bad);
            }
        }
    }

    // Walk short-window boundaries over the virtual horizon. Windows are
    // aligned to the short width, so the grid (and therefore every alert
    // time) is a pure function of the stream.
    let mut end = short_us;
    while end <= horizon_us + short_us {
        for rep in reports.iter_mut() {
            let burn_over = |from: u64, to: u64| -> f64 {
                let mut total = 0u64;
                let mut bad = 0u64;
                for obs in observations {
                    if obs.end_us >= from && obs.end_us < to {
                        if let Some(b) = judge(spec, rep.objective, obs) {
                            total += 1;
                            bad += u64::from(b);
                        }
                    }
                }
                if total == 0 {
                    0.0
                } else {
                    (bad as f64 / total as f64) / rep.budget
                }
            };
            let short_burn = burn_over(end.saturating_sub(short_us), end);
            let long_burn = burn_over(end.saturating_sub(long_us), end);
            if short_burn > rep.max_burn {
                rep.max_burn = short_burn;
            }
            if short_burn >= spec.burn_threshold && long_burn >= spec.burn_threshold {
                rep.alerts += 1;
                alerts.push(SloAlert { at_us: end, objective: rep.objective, short_burn, long_burn });
            }
        }
        end += short_us;
    }
    alerts.sort_by(|a, b| a.at_us.cmp(&b.at_us).then(a.objective.label().cmp(b.objective.label())));

    SloReport {
        spec: spec.clone(),
        objectives: reports,
        alerts,
        observed: observations.len() as u64,
        shed_seen,
        browned_out_seen,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn done(seq: u64, end_us: u64, sojourn_ms: u64) -> QueryObs {
        QueryObs {
            seq,
            class: "batch",
            arrival_us: end_us.saturating_sub(sojourn_ms * 1000),
            end_us,
            sojourn_ns: sojourn_ms * 1_000_000,
            service_ns: sojourn_ms * 1_000_000,
            outcome: Outcome::Done,
            brownout: 0,
            degraded: 0,
            deadline_missed: false,
            tokens: 10,
            confidence_milli: 800,
            question: String::new(),
        }
    }

    fn shed(seq: u64, end_us: u64) -> QueryObs {
        QueryObs {
            outcome: Outcome::Shed,
            sojourn_ns: 0,
            service_ns: 0,
            confidence_milli: 0,
            ..done(seq, end_us, 0)
        }
    }

    #[test]
    fn parse_round_trips_and_rejects_garbage() {
        let s = SloSpec::parse("latency_ms=250,shed_rate=0.2,burn=2,budget=0.05").unwrap();
        assert_eq!(s.latency_ms, Some(250));
        assert_eq!(s.shed_rate, Some(0.2));
        assert_eq!(s.burn_threshold, 2.0);
        assert_eq!(s.budget, 0.05);
        let off = SloSpec::parse("latency_ms=off").unwrap();
        assert_eq!(off.latency_ms, None);
        assert!(SloSpec::parse("latency_ms").is_err());
        assert!(SloSpec::parse("nope=1").is_err());
        assert!(SloSpec::parse("budget=0").is_err());
        assert!(SloSpec::parse("short_s=10,long_s=5").is_err());
    }

    #[test]
    fn healthy_stream_never_alerts() {
        let spec = SloSpec::parse("latency_ms=1000,shed_rate=0.5").unwrap();
        let obs: Vec<QueryObs> = (0..100).map(|s| done(s, s * 200_000, 10)).collect();
        let r = evaluate_slo(&spec, &obs);
        assert!(!r.alerting(), "{:?}", r.alerts);
        assert_eq!(r.shed_seen, 0);
        for o in &r.objectives {
            assert_eq!(o.bad, 0);
        }
    }

    #[test]
    fn sustained_shedding_fires_multi_window_alert() {
        let spec = SloSpec::parse("shed_rate=0.1,short_s=5,long_s=10,burn=1").unwrap();
        // 50% shed for 60 virtual seconds: burns 5x budget everywhere.
        let mut obs = Vec::new();
        for s in 0..120u64 {
            let end = s * 500_000;
            if s % 2 == 0 {
                obs.push(shed(s, end));
            } else {
                obs.push(done(s, end, 10));
            }
        }
        let r = evaluate_slo(&spec, &obs);
        assert!(r.alerting());
        let shed_rep =
            r.objectives.iter().find(|o| o.objective == Objective::Shed).unwrap();
        assert!(shed_rep.alerts > 1, "sustained burn must alert repeatedly");
        assert!(shed_rep.max_burn > 4.0);
        assert_eq!(r.shed_seen, 60);
    }

    #[test]
    fn short_blip_is_suppressed_by_long_window() {
        let spec = SloSpec::parse("shed_rate=0.1,short_s=5,long_s=60,burn=1").unwrap();
        // One bad short window inside a long healthy run.
        let mut obs = Vec::new();
        for s in 0..600u64 {
            let end = s * 100_000; // 10 per second for 60s
            if (100..110).contains(&s) {
                obs.push(shed(s, end));
            } else {
                obs.push(done(s, end, 10));
            }
        }
        let r = evaluate_slo(&spec, &obs);
        let shed_rep =
            r.objectives.iter().find(|o| o.objective == Objective::Shed).unwrap();
        assert!(shed_rep.max_burn >= 1.0, "short window did burn");
        assert_eq!(shed_rep.alerts, 0, "long window must suppress the blip");
    }

    #[test]
    fn evaluation_is_deterministic() {
        let spec = SloSpec::default();
        let obs: Vec<QueryObs> =
            (0..50).map(|s| if s % 7 == 0 { shed(s, s * 90_000) } else { done(s, s * 90_000, 20) }).collect();
        assert_eq!(evaluate_slo(&spec, &obs), evaluate_slo(&spec, &obs));
    }

    #[test]
    fn gauges_and_trace_render() {
        let spec = SloSpec::parse("shed_rate=0.01,short_s=1,long_s=1,burn=1").unwrap();
        let obs: Vec<QueryObs> = (0..10).map(|s| shed(s, s * 100_000)).collect();
        let r = evaluate_slo(&spec, &obs);
        let g = r.gauges();
        assert!(g.contains("sage_slo_burn_rate{objective=\"shed\"}"), "{g}");
        assert!(g.contains("sage_slo_alerts_total{objective=\"shed\"}"), "{g}");
        let t = r.alert_trace().expect("alerts fired");
        let mut json = String::new();
        t.write_json(&mut json);
        assert!(json.contains("slo-burn-alert"), "{json}");
    }
}
