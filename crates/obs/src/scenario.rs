//! Scenario-matrix grammar, baseline format, and regression differ.
//!
//! A scenario file is a declarative grid of cells, each one a point in
//! dataset × retriever × fault-plan × budget × load-shape space. This
//! module owns the *pure* half of the harness: parsing the file
//! (a small TOML subset — no TOML dependency), rendering result rows to
//! the committed `BENCH_scenarios.json` baseline format, parsing a
//! baseline back, and diffing two row sets under per-metric tolerance
//! bands. Actually *running* a cell needs the pipeline and lives in
//! `sage-core`; the CLI glues the two together.
//!
//! ## File grammar
//!
//! ```toml
//! # comments and blank lines are ignored
//! [defaults]            # optional; seeds every cell's axes
//! dataset = "quality"
//! qps = 3
//!
//! [[cell]]              # one grid row; `name` is required and unique
//! name = "smoke-base"
//! duration_s = 10
//!
//! [tolerance]           # optional; relative bands per metric (0 = exact)
//! p99_us = 0.10
//! ```
//!
//! Values are quoted strings, integers, floats, or `true`/`false`.
//! Unknown keys are errors — a typo must not silently widen a band or
//! drop an axis.

use std::collections::BTreeMap;

/// One cell of the scenario grid, fully resolved against `[defaults]`.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioCell {
    /// Unique row name; keys the baseline diff and metric labels.
    pub name: String,
    /// Dataset family: `quality`, `qasper`, or `narrativeqa`.
    pub dataset: String,
    /// Synthetic corpus size in documents.
    pub docs: u64,
    /// Retriever axis: `openai`, `sbert`, `dpr`, or `bm25`.
    pub retriever: String,
    /// Fault-plan spec (`FaultPlan::parse_spec` grammar); empty = none.
    pub faults: String,
    /// Seed for the corpus, arrivals, and fault plan.
    pub seed: u64,
    /// Soak duration, virtual seconds.
    pub duration_s: u64,
    /// Offered load, queries per virtual second.
    pub qps: u64,
    /// Admission queue capacity.
    pub capacity: u64,
    /// Service concurrency.
    pub concurrency: u64,
    /// Shard fault domains (scatter-gather serving + per-shard soak
    /// pools); 1 = unsharded.
    pub shards: u64,
    /// Real executor threads per soak dispatch wave (cross-query slot
    /// scheduler); 1 = sequential. Never changes measured metrics — the
    /// axis exists to pin that invariance into the committed baseline.
    pub exec_workers: u64,
    /// Per-query deadline budget, milliseconds.
    pub deadline_ms: u64,
    /// Per-query token budget.
    pub max_tokens: u64,
}

impl Default for ScenarioCell {
    fn default() -> Self {
        Self {
            name: String::new(),
            dataset: "quality".to_string(),
            docs: 2,
            retriever: "openai".to_string(),
            faults: String::new(),
            seed: 42,
            duration_s: 10,
            qps: 3,
            capacity: 8,
            concurrency: 2,
            shards: 1,
            exec_workers: 1,
            deadline_ms: 8_000,
            max_tokens: 4_000,
        }
    }
}

/// A parsed scenario file: the resolved grid plus tolerance bands.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ScenarioFile {
    /// Grid rows in file order.
    pub cells: Vec<ScenarioCell>,
    /// Relative tolerance per metric name (absent = exact match).
    pub tolerance: BTreeMap<String, f64>,
}

#[derive(Debug, Clone, PartialEq)]
enum Value {
    Str(String),
    Num(f64),
    Bool(bool),
}

fn parse_value(raw: &str, line_no: usize) -> Result<Value, String> {
    let raw = raw.trim();
    if let Some(rest) = raw.strip_prefix('"') {
        let inner = rest
            .strip_suffix('"')
            .ok_or_else(|| format!("line {line_no}: unterminated string {raw}"))?;
        if inner.contains('"') {
            return Err(format!("line {line_no}: embedded quote in string {raw}"));
        }
        return Ok(Value::Str(inner.to_string()));
    }
    match raw {
        "true" => return Ok(Value::Bool(true)),
        "false" => return Ok(Value::Bool(false)),
        _ => {}
    }
    raw.parse::<f64>()
        .map(Value::Num)
        .map_err(|_| format!("line {line_no}: bad value `{raw}` (string, number, or bool)"))
}

fn as_str(v: &Value, key: &str) -> Result<String, String> {
    match v {
        Value::Str(s) => Ok(s.clone()),
        _ => Err(format!("key `{key}` expects a quoted string")),
    }
}

fn as_u64(v: &Value, key: &str) -> Result<u64, String> {
    match v {
        Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Ok(*n as u64),
        _ => Err(format!("key `{key}` expects a non-negative integer")),
    }
}

fn apply(cell: &mut ScenarioCell, key: &str, v: &Value) -> Result<(), String> {
    match key {
        "name" => cell.name = as_str(v, key)?,
        "dataset" => cell.dataset = as_str(v, key)?,
        "docs" => cell.docs = as_u64(v, key)?,
        "retriever" => cell.retriever = as_str(v, key)?,
        "faults" => cell.faults = as_str(v, key)?,
        "seed" => cell.seed = as_u64(v, key)?,
        "duration_s" => cell.duration_s = as_u64(v, key)?,
        "qps" => cell.qps = as_u64(v, key)?,
        "capacity" => cell.capacity = as_u64(v, key)?,
        "concurrency" => cell.concurrency = as_u64(v, key)?,
        "shards" => cell.shards = as_u64(v, key)?,
        "exec_workers" => cell.exec_workers = as_u64(v, key)?,
        "deadline_ms" => cell.deadline_ms = as_u64(v, key)?,
        "max_tokens" => cell.max_tokens = as_u64(v, key)?,
        other => return Err(format!("unknown cell key `{other}`")),
    }
    Ok(())
}

/// Parse a scenario file. Errors carry line numbers and never panic on
/// hostile input.
pub fn parse_scenarios(text: &str) -> Result<ScenarioFile, String> {
    #[derive(PartialEq)]
    enum Section {
        None,
        Defaults,
        Cell,
        Tolerance,
    }
    let mut section = Section::None;
    let mut defaults = ScenarioCell::default();
    let mut raw_cells: Vec<Vec<(String, Value, usize)>> = Vec::new();
    let mut tolerance = BTreeMap::new();

    for (i, raw_line) in text.lines().enumerate() {
        let line_no = i + 1;
        // Strip the comment: the first `#` not inside a quoted value.
        let mut in_quotes = false;
        let cut = raw_line
            .char_indices()
            .find(|&(_, c)| {
                if c == '"' {
                    in_quotes = !in_quotes;
                }
                c == '#' && !in_quotes
            })
            .map_or(raw_line.len(), |(i, _)| i);
        let line = raw_line[..cut].trim();
        if line.is_empty() {
            continue;
        }
        match line {
            "[defaults]" => section = Section::Defaults,
            "[[cell]]" => {
                section = Section::Cell;
                raw_cells.push(Vec::new());
            }
            "[tolerance]" => section = Section::Tolerance,
            _ if line.starts_with('[') => {
                return Err(format!("line {line_no}: unknown section {line}"));
            }
            _ => {
                let (key, value) = line
                    .split_once('=')
                    .ok_or_else(|| format!("line {line_no}: expected key = value, got `{line}`"))?;
                let key = key.trim().to_string();
                let value = parse_value(value, line_no)?;
                match section {
                    Section::None => {
                        return Err(format!("line {line_no}: key outside any section"));
                    }
                    Section::Defaults => {
                        if key == "name" {
                            return Err(format!("line {line_no}: `name` not allowed in [defaults]"));
                        }
                        apply(&mut defaults, &key, &value)
                            .map_err(|e| format!("line {line_no}: {e}"))?;
                    }
                    Section::Cell => {
                        raw_cells.last_mut().unwrap().push((key, value, line_no));
                    }
                    Section::Tolerance => match value {
                        Value::Num(n) if (0.0..=1.0).contains(&n) => {
                            tolerance.insert(key, n);
                        }
                        _ => {
                            return Err(format!(
                                "line {line_no}: tolerance for `{key}` must be in [0, 1]"
                            ));
                        }
                    },
                }
            }
        }
    }

    let mut cells = Vec::new();
    let mut seen = std::collections::BTreeSet::new();
    for (idx, raw) in raw_cells.into_iter().enumerate() {
        let mut cell = defaults.clone();
        for (key, value, line_no) in &raw {
            apply(&mut cell, key, value).map_err(|e| format!("line {line_no}: {e}"))?;
        }
        if cell.name.is_empty() {
            return Err(format!("cell #{} has no `name`", idx + 1));
        }
        if !seen.insert(cell.name.clone()) {
            return Err(format!("duplicate cell name `{}`", cell.name));
        }
        cells.push(cell);
    }
    if cells.is_empty() {
        return Err("scenario file declares no [[cell]]".to_string());
    }
    Ok(ScenarioFile { cells, tolerance })
}

/// One measured grid row: the cell name plus ordered metric pairs. Metric
/// values are stored as their *rendered* strings so baseline bytes are
/// exactly reproducible; the differ parses them back to numbers.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRow {
    /// The cell name this row measures.
    pub name: String,
    /// `(metric, rendered value)` in emission order.
    pub metrics: Vec<(String, String)>,
}

impl BenchRow {
    /// Start a row for `name`.
    pub fn new(name: &str) -> Self {
        Self { name: name.to_string(), metrics: Vec::new() }
    }

    /// Append an integer metric.
    pub fn push_u64(&mut self, key: &str, v: u64) {
        self.metrics.push((key.to_string(), v.to_string()));
    }

    /// Append a fixed-precision float metric (4 decimal places — enough
    /// for scores in [0,1], and byte-stable).
    pub fn push_f64(&mut self, key: &str, v: f64) {
        self.metrics.push((key.to_string(), format!("{v:.4}")));
    }

    /// Metric value parsed as a number, if present.
    pub fn get(&self, key: &str) -> Option<f64> {
        self.metrics.iter().find(|(k, _)| k == key).and_then(|(_, v)| v.parse().ok())
    }

    /// Render the row as one JSON object (insertion order, no escaping
    /// surprises — the name goes through the shared JSON string writer).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"name\": ");
        sage_telemetry::span::write_json_str(&self.name, &mut out);
        for (k, v) in &self.metrics {
            out.push_str(", ");
            sage_telemetry::span::write_json_str(k, &mut out);
            out.push_str(": ");
            out.push_str(v);
        }
        out.push('}');
        out
    }
}

/// Render rows as the committed `BENCH_scenarios.json` baseline: a JSON
/// array, one object per row, stable formatting.
pub fn render_rows(rows: &[BenchRow]) -> String {
    let body: Vec<String> = rows.iter().map(|r| r.to_json()).collect();
    format!("[\n  {}\n]\n", body.join(",\n  "))
}

/// Parse a baseline produced by [`render_rows`]. Tolerates arbitrary
/// whitespace but requires the same flat shape: an array of objects whose
/// values are strings or numbers.
pub fn parse_rows(text: &str) -> Result<Vec<BenchRow>, String> {
    let mut rows = Vec::new();
    let bytes: Vec<char> = text.chars().collect();
    let mut i = 0usize;
    let skip_ws = |i: &mut usize| {
        while *i < bytes.len() && bytes[*i].is_whitespace() {
            *i += 1;
        }
    };
    let parse_string = |i: &mut usize| -> Result<String, String> {
        if bytes.get(*i) != Some(&'"') {
            return Err(format!("expected string at offset {i:?}"));
        }
        *i += 1;
        let mut s = String::new();
        while let Some(&c) = bytes.get(*i) {
            *i += 1;
            match c {
                '"' => return Ok(s),
                '\\' => {
                    let esc = bytes.get(*i).copied().ok_or("truncated escape")?;
                    *i += 1;
                    s.push(match esc {
                        'n' => '\n',
                        'r' => '\r',
                        't' => '\t',
                        other => other,
                    });
                }
                c => s.push(c),
            }
        }
        Err("unterminated string".to_string())
    };

    skip_ws(&mut i);
    if bytes.get(i) != Some(&'[') {
        return Err("baseline must be a JSON array".to_string());
    }
    i += 1;
    loop {
        skip_ws(&mut i);
        match bytes.get(i) {
            Some(']') => break,
            Some(',') => {
                i += 1;
                continue;
            }
            Some('{') => {
                i += 1;
                let mut row = BenchRow::new("");
                loop {
                    skip_ws(&mut i);
                    match bytes.get(i) {
                        Some('}') => {
                            i += 1;
                            break;
                        }
                        Some(',') => {
                            i += 1;
                            continue;
                        }
                        Some('"') => {
                            let key = parse_string(&mut i)?;
                            skip_ws(&mut i);
                            if bytes.get(i) != Some(&':') {
                                return Err(format!("missing `:` after key {key}"));
                            }
                            i += 1;
                            skip_ws(&mut i);
                            if bytes.get(i) == Some(&'"') {
                                let v = parse_string(&mut i)?;
                                if key == "name" {
                                    row.name = v;
                                } else {
                                    row.metrics.push((key, v));
                                }
                            } else {
                                let start = i;
                                while bytes
                                    .get(i)
                                    .is_some_and(|c| !c.is_whitespace() && *c != ',' && *c != '}')
                                {
                                    i += 1;
                                }
                                let raw: String = bytes[start..i].iter().collect();
                                raw.parse::<f64>()
                                    .map_err(|_| format!("bad number `{raw}` for {key}"))?;
                                row.metrics.push((key, raw));
                            }
                        }
                        other => return Err(format!("unexpected {other:?} in row")),
                    }
                }
                if row.name.is_empty() {
                    return Err("row without a name".to_string());
                }
                rows.push(row);
            }
            other => return Err(format!("unexpected {other:?} in baseline")),
        }
    }
    Ok(rows)
}

/// Compare measured rows against a baseline under per-metric relative
/// tolerance bands. Returns human-readable regression lines; empty means
/// the run matches the committed trajectory. When `filtered` is true only
/// rows present in *both* sets are compared (a `--filter` run legitimately
/// measures a subset); otherwise the row-name sets must match exactly.
pub fn diff_rows(
    baseline: &[BenchRow],
    current: &[BenchRow],
    tolerance: &BTreeMap<String, f64>,
    filtered: bool,
) -> Vec<String> {
    let mut out = Vec::new();
    let base_by: BTreeMap<&str, &BenchRow> =
        baseline.iter().map(|r| (r.name.as_str(), r)).collect();
    let cur_by: BTreeMap<&str, &BenchRow> = current.iter().map(|r| (r.name.as_str(), r)).collect();

    if !filtered {
        for name in base_by.keys() {
            if !cur_by.contains_key(name) {
                out.push(format!("row `{name}`: in baseline but not measured"));
            }
        }
        for name in cur_by.keys() {
            if !base_by.contains_key(name) {
                out.push(format!("row `{name}`: measured but missing from baseline (re-run with --update)"));
            }
        }
    }

    for (name, cur) in &cur_by {
        let Some(base) = base_by.get(name) else { continue };
        for (key, base_raw) in &base.metrics {
            let Some(cur_val) = cur.get(key) else {
                out.push(format!("row `{name}`: metric `{key}` disappeared"));
                continue;
            };
            let base_val: f64 = match base_raw.parse() {
                Ok(v) => v,
                Err(_) => {
                    out.push(format!("row `{name}`: baseline metric `{key}` is not numeric"));
                    continue;
                }
            };
            let tol = tolerance.get(key).copied().unwrap_or(0.0);
            let band = tol * base_val.abs().max(f64::EPSILON);
            if (cur_val - base_val).abs() > band {
                let pct = if base_val.abs() > f64::EPSILON {
                    format!("{:+.1}%", (cur_val - base_val) / base_val.abs() * 100.0)
                } else {
                    "n/a".to_string()
                };
                out.push(format!(
                    "row `{name}`: {key} baseline {base_raw} -> measured {cur_val} ({pct}, tolerance {:.1}%)",
                    tol * 100.0
                ));
            }
        }
        for (key, _) in &cur.metrics {
            if base.get(key).is_none() {
                out.push(format!("row `{name}`: new metric `{key}` not in baseline"));
            }
        }
    }
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# sample grid
[defaults]
dataset = "quality"
docs = 2
qps = 3

[[cell]]
name = "smoke-base"
duration_s = 10

[[cell]]
name = "faulty"
faults = "embed:0.2"
retriever = "bm25"
seed = 7

[tolerance]
p99_us = 0.10
"#;

    #[test]
    fn parses_defaults_cells_and_tolerance() {
        let f = parse_scenarios(SAMPLE).unwrap();
        assert_eq!(f.cells.len(), 2);
        assert_eq!(f.cells[0].name, "smoke-base");
        assert_eq!(f.cells[0].qps, 3);
        assert_eq!(f.cells[0].duration_s, 10);
        assert_eq!(f.cells[1].retriever, "bm25");
        assert_eq!(f.cells[1].faults, "embed:0.2");
        assert_eq!(f.cells[1].seed, 7);
        assert_eq!(f.tolerance.get("p99_us"), Some(&0.10));
    }

    #[test]
    fn rejects_bad_grammar() {
        assert!(parse_scenarios("docs = 2").is_err(), "key outside section");
        assert!(parse_scenarios("[nope]\n").is_err(), "unknown section");
        assert!(parse_scenarios("[[cell]]\ndocs = 2\n").is_err(), "cell without name");
        assert!(parse_scenarios("[[cell]]\nname = \"a\"\nwat = 1\n").is_err(), "unknown key");
        assert!(
            parse_scenarios("[[cell]]\nname = \"a\"\n[[cell]]\nname = \"a\"\n").is_err(),
            "duplicate name"
        );
        assert!(parse_scenarios("[defaults]\nname = \"a\"\n").is_err(), "name in defaults");
        assert!(parse_scenarios("").is_err(), "no cells");
        assert!(
            parse_scenarios("[[cell]]\nname = \"a\"\n[tolerance]\nx = 2.0\n").is_err(),
            "tolerance out of range"
        );
    }

    #[test]
    fn comments_do_not_eat_quoted_hashes() {
        let f = parse_scenarios("[[cell]]\nname = \"has#hash\"  # trailing\n").unwrap();
        assert_eq!(f.cells[0].name, "has#hash");
    }

    fn row(name: &str, p99: u64, acc: f64) -> BenchRow {
        let mut r = BenchRow::new(name);
        r.push_u64("p99_us", p99);
        r.push_f64("accuracy", acc);
        r
    }

    #[test]
    fn rows_round_trip_byte_stable() {
        let rows = vec![row("a", 1200, 0.75), row("b \"q\"", 90, 0.5)];
        let text = render_rows(&rows);
        let parsed = parse_rows(&text).unwrap();
        assert_eq!(parsed, rows);
        assert_eq!(render_rows(&parsed), text, "render∘parse must be identity");
    }

    #[test]
    fn diff_flags_regressions_and_respects_tolerance() {
        let base = vec![row("a", 1000, 0.75)];
        let tol = BTreeMap::from([("p99_us".to_string(), 0.10)]);
        // Inside the band: clean.
        assert!(diff_rows(&base, &[row("a", 1050, 0.75)], &tol, false).is_empty());
        // Outside the band: flagged, readable.
        let d = diff_rows(&base, &[row("a", 1200, 0.75)], &tol, false);
        assert_eq!(d.len(), 1);
        assert!(d[0].contains("p99_us") && d[0].contains("+20.0%"), "{}", d[0]);
        // Exact metric with no band: any drift is flagged.
        let d = diff_rows(&base, &[row("a", 1000, 0.7)], &tol, false);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].contains("accuracy"), "{}", d[0]);
    }

    #[test]
    fn diff_checks_row_sets_unless_filtered() {
        let base = vec![row("a", 1, 0.5), row("b", 2, 0.5)];
        let cur = vec![row("a", 1, 0.5)];
        let strict = diff_rows(&base, &cur, &BTreeMap::new(), false);
        assert!(strict.iter().any(|l| l.contains("`b`")), "{strict:?}");
        assert!(diff_rows(&base, &cur, &BTreeMap::new(), true).is_empty());
    }
}
