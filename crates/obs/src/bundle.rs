//! Diagnostics-bundle assembly for `sage report`.
//!
//! A bundle is one JSON object gathering everything needed for a
//! post-hoc investigation: run metadata, the soak summary, the SLO
//! report, the flight recorder's retained traces, histogram snapshots,
//! the counter deltas, the cost ledger, and a `reconciliation` section of
//! named booleans that cross-check the layers against each other (the
//! recorder against the soak report, the SLO accounting against the
//! admission counters, the ledger against the per-query token totals).
//! Tests and CI assert those booleans instead of re-deriving the
//! arithmetic.
//!
//! The builder is deliberately dumb: callers push sections as
//! pre-rendered JSON values (or via typed helpers) and the builder only
//! guarantees well-formed assembly and stable ordering. That keeps this
//! crate free of any knowledge about pipeline internals.

use sage_telemetry::hist::HistogramSnapshot;
use sage_telemetry::span::write_json_str;

/// Accumulates `key: value` sections and renders one JSON object.
#[derive(Debug, Default)]
pub struct Bundle {
    sections: Vec<(String, String)>,
}

impl Bundle {
    /// Empty bundle.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a section whose value is already-rendered JSON (object, array,
    /// number, bool). The caller vouches for its well-formedness.
    pub fn push_raw(&mut self, key: &str, json: impl Into<String>) {
        self.sections.push((key.to_string(), json.into()));
    }

    /// Add a string section (escaped here).
    pub fn push_str(&mut self, key: &str, s: &str) {
        let mut v = String::new();
        write_json_str(s, &mut v);
        self.sections.push((key.to_string(), v));
    }

    /// Add an unsigned-integer section.
    pub fn push_u64(&mut self, key: &str, v: u64) {
        self.sections.push((key.to_string(), v.to_string()));
    }

    /// Add a boolean section.
    pub fn push_bool(&mut self, key: &str, v: bool) {
        self.sections.push((key.to_string(), v.to_string()));
    }

    /// Add a JSONL blob as a JSON array (one element per line).
    pub fn push_jsonl(&mut self, key: &str, jsonl: &str) {
        let lines: Vec<&str> = jsonl.lines().filter(|l| !l.trim().is_empty()).collect();
        self.push_raw(key, format!("[{}]", lines.join(",")));
    }

    /// Add a histogram snapshot as `{count, sum, buckets: [[upper, n]..]}`
    /// (occupied buckets only).
    pub fn push_histogram(&mut self, key: &str, snap: &HistogramSnapshot) {
        let mut buckets = Vec::new();
        for (i, &c) in snap.counts.iter().enumerate() {
            if c > 0 {
                buckets.push(format!("[{},{}]", sage_telemetry::hist::bucket_upper(i), c));
            }
        }
        self.push_raw(
            key,
            format!(
                "{{\"count\": {}, \"sum\": {}, \"buckets\": [{}]}}",
                snap.count(),
                snap.sum,
                buckets.join(",")
            ),
        );
    }

    /// Render the bundle as one JSON object (sections in insertion
    /// order), trailing newline included.
    pub fn render(&self) -> String {
        let mut out = String::from("{\n");
        for (i, (k, v)) in self.sections.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            out.push_str("  ");
            write_json_str(k, &mut out);
            out.push_str(": ");
            out.push_str(v);
        }
        out.push_str("\n}\n");
        out
    }
}

/// The cross-layer checks `sage report` performs; each boolean is a named
/// claim the bundle's readers can rely on. Rendered as the
/// `reconciliation` section.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reconciliation {
    /// Recorder captures == admitted queries + shed/expired events the
    /// soak loop offered it.
    pub recorder_captures_match: bool,
    /// Flagged (tier-3) records retained == flagged events that survived
    /// retention arithmetic (never evicted while plain records remain).
    pub flagged_retained: bool,
    /// SLO accounting's shed count == the admission counters' delta.
    pub shed_counters_match: bool,
    /// SLO accounting's brownout count == the soak report's browned-out
    /// query count.
    pub brownout_counters_match: bool,
    /// Ledger token total == the sum of per-query token observations.
    pub ledger_tokens_match: bool,
}

impl Reconciliation {
    /// All checks passed.
    pub fn clean(&self) -> bool {
        self.recorder_captures_match
            && self.flagged_retained
            && self.shed_counters_match
            && self.brownout_counters_match
            && self.ledger_tokens_match
    }

    /// Render as a JSON object for the bundle.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"recorder_captures_match\": {}, \"flagged_retained\": {}, \
             \"shed_counters_match\": {}, \"brownout_counters_match\": {}, \
             \"ledger_tokens_match\": {}, \"clean\": {}}}",
            self.recorder_captures_match,
            self.flagged_retained,
            self.shed_counters_match,
            self.brownout_counters_match,
            self.ledger_tokens_match,
            self.clean()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_sections_in_order() {
        let mut b = Bundle::new();
        b.push_str("tool", "sage report");
        b.push_u64("seed", 42);
        b.push_bool("ok", true);
        b.push_raw("soak", "{\"arrivals\": 3}");
        b.push_jsonl("traces", "{\"a\":1}\n{\"b\":2}\n");
        let out = b.render();
        assert!(out.starts_with("{\n  \"tool\": \"sage report\""), "{out}");
        assert!(out.contains("\"seed\": 42"), "{out}");
        assert!(out.contains("\"traces\": [{\"a\":1},{\"b\":2}]"), "{out}");
        let tool = out.find("\"tool\"").unwrap();
        let soak = out.find("\"soak\"").unwrap();
        assert!(tool < soak, "insertion order preserved");
    }

    #[test]
    fn histogram_section_keeps_count_and_occupied_buckets() {
        let h = sage_telemetry::hist::Histogram::new();
        h.record(3);
        h.record(1000);
        let mut b = Bundle::new();
        b.push_histogram("lat", &h.snapshot());
        let out = b.render();
        assert!(out.contains("\"count\": 2"), "{out}");
        assert!(out.contains("\"sum\": 1003"), "{out}");
    }

    #[test]
    fn reconciliation_clean_requires_every_check() {
        let ok = Reconciliation {
            recorder_captures_match: true,
            flagged_retained: true,
            shed_counters_match: true,
            brownout_counters_match: true,
            ledger_tokens_match: true,
        };
        assert!(ok.clean());
        let bad = Reconciliation { ledger_tokens_match: false, ..ok };
        assert!(!bad.clean());
        assert!(bad.to_json().contains("\"ledger_tokens_match\": false"));
        assert!(bad.to_json().contains("\"clean\": false"));
    }
}
