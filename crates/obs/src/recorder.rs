//! The flight recorder: a bounded ring of recent query observations with
//! deterministic tail-based retention.
//!
//! The recorder answers "what did the slowest or strangest recent queries
//! actually do?" after the fact without keeping every trace. Retention is
//! a pure function of the observation stream — never of wall-clock time or
//! arrival rate — so a soak replay with the recorder attached retains
//! byte-identical records across runs:
//!
//! 1. **Flagged queries always survive** (until capacity forces the oldest
//!    flagged out): shed, expired, errored, panicked, browned-out,
//!    degraded, or deadline-missed queries. These are the records an
//!    incident review needs.
//! 2. **Per-window latency top-K**: capture counts are divided into fixed
//!    windows of `window` observations; when a window seals, its K highest
//!    *virtual* latencies are promoted and the rest demoted. Virtual
//!    latency (simulated service + degradation delay) is deterministic;
//!    measured wall time never influences retention.
//! 3. **Eviction order** is `(tier, seq)`: plain sealed records go first,
//!    then unsealed, then top-K, then flagged — oldest first within a
//!    tier.
//!
//! Allocations are recycled: evicted records return to a free pool and
//! their `String` buffers are reused by later captures, so a long soak
//! settles into a steady state with no per-query allocation.

// sage-lint: allow-file(panic-reachability) - record indices come from enumerate and sort permutations over self.records in the same function

use std::fmt::Write as _;

/// Outcome of one observed query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Outcome {
    /// Completed with a result.
    Done,
    /// Refused by admission control.
    Shed,
    /// Deadline expired while queued; never ran.
    Expired,
    /// Returned a structured error.
    Error,
    /// Panicked (isolated by the serving path).
    Panicked,
}

impl Outcome {
    /// Stable lower-case label for logs and JSON.
    pub fn label(self) -> &'static str {
        match self {
            Outcome::Done => "done",
            Outcome::Shed => "shed",
            Outcome::Expired => "expired",
            Outcome::Error => "error",
            Outcome::Panicked => "panicked",
        }
    }
}

/// One query as the serving path observed it. All quantities are virtual
/// (simulated latencies, token counts) or structural (class, rung), so an
/// observation stream is deterministic under a fixed seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryObs {
    /// Sequence number within the run (arrival order).
    pub seq: u64,
    /// Priority class label (`interactive`/`batch`/`background`, or `-`
    /// outside the admission path).
    pub class: &'static str,
    /// Virtual arrival offset, microseconds.
    pub arrival_us: u64,
    /// Virtual completion (or shed/expiry decision) offset, microseconds.
    pub end_us: u64,
    /// Virtual sojourn (arrival → completion) in nanoseconds; 0 for
    /// queries that never ran.
    pub sojourn_ns: u64,
    /// Virtual service latency in nanoseconds (excludes queue wait).
    pub service_ns: u64,
    /// What happened.
    pub outcome: Outcome,
    /// Final brownout rung (0 = full fidelity).
    pub brownout: u8,
    /// Degradation events recorded on the query's trace.
    pub degraded: u32,
    /// Whether the deadline budget was missed or expired.
    pub deadline_missed: bool,
    /// Total tokens charged (input + output).
    pub tokens: u64,
    /// Answer confidence in milli-units (0..=1000); 0 when unanswered.
    pub confidence_milli: u32,
    /// The question asked (or a shed/error note).
    pub question: String,
}

impl QueryObs {
    /// Is this observation one the recorder must keep (tier 3)?
    pub fn flagged(&self) -> bool {
        self.outcome != Outcome::Done
            || self.brownout > 0
            || self.degraded > 0
            || self.deadline_missed
    }
}

/// One retained record: the observation plus its retention bookkeeping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryRecord {
    /// The observation itself.
    pub obs: QueryObs,
    /// Capture ordinal (0-based; drives windowing and eviction order).
    pub capture: u64,
    /// Retention tier: 3 flagged, 2 window top-K, 1 unsealed, 0 plain.
    pub tier: u8,
}

/// Flight-recorder sizing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecorderConfig {
    /// Maximum retained records.
    pub capacity: usize,
    /// Captures per latency window.
    pub window: usize,
    /// Records promoted per sealed window (highest virtual latency).
    pub topk: usize,
}

impl Default for RecorderConfig {
    fn default() -> Self {
        Self { capacity: 256, window: 64, topk: 4 }
    }
}

/// Running totals the recorder keeps about itself.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecorderStats {
    /// Observations offered to the recorder.
    pub captured: u64,
    /// Records evicted to stay within capacity.
    pub evicted: u64,
    /// Captures that reused an evicted record's allocations.
    pub recycled: u64,
    /// Windows sealed so far.
    pub windows_sealed: u64,
}

/// Bounded, allocation-recycling ring of recent query observations.
///
/// Mutation happens through [`capture_query`](Self::capture_query) /
/// [`capture_shed`](Self::capture_shed) only (enforced by the
/// `recorder-behind-obs` lint rule); everything else is read-only.
#[derive(Debug, Default)]
pub struct FlightRecorder {
    cfg: RecorderConfig,
    records: Vec<QueryRecord>,
    /// Evicted records whose allocations the next capture reuses.
    free: Vec<QueryRecord>,
    stats: RecorderStats,
}

impl FlightRecorder {
    /// Recorder with the given sizing (capacity is clamped to ≥ 1).
    pub fn new(cfg: RecorderConfig) -> Self {
        let cfg = RecorderConfig {
            capacity: cfg.capacity.max(1),
            window: cfg.window.max(1),
            topk: cfg.topk.max(1),
            };
        Self { cfg, records: Vec::new(), free: Vec::new(), stats: RecorderStats::default() }
    }

    /// The sizing in effect.
    pub fn config(&self) -> RecorderConfig {
        self.cfg
    }

    /// Capture one completed/errored observation. Returns whether the
    /// record survived the insert (it may be evicted immediately when the
    /// buffer is full of higher-tier records).
    pub fn capture_query(&mut self, obs: &QueryObs) -> bool {
        let capture = self.stats.captured;
        self.stats.captured += 1;
        let tier = if obs.flagged() { 3 } else { 1 };
        let mut rec = match self.free.pop() {
            Some(mut r) => {
                self.stats.recycled += 1;
                r.obs.copy_from(obs);
                r
            }
            None => QueryRecord { obs: obs.clone(), capture: 0, tier: 0 },
        };
        rec.capture = capture;
        rec.tier = tier;
        let seq = rec.obs.seq;
        self.records.push(rec);
        // Seal the window this capture completed, if any.
        if (capture + 1).is_multiple_of(self.cfg.window as u64) {
            self.roll_window(capture / self.cfg.window as u64);
        }
        while self.records.len() > self.cfg.capacity {
            self.evict_one();
        }
        self.records.iter().any(|r| r.obs.seq == seq && r.capture == capture)
    }

    /// Capture a query that was refused before running (shed/expired).
    /// Shorthand over [`capture_query`](Self::capture_query) for call
    /// sites that only have the admission decision.
    pub fn capture_shed(
        &mut self,
        seq: u64,
        class: &'static str,
        at_us: u64,
        expired: bool,
        note: &str,
    ) -> bool {
        let obs = QueryObs {
            seq,
            class,
            arrival_us: at_us,
            end_us: at_us,
            sojourn_ns: 0,
            service_ns: 0,
            outcome: if expired { Outcome::Expired } else { Outcome::Shed },
            brownout: 0,
            degraded: 0,
            deadline_missed: expired,
            tokens: 0,
            confidence_milli: 0,
            question: note.to_string(),
        };
        self.capture_query(&obs)
    }

    /// Seal window `w`: among its unsealed (tier-1) records, promote the
    /// `topk` highest virtual latencies to tier 2 and demote the rest to
    /// tier 0. Pure in the capture stream — called automatically by
    /// [`capture_query`](Self::capture_query) when a window fills.
    pub fn roll_window(&mut self, w: u64) {
        let window = self.cfg.window as u64;
        let lo = w * window;
        let hi = lo + window;
        // Indices of this window's unsealed records, best latency first;
        // ties break to the earlier capture so the cut is deterministic.
        let mut members: Vec<usize> = (0..self.records.len())
            .filter(|&i| {
                let r = &self.records[i];
                r.tier == 1 && r.capture >= lo && r.capture < hi
            })
            .collect();
        members.sort_by(|&a, &b| {
            let (ra, rb) = (&self.records[a], &self.records[b]);
            rb.obs.service_ns.cmp(&ra.obs.service_ns).then(ra.capture.cmp(&rb.capture))
        });
        for (rank, &i) in members.iter().enumerate() {
            self.records[i].tier = if rank < self.cfg.topk { 2 } else { 0 };
        }
        self.stats.windows_sealed += 1;
    }

    /// Evict the least-retained record: minimum `(tier, capture)`.
    fn evict_one(&mut self) {
        let Some(victim) = (0..self.records.len())
            .min_by_key(|&i| (self.records[i].tier, self.records[i].capture))
        else {
            return;
        };
        let rec = self.records.swap_remove(victim);
        self.stats.evicted += 1;
        // Recycle the allocation; cap the pool so a burst cannot pin
        // unbounded memory.
        if self.free.len() < self.cfg.capacity {
            self.free.push(rec);
        }
    }

    /// Retained records in capture order (oldest first).
    pub fn records(&self) -> Vec<&QueryRecord> {
        let mut out: Vec<&QueryRecord> = self.records.iter().collect();
        out.sort_by_key(|r| r.capture);
        out
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Recorder self-accounting.
    pub fn stats(&self) -> RecorderStats {
        self.stats
    }

    /// Serialise the retained records as JSON Lines, one record per line,
    /// in capture order. Deterministic for a deterministic capture stream.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for r in self.records() {
            write_record_json(r, &mut out);
            out.push('\n');
        }
        out
    }
}

impl QueryObs {
    /// Copy `src` into `self`, reusing `self.question`'s allocation
    /// (the recycling path: no new heap allocation when the reused buffer
    /// has capacity).
    fn copy_from(&mut self, src: &QueryObs) {
        self.question.clear();
        self.question.push_str(&src.question);
        self.seq = src.seq;
        self.class = src.class;
        self.arrival_us = src.arrival_us;
        self.end_us = src.end_us;
        self.sojourn_ns = src.sojourn_ns;
        self.service_ns = src.service_ns;
        self.outcome = src.outcome;
        self.brownout = src.brownout;
        self.degraded = src.degraded;
        self.deadline_missed = src.deadline_missed;
        self.tokens = src.tokens;
        self.confidence_milli = src.confidence_milli;
    }
}

/// One record as a JSON object (no trailing newline).
pub fn write_record_json(r: &QueryRecord, out: &mut String) {
    let o = &r.obs;
    out.push_str("{\"seq\":");
    let _ = write!(out, "{}", o.seq);
    let _ = write!(out, ",\"tier\":{},\"class\":\"{}\"", r.tier, o.class);
    let _ = write!(out, ",\"outcome\":\"{}\"", o.outcome.label());
    let _ = write!(out, ",\"arrival_us\":{},\"end_us\":{}", o.arrival_us, o.end_us);
    let _ = write!(out, ",\"sojourn_ns\":{},\"service_ns\":{}", o.sojourn_ns, o.service_ns);
    let _ = write!(
        out,
        ",\"brownout\":{},\"degraded\":{},\"deadline_missed\":{}",
        o.brownout, o.degraded, o.deadline_missed
    );
    let _ = write!(out, ",\"tokens\":{},\"confidence_milli\":{}", o.tokens, o.confidence_milli);
    out.push_str(",\"question\":");
    sage_telemetry::span::write_json_str(&o.question, out);
    out.push('}');
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(seq: u64, service_ns: u64) -> QueryObs {
        QueryObs {
            seq,
            class: "batch",
            arrival_us: seq * 100,
            end_us: seq * 100 + service_ns / 1000,
            sojourn_ns: service_ns,
            service_ns,
            outcome: Outcome::Done,
            brownout: 0,
            degraded: 0,
            deadline_missed: false,
            tokens: 10,
            confidence_milli: 900,
            question: format!("q{seq}"),
        }
    }

    fn flagged(seq: u64) -> QueryObs {
        QueryObs { brownout: 2, ..obs(seq, 1_000) }
    }

    #[test]
    fn flagged_records_outlive_plain_ones() {
        let mut r = FlightRecorder::new(RecorderConfig { capacity: 8, window: 4, topk: 1 });
        for s in 0..4 {
            r.capture_query(&flagged(s));
        }
        for s in 4..40 {
            r.capture_query(&obs(s, s * 10));
        }
        let kept: Vec<u64> = r.records().iter().map(|x| x.obs.seq).collect();
        for s in 0..4 {
            assert!(kept.contains(&s), "flagged seq {s} evicted: {kept:?}");
        }
        assert_eq!(r.len(), 8);
    }

    #[test]
    fn window_topk_promotes_slowest() {
        let mut r = FlightRecorder::new(RecorderConfig { capacity: 64, window: 8, topk: 2 });
        for s in 0..8 {
            // Latencies 0, 1000, 2000, ... — the top-2 are seqs 6 and 7.
            r.capture_query(&obs(s, s * 1000));
        }
        let tiers: Vec<(u64, u8)> = r.records().iter().map(|x| (x.obs.seq, x.tier)).collect();
        for (seq, tier) in tiers {
            if seq >= 6 {
                assert_eq!(tier, 2, "seq {seq}");
            } else {
                assert_eq!(tier, 0, "seq {seq}");
            }
        }
        assert_eq!(r.stats().windows_sealed, 1);
    }

    #[test]
    fn retention_is_deterministic() {
        let run = || {
            let mut r = FlightRecorder::new(RecorderConfig { capacity: 16, window: 8, topk: 2 });
            for s in 0..200u64 {
                if s % 17 == 0 {
                    r.capture_query(&flagged(s));
                } else {
                    r.capture_query(&obs(s, (s * 7919) % 100_000));
                }
            }
            r.to_jsonl()
        };
        assert_eq!(run(), run(), "same capture stream must retain identically");
    }

    #[test]
    fn allocations_are_recycled() {
        let mut r = FlightRecorder::new(RecorderConfig { capacity: 4, window: 2, topk: 1 });
        for s in 0..50 {
            r.capture_query(&obs(s, 100));
        }
        let st = r.stats();
        assert_eq!(st.captured, 50);
        assert_eq!(st.evicted, 46);
        assert!(st.recycled > 0, "evicted buffers must be reused: {st:?}");
        assert_eq!(r.len(), 4);
    }

    #[test]
    fn capture_shed_is_flagged() {
        let mut r = FlightRecorder::new(RecorderConfig::default());
        r.capture_shed(9, "interactive", 1234, false, "queue-full");
        r.capture_shed(10, "batch", 2000, true, "deadline");
        let recs = r.records();
        assert_eq!(recs[0].tier, 3);
        assert_eq!(recs[0].obs.outcome, Outcome::Shed);
        assert_eq!(recs[1].obs.outcome, Outcome::Expired);
        assert!(recs[1].obs.deadline_missed);
    }

    #[test]
    fn jsonl_escapes_questions() {
        let mut r = FlightRecorder::new(RecorderConfig::default());
        r.capture_query(&QueryObs { question: "evil \"q\"\\n".to_string(), ..obs(0, 5) });
        let line = r.to_jsonl();
        assert!(line.contains("\"question\":\"evil \\\"q\\\"\\\\n\""), "{line}");
    }
}
