//! Tier-1 gate: the workspace must be clean under `sage-lint`.
//!
//! This is the same analysis `sage-cli lint` and `scripts/check.sh` run —
//! the token rules (no-print, no-panic-serving, deterministic-iteration,
//! no-wallclock, layering, relaxed-atomics-confined, unwind-boundary,
//! mutation-behind-writer, recorder-behind-obs) plus the whole-program
//! rules built on the item parser and call graph (panic-reachability,
//! determinism-taint, stale-suppression) over every crate, with
//! suppressions requiring an inline justification (DESIGN.md §9).
//!
//! Alongside the clean-workspace gate this file pins the semantic
//! machinery itself: each whole-program rule demonstrably fires on a
//! synthetic workspace built to violate it, the entry/sink spec tables
//! still match real functions (drift check), the committed
//! `lint-baseline.json` ratchet agrees with the current run, and the
//! SARIF emit round-trips through its own validator.

use sage::lint::{
    ratchet, render_human, rules, sarif,
    semantic::{unmatched_specs, DETERMINISM_SINKS, SERVING_ENTRIES},
    workspace_analysis, workspace_report,
};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

/// The workspace root: Cargo sets the manifest dir when running under
/// `cargo test`; the offline harness runs test binaries from the repo
/// root, where `.` is correct.
fn workspace_root() -> &'static Path {
    Path::new(option_env!("CARGO_MANIFEST_DIR").unwrap_or("."))
}

#[test]
fn workspace_is_lint_clean() {
    let report = workspace_report(workspace_root()).expect("workspace sources readable");
    assert!(
        report.violations.is_empty(),
        "sage-lint found violations:\n{}",
        render_human(&report)
    );
}

#[test]
fn lint_actually_scanned_the_workspace() {
    let report = workspace_report(workspace_root()).expect("workspace sources readable");
    // The workspace has 14 member crates plus the facade; a scan that
    // found almost nothing means the walker broke, not that the code is
    // clean.
    assert!(
        report.files_scanned >= 50,
        "only {} files scanned — walker is missing crates",
        report.files_scanned
    );
    // The repo carries justified suppressions (e.g. BM25's accumulation
    // maps); seeing zero means markers stopped parsing.
    assert!(
        report.suppressed > 0,
        "no suppressed violations — allow markers are not being honoured"
    );
}

// --- Synthetic workspaces for the whole-program rules ---------------------

static WS_COUNTER: AtomicUsize = AtomicUsize::new(0);

/// Materialize `files` (crate-relative paths under crates/<name>/src/)
/// into a throwaway workspace directory and return its root.
fn synth_workspace(files: &[(&str, &str)]) -> PathBuf {
    let id = WS_COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir()
        .join(format!("sage_lint_it_{}_{id}", std::process::id()));
    for (rel, text) in files {
        let path = dir.join(rel);
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(path, text).unwrap();
    }
    dir
}

#[test]
fn panic_reachability_traces_serving_entries_to_panic_sources() {
    // `search` is a serving entry in the vecdb crate; it reaches an
    // unwrap through a helper two hops away.
    let dir = synth_workspace(&[(
        "crates/vecdb/src/lib.rs",
        "pub struct Flat;\n\
         impl Flat {\n\
             pub fn search(&self, q: &[f32]) -> f32 { middle(q) }\n\
         }\n\
         fn middle(q: &[f32]) -> f32 { deep(q) }\n\
         fn deep(q: &[f32]) -> f32 { q.first().copied().unwrap() }\n",
    )]);
    let report = workspace_report(&dir).unwrap();
    std::fs::remove_dir_all(&dir).ok();
    let hits: Vec<_> = report
        .violations
        .iter()
        .filter(|v| v.rule == rules::PANIC_REACHABILITY)
        .collect();
    assert_eq!(hits.len(), 1, "{}", render_human(&report));
    // The violation anchors at the panic source and names the entry path.
    assert_eq!(hits[0].line, 6, "{}", hits[0].message);
    assert!(hits[0].message.contains("search"), "{}", hits[0].message);
}

#[test]
fn panic_reachability_respects_unwind_boundaries() {
    // The same shape, but the entry crosses a catch_unwind boundary
    // before the panic source: reachability must stop at the boundary.
    let dir = synth_workspace(&[(
        "crates/vecdb/src/lib.rs",
        "pub struct Flat;\n\
         impl Flat {\n\
             pub fn search(&self, q: &[f32]) -> f32 { guarded(q) }\n\
         }\n\
         fn guarded(q: &[f32]) -> f32 {\n\
             std::panic::catch_unwind(|| deep(q)).unwrap_or(0.0)\n\
         }\n\
         fn deep(q: &[f32]) -> f32 { q.first().copied().unwrap() }\n",
    )]);
    let report = workspace_report(&dir).unwrap();
    std::fs::remove_dir_all(&dir).ok();
    assert!(
        !report.violations.iter().any(|v| v.rule == rules::PANIC_REACHABILITY),
        "boundary did not absorb the panic source:\n{}",
        render_human(&report)
    );
}

#[test]
fn determinism_taint_traces_sinks_to_wallclock_sources() {
    // `json_summary` in a soak module is a serialization sink; it pulls a
    // value computed from Instant::now through a helper.
    let dir = synth_workspace(&[(
        "crates/core/src/soak.rs",
        "pub fn json_summary() -> String {\n\
             format!(\"{{\\\"elapsed\\\":{}}}\", elapsed_hint())\n\
         }\n\
         fn elapsed_hint() -> u64 {\n\
             let t = std::time::Instant::now();\n\
             t.elapsed().as_nanos() as u64\n\
         }\n",
    )]);
    let report = workspace_report(&dir).unwrap();
    std::fs::remove_dir_all(&dir).ok();
    let hits: Vec<_> = report
        .violations
        .iter()
        .filter(|v| v.rule == rules::DETERMINISM_TAINT)
        .collect();
    assert!(!hits.is_empty(), "{}", render_human(&report));
    assert!(hits[0].message.contains("json_summary"), "{}", hits[0].message);
}

#[test]
fn stale_suppression_flags_markers_that_suppress_nothing() {
    let dir = synth_workspace(&[(
        "crates/text/src/lib.rs",
        "// sage-lint: allow-file(no-print) - nothing prints here; this marker is dead\n\
         pub fn tidy(s: &str) -> String { s.trim().to_string() }\n",
    )]);
    let report = workspace_report(&dir).unwrap();
    std::fs::remove_dir_all(&dir).ok();
    let hits: Vec<_> = report
        .violations
        .iter()
        .filter(|v| v.rule == rules::STALE_SUPPRESSION)
        .collect();
    assert_eq!(hits.len(), 1, "{}", render_human(&report));
    assert!(hits[0].message.contains("no-print"), "{}", hits[0].message);
}

#[test]
fn live_markers_are_not_flagged_stale() {
    let dir = synth_workspace(&[(
        "crates/text/src/lib.rs",
        "// sage-lint: allow-file(no-print) - diagnostic helper writes to stdout by design\n\
         pub fn show(s: &str) { println!(\"{s}\"); }\n",
    )]);
    let report = workspace_report(&dir).unwrap();
    std::fs::remove_dir_all(&dir).ok();
    assert!(
        report.violations.is_empty(),
        "live marker misflagged:\n{}",
        render_human(&report)
    );
    assert_eq!(report.suppressed, 1);
}

// --- Spec drift, ratchet, SARIF, call graph -------------------------------

#[test]
fn entry_and_sink_specs_match_real_functions() {
    // Refactors that rename or move a serving entry point (or a
    // serialization sink) must update the spec tables in
    // crates/lint/src/semantic.rs — otherwise the whole-program rules
    // silently analyze nothing.
    let analysis = workspace_analysis(workspace_root()).expect("workspace sources readable");
    let missing_entries = unmatched_specs(&analysis.workspace, SERVING_ENTRIES);
    assert!(missing_entries.is_empty(), "serving entries with no matching fn: {missing_entries:?}");
    let missing_sinks = unmatched_specs(&analysis.workspace, DETERMINISM_SINKS);
    assert!(missing_sinks.is_empty(), "determinism sinks with no matching fn: {missing_sinks:?}");
}

#[test]
fn committed_baseline_matches_current_counts() {
    let root = workspace_root();
    let text = std::fs::read_to_string(root.join("lint-baseline.json"))
        .expect("lint-baseline.json is committed at the repo root");
    let baseline = ratchet::parse(&text).expect("baseline parses");
    let report = workspace_report(root).expect("workspace sources readable");
    let errors = ratchet::compare(&baseline, &report);
    assert!(
        errors.is_empty(),
        "ratchet deviates — fix findings or run `sage lint --baseline \
         lint-baseline.json --update-baseline`:\n  {}",
        errors.join("\n  ")
    );
}

#[test]
fn sarif_emit_round_trips_through_the_validator() {
    let report = workspace_report(workspace_root()).expect("workspace sources readable");
    let text = sarif::render(&report);
    let results = sarif::validate(&text).expect("emitted SARIF validates");
    assert_eq!(results, report.violations.len());
}

#[test]
fn callgraph_export_is_deterministic() {
    let root = workspace_root();
    let a = workspace_analysis(root).expect("workspace sources readable");
    let b = workspace_analysis(root).expect("workspace sources readable");
    let ja = a.graph.to_json(&a.workspace);
    let jb = b.graph.to_json(&b.workspace);
    assert!(!ja.is_empty());
    assert_eq!(ja, jb, "call-graph JSON differs across identical runs");
}

#[test]
fn analysis_phases_are_timed() {
    let report = workspace_report(workspace_root()).expect("workspace sources readable");
    let phases: Vec<&str> = report.timings.iter().map(|(p, _)| *p).collect();
    assert_eq!(
        phases,
        ["scan", "callgraph", "panic-reachability", "determinism-taint", "stale-suppression"],
        "phase timing list changed shape"
    );
}
