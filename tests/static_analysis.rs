//! Tier-1 gate: the workspace must be clean under `sage-lint`.
//!
//! This is the same analysis `sage-cli lint` and `scripts/check.sh` run —
//! eight rules (no-print, no-panic-serving, deterministic-iteration,
//! no-wallclock, layering, relaxed-atomics-confined, unwind-boundary,
//! mutation-behind-writer) over every crate, with suppressions requiring
//! an inline justification (DESIGN.md §Static analysis).

use sage::lint::{render_human, workspace_report};
use std::path::Path;

/// The workspace root: Cargo sets the manifest dir when running under
/// `cargo test`; the offline harness runs test binaries from the repo
/// root, where `.` is correct.
fn workspace_root() -> &'static Path {
    Path::new(option_env!("CARGO_MANIFEST_DIR").unwrap_or("."))
}

#[test]
fn workspace_is_lint_clean() {
    let report = workspace_report(workspace_root()).expect("workspace sources readable");
    assert!(
        report.violations.is_empty(),
        "sage-lint found violations:\n{}",
        render_human(&report)
    );
}

#[test]
fn lint_actually_scanned_the_workspace() {
    let report = workspace_report(workspace_root()).expect("workspace sources readable");
    // The workspace has 14 member crates plus the facade; a scan that
    // found almost nothing means the walker broke, not that the code is
    // clean.
    assert!(
        report.files_scanned >= 50,
        "only {} files scanned — walker is missing crates",
        report.files_scanned
    );
    // The repo carries justified suppressions (e.g. BM25's accumulation
    // maps); seeing zero means markers stopped parsing.
    assert!(
        report.suppressed > 0,
        "no suppressed violations — allow markers are not being honoured"
    );
}
