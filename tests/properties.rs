//! Property-based tests (proptest) over the core data structures and
//! invariants: tokenization, segmentation coverage, selection, metrics,
//! vector search, and the cost model.

use proptest::prelude::*;
use sage::eval::{bleu, f1_match, meteor, rouge_l, Cost, PriceTable};
use sage::rerank::{gradient_select, RankedChunk, SelectionConfig};
use sage::segment::{Segmenter, SentenceSegmenter};
use sage::text::{count_tokens, normalize, split_sentences, stem, tokenize};
use sage::vecdb::{FlatIndex, HnswIndex, VectorIndex};

/// Arbitrary "English-ish" text: words, punctuation, newlines.
fn text_strategy() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        prop_oneof![
            8 => "[a-zA-Z]{1,10}",
            1 => Just(".".to_string()),
            1 => Just(",".to_string()),
            1 => Just("\n".to_string()),
            1 => Just("!".to_string()),
        ],
        0..60,
    )
    .prop_map(|words| words.join(" "))
}

proptest! {
    #[test]
    fn tokenize_yields_lowercase_nonempty(text in text_strategy()) {
        for tok in tokenize(&text) {
            prop_assert!(!tok.is_empty());
            prop_assert_eq!(tok.clone(), tok.to_lowercase());
        }
    }

    #[test]
    fn tokenize_is_idempotent_through_join(text in text_strategy()) {
        let once = tokenize(&text);
        let again = tokenize(&once.join(" "));
        prop_assert_eq!(once, again);
    }

    #[test]
    fn normalize_is_idempotent(text in text_strategy()) {
        let once = normalize(&text);
        prop_assert_eq!(normalize(&once), once);
    }

    #[test]
    fn count_tokens_superadditive_parts(a in text_strategy(), b in text_strategy()) {
        // Concatenation can only merge at one word boundary, so the joint
        // count is close to the sum and never wildly above it.
        let joint = count_tokens(&format!("{a} {b}"));
        prop_assert!(joint <= count_tokens(&a) + count_tokens(&b) + 2);
        prop_assert!(joint + 2 >= count_tokens(&a).max(count_tokens(&b)));
    }

    #[test]
    fn stem_never_empties_long_words(word in "[a-z]{4,12}") {
        let s = stem(&word);
        prop_assert!(!s.is_empty());
        prop_assert!(s.len() <= word.len() + 1, "{word} -> {s}");
    }

    #[test]
    fn sentences_are_nonempty_and_bounded(text in text_strategy()) {
        let sentences = split_sentences(&text);
        let words = text.split_whitespace().count();
        prop_assert!(sentences.len() <= words + 1);
        for s in &sentences {
            prop_assert!(!s.trim().is_empty());
        }
    }

    #[test]
    fn sentence_segmenter_preserves_words(
        text in text_strategy(),
        budget in 5usize..200,
    ) {
        // Sentence counts can legitimately merge for unterminated
        // fragments, but the word sequence must survive exactly.
        let seg = SentenceSegmenter { max_tokens: budget };
        let chunks = seg.segment(&text);
        let original: Vec<&str> = text.split_whitespace().collect();
        let rejoined = chunks.join(" ");
        let after: Vec<&str> = rejoined.split_whitespace().collect();
        prop_assert_eq!(original, after);
    }

    #[test]
    fn gradient_select_invariants(
        mut scores in proptest::collection::vec(0.0f32..1.0, 0..30),
        min_k in 0usize..10,
        g in 0.05f32..0.95,
    ) {
        scores.sort_by(|a, b| b.total_cmp(a));
        let ranked: Vec<RankedChunk> = scores
            .iter()
            .enumerate()
            .map(|(index, &score)| RankedChunk { index, score })
            .collect();
        let cfg = SelectionConfig { min_k, gradient: g, max_k: 20, ..SelectionConfig::default() };
        let sel = gradient_select(&ranked, cfg);
        // Bounds.
        prop_assert!(sel.len() <= ranked.len().min(cfg.max_k));
        if !ranked.is_empty() {
            prop_assert!(sel.len() >= min_k.max(1).min(ranked.len()).min(cfg.max_k));
        }
        // Prefix property.
        for (i, s) in sel.iter().enumerate() {
            prop_assert_eq!(s.index, ranked[i].index);
        }
    }

    #[test]
    fn gradient_select_monotone_in_min_k(
        mut scores in proptest::collection::vec(0.0f32..1.0, 1..30),
        g in 0.05f32..0.95,
    ) {
        scores.sort_by(|a, b| b.total_cmp(a));
        let ranked: Vec<RankedChunk> = scores
            .iter()
            .enumerate()
            .map(|(index, &score)| RankedChunk { index, score })
            .collect();
        let mut last = 0usize;
        for min_k in 1..10usize {
            let cfg = SelectionConfig { min_k, gradient: g, max_k: 20, ..SelectionConfig::default() };
            let n = gradient_select(&ranked, cfg).len();
            prop_assert!(n >= last, "selection shrank as min_k grew");
            last = n;
        }
    }

    #[test]
    fn metrics_bounded_and_perfect_on_identity(text in "[a-z ]{1,40}") {
        prop_assume!(!tokenize(&text).is_empty());
        let refs = vec![text.clone()];
        for metric in [rouge_l(&text, &refs), f1_match(&text, &refs)] {
            prop_assert!((0.0..=1.0).contains(&metric));
            prop_assert!(metric > 0.9, "identity should score ~1, got {metric}");
        }
        prop_assert!(bleu(&text, &refs, 1) > 0.9);
        // METEOR's fragmentation penalty caps very short identical strings
        // (a single matched token in a single chunk scores 0.5, as in the
        // reference implementation); only require near-1 on longer texts.
        let m = meteor(&text, &refs);
        prop_assert!((0.0..=1.0).contains(&m));
        if tokenize(&text).len() >= 3 {
            prop_assert!(m > 0.9, "identity meteor on long text: {m}");
        } else {
            prop_assert!(m >= 0.5, "identity meteor on short text: {m}");
        }
    }

    #[test]
    fn metrics_bounded_on_arbitrary_pairs(a in text_strategy(), b in text_strategy()) {
        let refs = vec![b];
        for metric in [
            rouge_l(&a, &refs),
            f1_match(&a, &refs),
            meteor(&a, &refs),
            bleu(&a, &refs, 1),
            bleu(&a, &refs, 4),
        ] {
            prop_assert!((0.0..=1.0).contains(&metric), "metric {metric} out of range");
        }
    }

    #[test]
    fn flat_index_finds_stored_vector(
        vecs in proptest::collection::vec(
            proptest::collection::vec(-1.0f32..1.0, 4),
            1..40,
        ),
        probe in 0usize..40,
    ) {
        // Keep only vectors with nonzero norm.
        let vecs: Vec<Vec<f32>> = vecs
            .into_iter()
            .filter(|v| v.iter().map(|x| x * x).sum::<f32>() > 1e-3)
            .collect();
        prop_assume!(!vecs.is_empty());
        let probe = probe % vecs.len();
        let mut idx = FlatIndex::cosine();
        for v in &vecs {
            idx.add(v.clone());
        }
        let hits = idx.search(&vecs[probe], vecs.len());
        // Scores sorted descending; top hit has cosine ~1 (itself or a
        // colinear duplicate).
        prop_assert!(hits.windows(2).all(|w| w[0].score >= w[1].score));
        prop_assert!(hits[0].score > 0.999, "top score {}", hits[0].score);
    }

    #[test]
    fn hnsw_subset_of_valid_ids(
        vecs in proptest::collection::vec(
            proptest::collection::vec(-1.0f32..1.0, 4),
            1..30,
        ),
        n in 1usize..10,
    ) {
        let vecs: Vec<Vec<f32>> = vecs
            .into_iter()
            .filter(|v| v.iter().map(|x| x * x).sum::<f32>() > 1e-3)
            .collect();
        prop_assume!(!vecs.is_empty());
        let mut idx = HnswIndex::cosine();
        for v in &vecs {
            idx.add(v.clone());
        }
        let hits = idx.search(&vecs[0], n);
        prop_assert!(!hits.is_empty());
        prop_assert!(hits.len() <= n.min(vecs.len()));
        let mut seen = std::collections::HashSet::new();
        for h in &hits {
            prop_assert!(h.id < vecs.len());
            prop_assert!(seen.insert(h.id), "duplicate id {}", h.id);
        }
    }

    #[test]
    fn cost_merge_is_additive(
        calls in proptest::collection::vec((0usize..10_000, 0usize..1_000), 0..20),
    ) {
        let mut total = Cost::zero();
        let mut sum_in = 0u64;
        let mut sum_out = 0u64;
        for (i, o) in calls {
            total.add_call(i, o);
            sum_in += i as u64;
            sum_out += o as u64;
        }
        prop_assert_eq!(total.input_tokens, sum_in);
        prop_assert_eq!(total.output_tokens, sum_out);
        prop_assert!(total.dollars(PriceTable::gpt4()) >= 0.0);
        // Dollars monotone in prices.
        prop_assert!(
            total.dollars(PriceTable::gpt4()) >= total.dollars(PriceTable::gpt4o_mini())
        );
    }
}

// --- Serialization round-trips -------------------------------------------

use sage::nn::io::BytesSerialize;
use sage::nn::matrix::Matrix;
use sage::nn::{Activation, EmbeddingTable, Mlp};

proptest! {
    #[test]
    fn matrix_roundtrips_for_any_shape(
        rows in 1usize..12,
        cols in 1usize..12,
        seed in 0u64..1000,
    ) {
        let m = Matrix::xavier(rows, cols, seed);
        let back = Matrix::from_bytes(m.to_bytes()).expect("roundtrip");
        prop_assert_eq!(m, back);
    }

    #[test]
    fn mlp_roundtrip_preserves_inference(
        input in 1usize..8,
        hidden in 1usize..8,
        seed in 0u64..1000,
    ) {
        let mlp = Mlp::new(&[input, hidden, 1], Activation::Tanh, Activation::Sigmoid, seed);
        let back = Mlp::from_bytes(mlp.to_bytes()).expect("roundtrip");
        let x = Matrix::xavier(3, input, seed ^ 0xFF);
        prop_assert_eq!(mlp.infer(&x), back.infer(&x));
    }

    #[test]
    fn embedding_table_roundtrips(
        buckets in 1usize..64,
        dim in 1usize..16,
        seed in 0u64..1000,
    ) {
        let t = EmbeddingTable::new(buckets, dim, seed);
        let back = EmbeddingTable::from_bytes(t.to_bytes()).expect("roundtrip");
        prop_assert_eq!(t.rows_flat(), back.rows_flat());
    }

    #[test]
    fn truncated_blobs_never_panic(
        rows in 1usize..6,
        cols in 1usize..6,
        cut in 0usize..40,
    ) {
        let m = Matrix::xavier(rows, cols, 1);
        let blob = m.to_bytes();
        let cut = cut.min(blob.len());
        let truncated = blob.slice(..cut);
        // Must return None (or, for cut == len, Some) — never panic.
        let parsed = Matrix::from_bytes(truncated);
        if cut == blob.len() {
            prop_assert!(parsed.is_some());
        } else {
            prop_assert!(parsed.is_none());
        }
    }

    #[test]
    fn resilience_spec_parser_never_panics(spec in "[a-z=:,.0-9]{0,40}") {
        // Arbitrary CLI fault specs must parse or error, never panic.
        let _ = sage::resilience::FaultPlan::parse_spec(&spec, 1);
    }

    #[test]
    fn retrieval_metrics_bounded(
        relevant in proptest::collection::vec(proptest::bool::ANY, 0..30),
        k in 1usize..35,
    ) {
        use sage::eval::{hit_rate_at_k, ndcg_at_k, precision_at_k, recall_at_k, reciprocal_rank};
        for v in [
            hit_rate_at_k(&relevant, k),
            precision_at_k(&relevant, k),
            recall_at_k(&relevant, k),
            reciprocal_rank(&relevant),
            ndcg_at_k(&relevant, k),
        ] {
            prop_assert!((0.0..=1.0).contains(&v), "metric {v} out of range");
        }
        // Recall is monotone in k.
        prop_assert!(recall_at_k(&relevant, k) <= recall_at_k(&relevant, k + 5) + 1e-6);
    }
}

// --- Resilience determinism ----------------------------------------------
//
// The fault plan is a pure function of (seed, component, call key, attempt)
// and the breakers/virtual clock are scoped per query, so serving the same
// question on two independently built systems under the same plan must
// produce identical results — including the degradation trace.

use sage::prelude::{
    Component, FaultPlan, LlmProfile, QueryResult, RagSystem, Rates, ResilienceConfig,
    RetrieverKind, SageConfig, SageError, TrainBudget, TrainedModels,
};
use std::sync::OnceLock;

fn shared_models() -> &'static TrainedModels {
    static M: OnceLock<TrainedModels> = OnceLock::new();
    M.get_or_init(|| TrainedModels::train(TrainBudget::tiny()))
}

fn resilience_corpus() -> Vec<String> {
    vec![
        "Whiskers is a playful tabby cat. He has bright green eyes. His fur is mostly gray.\n\
         The morning fog settled over the valley, as it had for many years.\n\
         Patchy is a ferret with a stubborn streak. Patchy has bright orange eyes.\n\
         Dorinwick was well known in the region. He lives in Ashford. He works as a baker."
            .to_string(),
    ]
}

fn build_resilient(plan: FaultPlan) -> RagSystem {
    let mut system = RagSystem::build(
        shared_models(),
        RetrieverKind::OpenAiSim,
        SageConfig::sage(),
        LlmProfile::gpt4o_mini(),
        &resilience_corpus(),
    );
    system.enable_resilience(ResilienceConfig { plan, ..ResilienceConfig::default() });
    system
}

/// Arbitrary per-component rates: all fault kinds except panics (which
/// escape `answer_open` by design), total mass < 1.
fn rates_strategy() -> impl Strategy<Value = Rates> {
    (0.0f64..0.4, 0.0f64..0.3, 0.0f64..0.3).prop_map(|(transient, timeout, corrupt)| Rates {
        panic: 0.0,
        corrupt,
        timeout,
        transient,
    })
}

proptest! {
    // Each case builds two full systems; keep the count small.
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn same_fault_plan_reproduces_identical_results(
        seed in 0u64..1_000_000,
        embedder in rates_strategy(),
        index in rates_strategy(),
        reranker in rates_strategy(),
        reader in rates_strategy(),
        q_idx in 0usize..3,
    ) {
        let questions = [
            "What is the color of Whiskers's eyes?",
            "Where does Dorinwick live?",
            "What animal is Patchy?",
        ];
        let question = questions[q_idx];
        let plan = FaultPlan::seeded(seed)
            .with(Component::Embedder, embedder)
            .with(Component::IndexSearch, index)
            .with(Component::Reranker, reranker)
            .with(Component::Reader, reader);
        let a = build_resilient(plan.clone()).answer_open(question);
        let b = build_resilient(plan).answer_open(question);
        // Every deterministic field must match exactly (wall-clock
        // latencies are measurements, not outputs).
        prop_assert_eq!(&a.answer.text, &b.answer.text);
        prop_assert_eq!(a.answer.confidence, b.answer.confidence);
        prop_assert_eq!(a.picked_option, b.picked_option);
        prop_assert_eq!(&a.selected, &b.selected);
        prop_assert_eq!(a.cost.input_tokens, b.cost.input_tokens);
        prop_assert_eq!(a.cost.output_tokens, b.cost.output_tokens);
        prop_assert_eq!(a.feedback_rounds, b.feedback_rounds);
        prop_assert_eq!(a.feedback_score, b.feedback_score);
        prop_assert_eq!(&a.degraded, &b.degraded);
    }
}

// --- Sharded scatter-gather ----------------------------------------------
//
// The shard partition is exact (flat scan per shard, full top-k, global-id
// tie-break), so the merged results are byte-identical to the unsharded
// index at *every* shard count, and the merge is invariant to the order
// shards complete in. At the system level, enabling sharding on a healthy
// system must not change a single deterministic output field.

proptest! {
    #[test]
    fn shard_merge_equals_unsharded_and_ignores_completion_order(
        tails in proptest::collection::vec(
            proptest::collection::vec(-1.0f32..1.0, 3), 1..40),
        n in 1u32..6,
        k in 1usize..10,
        perm_seed in 0u64..1_000,
    ) {
        use sage::vecdb::{merge_hits, Hit, ShardRouter, ShardedFlat};
        // Append a 1.0 component so every vector has nonzero norm (cosine
        // scores stay finite and the orderings comparable).
        let vecs: Vec<Vec<f32>> = tails
            .into_iter()
            .map(|mut v| { v.push(1.0); v })
            .collect();
        let q = [0.5f32, -0.25, 0.8, 1.0];
        let sharded = ShardedFlat::build(ShardRouter::new(n), vecs.iter().map(Vec::as_slice));
        let mut parts: Vec<Vec<Hit>> =
            (0..sharded.shard_count()).map(|s| sharded.search_shard(s, &q, k)).collect();
        let merged = merge_hits(&parts, k);

        // Unsharded ground truth over the same vectors.
        let mut flat = FlatIndex::cosine();
        for v in &vecs {
            flat.add(v.clone());
        }
        prop_assert_eq!(&merged, &flat.search(&q, k), "sharded merge diverged at N={}", n);

        // Deterministic permutation of the parts: completion order must
        // not leak into the merged bytes.
        let len = parts.len();
        parts.rotate_left((perm_seed as usize) % len);
        if len >= 2 {
            parts.swap(0, (perm_seed as usize / 7) % len);
        }
        prop_assert_eq!(merge_hits(&parts, k), merged);
    }
}

proptest! {
    // Each case serves queries through two full pipelines; keep it small.
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn sharded_serving_is_byte_identical_to_unsharded(
        n in 1u32..5,
        q_idx in 0usize..3,
    ) {
        let questions = [
            "What is the color of Whiskers's eyes?",
            "Where does Dorinwick live?",
            "What animal is Patchy?",
        ];
        let question = questions[q_idx];
        let mut system = RagSystem::build(
            shared_models(),
            RetrieverKind::OpenAiSim,
            SageConfig::sage(),
            LlmProfile::gpt4o_mini(),
            &resilience_corpus(),
        );
        let plain = system.answer_open(question);
        system.enable_sharding(n, None);
        let sharded = system.answer_open(question);
        // Every deterministic field must match: the exact partition plus
        // the global-id tie-break make the fan-out invisible on a healthy
        // system — N=1 *and* every other N.
        prop_assert_eq!(&plain.answer.text, &sharded.answer.text);
        prop_assert_eq!(plain.answer.confidence, sharded.answer.confidence);
        prop_assert_eq!(&plain.selected, &sharded.selected);
        prop_assert_eq!(plain.cost.input_tokens, sharded.cost.input_tokens);
        prop_assert_eq!(plain.cost.output_tokens, sharded.cost.output_tokens);
        prop_assert_eq!(plain.feedback_rounds, sharded.feedback_rounds);
        prop_assert_eq!(plain.feedback_score, sharded.feedback_score);
        prop_assert_eq!(&plain.degraded, &sharded.degraded);
    }
}

// --- Cross-query slot scheduler ------------------------------------------
//
// `try_answer_batch` runs many queries through the slot scheduler, which
// interleaves their stages and coalesces same-stage slots into cross-query
// batch ops. The interleaving must be invisible: every deterministic
// output field and the telemetry cost ledger must be byte-identical to a
// plain sequential loop over `try_answer_open`, at every worker count,
// every batch size, and under any fault plan — including injected panics,
// which fail exactly their own slot.

/// A batch cycling over the corpus facts: repeats stress the coalescer
/// (identical slots in one group) without changing any single answer.
fn scheduler_questions() -> Vec<String> {
    let pool = [
        "What is the color of Whiskers's eyes?",
        "Where does Dorinwick live?",
        "What animal is Patchy?",
        "What is the color of Patchy's eyes?",
        "What does Dorinwick work as?",
        "What settled over the valley?",
    ];
    (0..16).map(|i| pool[i % pool.len()].to_string()).collect()
}

/// Every deterministic field of one batch slot, rendered for comparison.
/// Wall-clock latencies are measurements, not outputs, and are excluded.
fn slot_view(r: &Result<QueryResult, SageError>) -> String {
    match r {
        Ok(q) => format!(
            "ok|{}|{:?}|{:?}|{:?}|{}|{}|{}|{:?}|{:?}",
            q.answer.text,
            q.answer.confidence,
            q.picked_option,
            q.selected,
            q.cost.input_tokens,
            q.cost.output_tokens,
            q.feedback_rounds,
            q.feedback_score,
            q.degraded,
        ),
        Err(e) => format!("err|{e:?}"),
    }
}

/// Per-stage cost ledger snapshot from a telemetry hub.
fn ledger_view(hub: &sage::telemetry::Telemetry) -> Vec<sage::telemetry::StageCost> {
    sage::telemetry::Stage::ALL.iter().map(|&s| hub.ledger().get(s)).collect()
}

/// The acceptance grid, exhaustively: workers {1,2,4,8} x batch {1,3,16}
/// under a fixed fault plan with every fault kind armed (panics included).
#[test]
fn batched_answers_equal_sequential_at_every_grid_point() {
    let questions = scheduler_questions();
    let plan = FaultPlan::seeded(7)
        .with(
            Component::Reader,
            Rates { panic: 0.10, corrupt: 0.10, timeout: 0.10, transient: 0.25 },
        )
        .with(
            Component::Embedder,
            Rates { panic: 0.0, corrupt: 0.05, timeout: 0.05, transient: 0.20 },
        );
    let mut system = build_resilient(plan);
    for cut in [1usize, 3, 16] {
        let qs = &questions[..cut];
        let hub = system.enable_telemetry();
        let seq: Vec<_> = qs.iter().map(|q| system.try_answer_open(q)).collect();
        let seq_cost = ledger_view(&hub);
        for workers in [1usize, 2, 4, 8] {
            let hub = system.enable_telemetry();
            let got = system.try_answer_batch(qs, workers);
            assert_eq!(got.len(), qs.len());
            for (i, (g, s)) in got.iter().zip(&seq).enumerate() {
                assert_eq!(
                    slot_view(g),
                    slot_view(s),
                    "slot {i} diverged at workers={workers} batch={cut}"
                );
            }
            assert_eq!(
                ledger_view(&hub),
                seq_cost,
                "cost ledger diverged at workers={workers} batch={cut}"
            );
        }
    }
}

/// Rates with panic mass: scheduler slots must fail independently.
fn panicky_rates_strategy() -> impl Strategy<Value = Rates> {
    (0.0f64..0.3, 0.0f64..0.2, 0.0f64..0.2, 0.0f64..0.25).prop_map(
        |(transient, timeout, corrupt, panic)| Rates { panic, corrupt, timeout, transient },
    )
}

proptest! {
    // Each case builds two full systems; keep the count small.
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn scheduler_interleaving_is_invisible_under_any_fault_plan(
        seed in 0u64..1_000_000,
        embedder in rates_strategy(),
        reranker in rates_strategy(),
        reader in panicky_rates_strategy(),
        w_idx in 0usize..4,
        b_idx in 0usize..3,
    ) {
        let workers = [1usize, 2, 4, 8][w_idx];
        let cut = [1usize, 3, 16][b_idx];
        let questions = scheduler_questions();
        let qs = &questions[..cut];
        let plan = FaultPlan::seeded(seed)
            .with(Component::Embedder, embedder)
            .with(Component::Reranker, reranker)
            .with(Component::Reader, reader);

        let mut batch_sys = build_resilient(plan.clone());
        let batch_hub = batch_sys.enable_telemetry();
        let got = batch_sys.try_answer_batch(qs, workers);

        let mut seq_sys = build_resilient(plan);
        let seq_hub = seq_sys.enable_telemetry();
        let seq: Vec<_> = qs.iter().map(|q| seq_sys.try_answer_open(q)).collect();

        for (i, (g, s)) in got.iter().zip(&seq).enumerate() {
            prop_assert_eq!(
                slot_view(g),
                slot_view(s),
                "slot {} diverged at workers={} batch={}", i, workers, cut
            );
        }
        prop_assert_eq!(ledger_view(&batch_hub), ledger_view(&seq_hub));
    }
}

// --- telemetry -----------------------------------------------------------

fn histogram_snapshot_of(values: &[u64]) -> sage::telemetry::HistogramSnapshot {
    let h = sage::telemetry::Histogram::new();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

proptest! {
    #[test]
    fn histogram_merge_is_associative(
        a in proptest::collection::vec(0u32..u32::MAX, 0..50),
        b in proptest::collection::vec(0u32..u32::MAX, 0..50),
        c in proptest::collection::vec(0u32..u32::MAX, 0..50),
    ) {
        let widen = |v: &[u32]| v.iter().map(|&x| x as u64).collect::<Vec<u64>>();
        let (sa, sb, sc) = (
            histogram_snapshot_of(&widen(&a)),
            histogram_snapshot_of(&widen(&b)),
            histogram_snapshot_of(&widen(&c)),
        );
        // (a + b) + c
        let mut left = sa.clone();
        left.merge(&sb);
        left.merge(&sc);
        // a + (b + c)
        let mut bc = sb.clone();
        bc.merge(&sc);
        let mut right = sa.clone();
        right.merge(&bc);
        prop_assert_eq!(&left, &right);
        prop_assert_eq!(left.count(), (a.len() + b.len() + c.len()) as u64);
        // Merging is exact: the merged snapshot equals one histogram fed
        // the concatenation.
        let mut all = widen(&a);
        all.extend(widen(&b));
        all.extend(widen(&c));
        prop_assert_eq!(left, histogram_snapshot_of(&all));
    }

    #[test]
    fn histogram_quantiles_land_in_the_true_bucket(
        mut values in proptest::collection::vec(0u64..1_000_000_000_000, 1..200),
        q in 0.0f64..1.0,
    ) {
        use sage::telemetry::hist::bucket_of;
        let s = histogram_snapshot_of(&values);
        values.sort_unstable();
        let n = values.len() as u64;
        // The estimate must fall in the same log-bucket as the true order
        // statistic of the same rank — i.e. within one bucket width.
        for q in [q, 0.50, 0.99] {
            let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
            let truth = values[(rank - 1) as usize];
            prop_assert_eq!(
                bucket_of(s.quantile(q)),
                bucket_of(truth),
                "q={} rank={} truth={} est={}", q, rank, truth, s.quantile(q)
            );
        }
    }

    #[test]
    fn histogram_merge_spans_disjoint_bucket_ranges(
        small in proptest::collection::vec(0u64..16, 1..40),
        huge in proptest::collection::vec((1u64 << 40)..(1u64 << 50), 1..16),
    ) {
        use sage::telemetry::hist::{bucket_of, bucket_upper};
        // The two snapshots occupy disjoint, differently-sized slices of
        // the bucket array: merge must be exact bucket-wise addition with
        // no renormalisation across the gap.
        let lo = histogram_snapshot_of(&small);
        let hi = histogram_snapshot_of(&huge);
        let mut merged = lo.clone();
        merged.merge(&hi);
        prop_assert_eq!(merged.count(), (small.len() + huge.len()) as u64);
        prop_assert_eq!(merged.sum, lo.sum + hi.sum);
        for i in 0..merged.counts.len() {
            prop_assert_eq!(merged.counts[i], lo.counts[i] + hi.counts[i]);
        }
        // The low tail still resolves to a small bucket and the high tail
        // to a huge one — neither population shadows the other.
        let small_max = *small.iter().max().unwrap();
        prop_assert!(merged.quantile(0.0) <= bucket_upper(bucket_of(small_max)));
        prop_assert!(merged.quantile(1.0) >= 1u64 << 40);
        // Merging with an empty snapshot is the identity.
        let empty = histogram_snapshot_of(&[]);
        let mut padded = merged.clone();
        padded.merge(&empty);
        prop_assert_eq!(padded, merged);
    }

    #[test]
    fn single_sample_quantiles_collapse_to_the_bucket_upper(v in 0u64..u64::MAX) {
        use sage::telemetry::hist::{bucket_of, bucket_upper};
        // With one sample every rank clamps to 1, so every quantile —
        // p99 included — is that sample's bucket upper bound.
        let s = histogram_snapshot_of(&[v]);
        for q in [0.0, 0.5, 0.99, 1.0] {
            prop_assert_eq!(s.quantile(q), bucket_upper(bucket_of(v)), "q={} v={}", q, v);
        }
    }
}

#[test]
fn single_sample_p99_at_the_extreme_buckets() {
    use sage::telemetry::hist::{bucket_of, bucket_upper};
    // Edge buckets: zero lives in bucket 0 (upper bound 0) and u64::MAX
    // in the saturating top bucket (upper bound u64::MAX).
    assert_eq!(histogram_snapshot_of(&[0]).quantile(0.99), 0);
    assert_eq!(histogram_snapshot_of(&[1]).quantile(0.99), 1);
    assert_eq!(histogram_snapshot_of(&[u64::MAX]).quantile(0.99), u64::MAX);
    assert_eq!(bucket_upper(bucket_of(u64::MAX)), u64::MAX);
    // The empty histogram reports 0 rather than panicking on rank 0.
    assert_eq!(histogram_snapshot_of(&[]).quantile(0.99), 0);
}

// --- flight recorder -----------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn recorder_retention_is_deterministic_and_bounded(
        stream in proptest::collection::vec(
            // (service_ns, outcome, brownout rung, tokens); deadline-missed
            // derives from service_ns parity to stay within tuple arity.
            (0u64..5_000_000, 0usize..5, 0u8..4, 0u64..10_000),
            0..120,
        ),
        capacity in 1usize..24,
        window in 1usize..10,
        topk in 1usize..4,
    ) {
        use sage::obs::{FlightRecorder, Outcome, QueryObs, RecorderConfig};
        const OUTCOMES: [Outcome; 5] =
            [Outcome::Done, Outcome::Shed, Outcome::Expired, Outcome::Error, Outcome::Panicked];
        let make = |i: usize| {
            let (service_ns, outcome, brownout, tokens) = stream[i];
            let missed = service_ns % 2 == 1;
            QueryObs {
                seq: i as u64,
                class: ["interactive", "batch", "background"][i % 3],
                arrival_us: i as u64 * 100,
                end_us: i as u64 * 100 + service_ns / 1_000,
                sojourn_ns: service_ns,
                service_ns,
                outcome: OUTCOMES[outcome],
                brownout,
                degraded: 0,
                deadline_missed: missed,
                tokens,
                confidence_milli: 500,
                question: format!("q{i}"),
            }
        };
        let run = || {
            let mut rec = FlightRecorder::new(RecorderConfig { capacity, window, topk });
            for i in 0..stream.len() {
                rec.capture_query(&make(i));
            }
            rec
        };
        let (a, b) = (run(), run());
        // Retention is a pure function of the observation stream.
        prop_assert_eq!(a.to_jsonl(), b.to_jsonl());
        // The ring never exceeds capacity and accounts for every offer.
        prop_assert!(a.len() <= capacity);
        let stats = a.stats();
        prop_assert_eq!(stats.captured, stream.len() as u64);
        prop_assert_eq!(stats.captured, a.len() as u64 + stats.evicted);
        // Tail-based retention: flagged observations are only evicted once
        // the whole ring is flagged, so the retained flagged count is the
        // total clamped at capacity.
        let flagged = |o: &QueryObs| {
            o.outcome != Outcome::Done || o.brownout > 0 || o.degraded > 0 || o.deadline_missed
        };
        let flagged_total = (0..stream.len()).filter(|&i| flagged(&make(i))).count();
        let retained_flagged =
            a.to_jsonl().lines().filter(|l| {
                !(l.contains("\"outcome\":\"done\"")
                    && l.contains("\"brownout\":0")
                    && l.contains("\"degraded\":0")
                    && l.contains("\"deadline_missed\":false"))
            }).count();
        prop_assert_eq!(retained_flagged, flagged_total.min(capacity));
    }
}

/// Blank out the digit runs after the wall-clock keys (`"start_ns":` and
/// `"dur_ns":`) so two traces of the same run can be compared exactly.
fn strip_wallclock(s: &str) -> String {
    let b = s.as_bytes();
    let mut out = Vec::with_capacity(b.len());
    let mut i = 0;
    while i < b.len() {
        let rest = &b[i..];
        let matched = [b"\"start_ns\":".as_slice(), b"\"dur_ns\":".as_slice()]
            .into_iter()
            .find(|k| rest.starts_with(k));
        if let Some(k) = matched {
            out.extend_from_slice(k);
            i += k.len();
            while i < b.len() && b[i].is_ascii_digit() {
                i += 1;
            }
        } else {
            out.push(b[i]);
            i += 1;
        }
    }
    String::from_utf8(out).expect("stripping ASCII digits keeps UTF-8 valid")
}

#[test]
fn telemetry_traces_are_deterministic_modulo_wallclock() {
    use sage::core::config::{RetrieverKind, SageConfig};
    use sage::core::models::{TrainBudget, TrainedModels};
    use sage::core::pipeline::RagSystem;
    use sage::llm::LlmProfile;

    let models = TrainedModels::train(TrainBudget::tiny());
    let corpus = vec![
        "Whiskers is a playful tabby cat. He has bright green eyes.\n\
         Dorinwick was well known in the region. He lives in Ashford."
            .to_string(),
    ];
    let trace_of = || {
        let mut system = RagSystem::build(
            &models,
            RetrieverKind::OpenAiSim,
            SageConfig::sage(),
            LlmProfile::gpt4o_mini(),
            &corpus,
        );
        let hub = system.enable_telemetry();
        system.answer_open("What is the color of Whiskers's eyes?");
        hub.traces_jsonl()
    };
    let a = trace_of();
    let b = trace_of();
    assert!(!a.is_empty(), "no trace recorded");
    // Identical builds + identical question -> identical span structure,
    // names, parents, and fields; only wall-clock readings may differ.
    assert_eq!(strip_wallclock(&a), strip_wallclock(&b));
    // Sanity: the stripper actually removed timing digits.
    assert_ne!(strip_wallclock(&a), a);
}

// ---------------------------------------------------------------------------
// sage-lint lexer: rule-trigger tokens hidden inside comments, strings, and
// raw strings must be invisible to every rule (zero false positives).

/// Code fragments that would each fire a lint rule if they appeared as real
/// tokens in a serving-path library crate.
fn lint_trigger() -> impl Strategy<Value = String> {
    prop_oneof![
        1 => Just("x.unwrap()".to_string()),
        1 => Just("opt.expect(\"present\")".to_string()),
        1 => Just("panic!(\"boom\")".to_string()),
        1 => Just("unreachable!()".to_string()),
        1 => Just("println!(\"debug {v}\")".to_string()),
        1 => Just("eprintln!(\"oops\")".to_string()),
        1 => Just("dbg!(value)".to_string()),
        1 => Just("HashMap::new()".to_string()),
        1 => Just("let s: HashSet<u32> = HashSet::new();".to_string()),
        1 => Just("Instant::now()".to_string()),
        1 => Just("SystemTime::now()".to_string()),
        1 => Just("Ordering::Relaxed".to_string()),
        1 => Just("use sage_core::pipeline::RagSystem;".to_string()),
        1 => Just("use sage_lint::rules;".to_string()),
    ]
}

/// Hide a trigger in non-code text: a line comment, a (nested) block
/// comment, an escaped string literal, or a raw string literal.
fn hidden_trigger() -> impl Strategy<Value = String> {
    (lint_trigger(), 0usize..4).prop_map(|(snippet, mode)| match mode {
        0 => format!("    // note: {snippet}\n"),
        1 => format!("    /* outer /* {snippet} */ still comment */\n"),
        2 => {
            let escaped = snippet.replace('\\', "\\\\").replace('"', "\\\"");
            format!("    let _s = \"{escaped}\";\n")
        }
        _ => format!("    let _r = r#\"{snippet}\"#;\n"),
    })
}

proptest! {
    #[test]
    fn lint_lexer_ignores_triggers_in_text_content(
        hidden in proptest::collection::vec(hidden_trigger(), 1..8),
    ) {
        let mut src = String::from("//! Module docs mentioning panic! safely.\nfn harmless() {\n");
        for h in &hidden {
            src.push_str(h);
        }
        src.push_str("    let _done = 1;\n}\n");
        // "core" is the strictest crate key: library + serving rules all
        // apply, so any leak from text content would surface here.
        let fr = sage::lint::lint_source("core", "generated.rs", &src);
        prop_assert!(
            fr.violations.is_empty(),
            "false positives from generated source:\n{}\n{:?}",
            src,
            fr.violations
        );
        prop_assert_eq!(fr.suppressed, 0);
    }

    #[test]
    fn lint_flags_the_same_triggers_as_real_code(trigger in lint_trigger()) {
        // The converse guard: the exact snippets the lexer must ignore in
        // text DO fire when they are real tokens (otherwise the test
        // above would pass vacuously against a lexer that sees nothing).
        let src = format!("fn live() {{\n    {trigger}\n}}\n");
        let fr = sage::lint::lint_source("core", "generated.rs", &src);
        prop_assert!(
            !fr.violations.is_empty(),
            "trigger compiled to no violation:\n{}",
            src
        );
    }
}

// --- Admission control ----------------------------------------------------
//
// The load-shedding decision is a pure function of (seed, sequence number,
// class, queue state) — no wall clock, no process randomness — so replaying
// the same operation sequence against two queues must produce the same
// decisions, and occupancy can never exceed capacity.

use sage::prelude::{AdmissionConfig, AdmissionQueue, BrownoutLevel, Priority, QueryBudget};
use std::time::Duration;

proptest! {
    #[test]
    fn admission_decisions_replay_identically(
        seed in 0u64..1_000_000,
        capacity in 1usize..32,
        ops in proptest::collection::vec((0u8..3, proptest::bool::ANY), 1..200),
    ) {
        let run = || {
            let mut q = AdmissionQueue::new(AdmissionConfig {
                capacity,
                seed,
                ..AdmissionConfig::default()
            });
            let mut decisions = Vec::new();
            for &(class, release) in &ops {
                let class = Priority::ALL[class as usize % Priority::COUNT];
                decisions.push(q.admit(class));
                // Depth is bounded by capacity at all times.
                assert!(q.depth() <= capacity, "depth {} > capacity {capacity}", q.depth());
                if release {
                    q.release();
                }
            }
            (decisions, q.depth(), q.shed_total(), q.admitted_total())
        };
        prop_assert_eq!(run(), run());
    }

    #[test]
    fn interactive_never_sheds_below_capacity(
        seed in 0u64..1_000_000,
        capacity in 2usize..32,
        fill in 0usize..32,
    ) {
        // Interactive's ramp starts at occupancy 1.0, so the only way to
        // shed it is a hard-full queue.
        let mut q = AdmissionQueue::new(AdmissionConfig {
            capacity,
            seed,
            ..AdmissionConfig::default()
        });
        for _ in 0..fill.min(capacity - 1) {
            q.admit(Priority::Interactive);
        }
        prop_assert_eq!(q.admit(Priority::Interactive), sage::admission::Decision::Admitted);
    }
}

// --- Brownout ladder monotonicity -----------------------------------------
//
// On a fixed system, shrinking the budget must only push queries *deeper*
// down the brownout ladder (never shallower) and never make them more
// expensive. Grid steps are coarse (>= 100 ms / >= 1000 tokens) because the
// checkpoint charge at a decided level leaves small non-monotone windows
// (<~10 ms and <~750 model-tokens) right at the planning thresholds.

fn budgeted_system() -> RagSystem {
    RagSystem::build(
        shared_models(),
        RetrieverKind::OpenAiSim,
        SageConfig::sage(),
        LlmProfile::gpt4o_mini(),
        &resilience_corpus(),
    )
}

#[test]
fn brownout_ladder_monotone_in_deadline() {
    let system = budgeted_system();
    for question in ["What is the color of Whiskers's eyes?", "Where does Dorinwick live?"] {
        // Ascending deadlines, generous token budget: the ladder level
        // must be non-increasing, the feedback rounds non-decreasing, and
        // the realized cost non-decreasing (modulo answer-length wiggle).
        let deadlines_ms = [500u64, 1_500, 2_500, 4_000, 8_000, 20_000, 120_000];
        let mut prev: Option<(BrownoutLevel, usize, u64)> = None;
        for ms in deadlines_ms {
            let budget = QueryBudget::new(Duration::from_millis(ms), 1_000_000);
            let r = system.answer_open_budgeted(question, budget);
            let cost = r.cost.input_tokens + r.cost.output_tokens;
            if let Some((level, rounds, tokens)) = prev {
                assert!(
                    r.brownout <= level,
                    "{question}: ladder got deeper as deadline grew to {ms}ms \
                     ({level} -> {})",
                    r.brownout
                );
                assert!(
                    r.feedback_rounds >= rounds,
                    "{question}: feedback rounds shrank as deadline grew to {ms}ms"
                );
                assert!(
                    cost + 64 >= tokens,
                    "{question}: cost fell from {tokens} to {cost} as deadline grew to {ms}ms"
                );
            }
            prev = Some((r.brownout, r.feedback_rounds, cost));
        }
        // The extremes actually differ: the tightest budget browned out,
        // the loosest did not.
        let tight = system
            .answer_open_budgeted(question, QueryBudget::new(Duration::from_millis(500), 1_000_000));
        assert!(tight.brownout > BrownoutLevel::None);
        let loose = system.answer_open_budgeted(question, QueryBudget::generous());
        assert_eq!(loose.brownout, BrownoutLevel::None);
        assert_eq!(loose.answer.text, system.answer_open(question).answer.text);
    }
}

#[test]
fn brownout_ladder_monotone_in_token_budget() {
    let system = budgeted_system();
    let question = "What is the color of Whiskers's eyes?";
    let token_grid = [300u64, 1_300, 2_300, 5_300, 1_000_000];
    let mut prev: Option<BrownoutLevel> = None;
    for tokens in token_grid {
        let r = system
            .answer_open_budgeted(question, QueryBudget::new(Duration::from_secs(120), tokens));
        if let Some(level) = prev {
            assert!(
                r.brownout <= level,
                "ladder got deeper as tokens grew to {tokens}: {level} -> {}",
                r.brownout
            );
        }
        prev = Some(r.brownout);
    }
}

// --- Crash-safe persistence -----------------------------------------------
//
// A saved system file carries a CRC-32 trailer; flipping any single bit in
// the payload or the stored checksum must surface as a checksum error on
// load (never a panic, never a silent success).

fn saved_system_file() -> &'static Vec<u8> {
    static BLOB: OnceLock<Vec<u8>> = OnceLock::new();
    BLOB.get_or_init(|| {
        let system = RagSystem::build(
            shared_models(),
            RetrieverKind::Bm25,
            SageConfig::sage(),
            LlmProfile::gpt4o_mini(),
            &resilience_corpus(),
        );
        let path = std::env::temp_dir().join("sage_prop_persist.bin");
        system.save(&path).expect("save");
        let raw = std::fs::read(&path).expect("read saved file");
        std::fs::remove_file(&path).ok();
        raw
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn any_single_bit_flip_is_caught_by_the_checksum(
        pos_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let clean = saved_system_file();
        // Restrict flips to the payload + stored-CRC region (the last 8
        // bytes are the trailer magic; flipping those downgrades the file
        // to the legacy no-trailer path, covered by a unit test below).
        let region = clean.len() - 8;
        let pos = ((pos_frac * region as f64) as usize).min(region - 1);
        let mut torn = clean.clone();
        torn[pos] ^= 1 << bit;
        let path = std::env::temp_dir().join(format!("sage_prop_flip_{pos}_{bit}.bin"));
        std::fs::write(&path, &torn).expect("write");
        let result = RagSystem::load(&path, LlmProfile::gpt4o_mini());
        std::fs::remove_file(&path).ok();
        match result {
            Ok(_) => prop_assert!(false, "flip at {pos} bit {bit} loaded successfully"),
            Err(e) => prop_assert!(
                e.to_string().contains("checksum mismatch"),
                "flip at {} bit {}: expected checksum error, got: {}", pos, bit, e
            ),
        }
    }
}

#[test]
fn clean_saved_file_roundtrips_and_magic_flips_fail_closed() {
    let clean = saved_system_file();
    let path = std::env::temp_dir().join("sage_prop_persist_clean.bin");
    std::fs::write(&path, clean).expect("write");
    assert!(RagSystem::load(&path, LlmProfile::gpt4o_mini()).is_ok(), "clean file must load");
    // Corrupt the trailer magic itself: the file falls back to the legacy
    // (no-trailer) parse, whose 12 trailing junk bytes make it malformed.
    let mut torn = clean.clone();
    let magic_pos = clean.len() - 3;
    torn[magic_pos] ^= 0x20;
    std::fs::write(&path, &torn).expect("write");
    assert!(RagSystem::load(&path, LlmProfile::gpt4o_mini()).is_err());
    std::fs::remove_file(&path).ok();
}

// ---------------------------------------------------------------------------
// Live corpus: compaction equivalence and crash-point recovery
// ---------------------------------------------------------------------------

mod live_corpus {
    use super::*;
    use sage::core::live::{CorpusWriter, LiveConfig, LiveError, LiveOp};
    use sage::resilience::{CrashPlan, CrashPoint};
    use std::sync::atomic::{AtomicUsize, Ordering};

    static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

    fn scratch() -> std::path::PathBuf {
        let n = DIR_SEQ.fetch_add(1, Ordering::SeqCst);
        let dir =
            std::env::temp_dir().join(format!("sage_prop_live_{}_{n}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    /// Unique per (doc, revision) so score ties between distinct chunks
    /// cannot occur and every upsert is dirty.
    fn doc_text(doc: u8, rev: u32) -> String {
        format!(
            "Record {doc} revision {rev}. The committee filed item {}. \
             A further note covers shelf {} of archive {doc}.",
            u32::from(doc) * 31 + rev,
            rev + 1
        )
    }

    fn doc_id(doc: u8) -> String {
        format!("doc-{doc}")
    }

    /// Compact on every tombstone, so the store under test never carries
    /// dead slots across a commit boundary.
    fn eager_compaction() -> LiveConfig {
        LiveConfig { compact_dead_fraction: 0.0, compact_min_dead: 1, ..LiveConfig::default() }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// After any interleaving of upserts and deletes with eager
        /// compaction, the store is search-equivalent (bit-identical
        /// scores) to a fresh store built from scratch over the surviving
        /// documents in last-update order — compaction loses nothing and
        /// leaks nothing.
        #[test]
        fn compacted_store_equals_rebuild_over_survivors(
            ops in proptest::collection::vec((0u8..8, proptest::bool::ANY), 1..40),
        ) {
            let dir = scratch();
            let (mut w, _) = CorpusWriter::open(&dir, eager_compaction()).expect("open");
            let mut revs = [0u32; 8];
            let mut order: Vec<u8> = Vec::new(); // docs by last dirty upsert
            for batch_ops in ops.chunks(3) {
                let batch: Vec<LiveOp> = batch_ops
                    .iter()
                    .map(|&(doc, delete)| {
                        order.retain(|&d| d != doc);
                        if delete {
                            LiveOp::Delete { doc_id: doc_id(doc) }
                        } else {
                            revs[doc as usize] += 1;
                            order.push(doc);
                            LiveOp::Upsert {
                                doc_id: doc_id(doc),
                                text: doc_text(doc, revs[doc as usize]),
                            }
                        }
                    })
                    .collect();
                w.commit(&batch).expect("commit");
            }

            let dir2 = scratch();
            let (mut fresh, _) = CorpusWriter::open(&dir2, eager_compaction()).expect("open");
            let rebuild: Vec<LiveOp> = order
                .iter()
                .map(|&doc| LiveOp::Upsert {
                    doc_id: doc_id(doc),
                    text: doc_text(doc, revs[doc as usize]),
                })
                .collect();
            if !rebuild.is_empty() {
                fresh.commit(&rebuild).expect("rebuild commit");
            }

            let (a, b) = (w.snapshot(), fresh.snapshot());
            prop_assert_eq!(a.doc_count(), b.doc_count());
            prop_assert_eq!(a.live_chunks(), b.live_chunks());
            for q in ["committee filed item", "note covers shelf", "record archive revision"] {
                let ha: Vec<(String, String, u32)> = a
                    .search(q, 6)
                    .into_iter()
                    .map(|h| (h.doc_id, h.chunk, h.score.to_bits()))
                    .collect();
                let hb: Vec<(String, String, u32)> = b
                    .search(q, 6)
                    .into_iter()
                    .map(|h| (h.doc_id, h.chunk, h.score.to_bits()))
                    .collect();
                prop_assert_eq!(ha, hb, "query {:?} diverged after compaction", q);
            }
            std::fs::remove_dir_all(&dir).ok();
            std::fs::remove_dir_all(&dir2).ok();
        }

        /// Whatever history preceded it, a crash injected at any of the
        /// five write barriers recovers to exactly the last committed
        /// epoch with an identical content digest.
        #[test]
        fn any_crash_point_recovers_to_last_committed_epoch(
            ops in proptest::collection::vec((0u8..6, proptest::bool::ANY), 1..20),
            point_idx in 0usize..5,
        ) {
            let point = CrashPoint::ALL[point_idx];
            let dir = scratch();
            let cfg = LiveConfig::default();
            let (mut w, _) = CorpusWriter::open(&dir, cfg).expect("open");
            let mut revs = [0u32; 6];
            for batch_ops in ops.chunks(4) {
                let batch: Vec<LiveOp> = batch_ops
                    .iter()
                    .map(|&(doc, delete)| {
                        if delete {
                            LiveOp::Delete { doc_id: doc_id(doc) }
                        } else {
                            revs[doc as usize] += 1;
                            LiveOp::Upsert {
                                doc_id: doc_id(doc),
                                text: doc_text(doc, revs[doc as usize]),
                            }
                        }
                    })
                    .collect();
                w.commit(&batch).expect("commit");
            }
            let (epoch, digest) = (w.epoch(), w.digest());
            drop(w);

            let (mut w, _) =
                CorpusWriter::open_with_crash_plan(&dir, cfg, CrashPlan::always(point))
                    .expect("reopen with plan");
            let crashed = w.commit(&[LiveOp::Upsert {
                doc_id: "doc-crash".to_string(),
                text: "This batch must never become visible.".to_string(),
            }]);
            prop_assert!(
                matches!(crashed, Err(LiveError::CrashInjected(p)) if p == point),
                "expected injected crash at {point}"
            );
            drop(w);

            let (w, rec) = CorpusWriter::open(&dir, cfg).expect("recover");
            prop_assert_eq!(rec.epoch, epoch);
            prop_assert_eq!(w.epoch(), epoch);
            prop_assert_eq!(w.digest(), digest, "recovered state diverged at {}", point);
            prop_assert!(w.snapshot().doc_fingerprint("doc-crash").is_none());
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}

// --- Lint semantic engine -------------------------------------------------
//
// The item parser, call-graph export, and panic-reachability analysis
// must be structure-preserving and deterministic on arbitrary generated
// workspaces, not just the fixtures in the lint crate's unit suite.

mod lint_semantics {
    use proptest::prelude::*;
    use sage::lint::parser::{parse_items, walk, ItemKind};
    use sage::lint::{lexer, render_human, rules, workspace_analysis, workspace_report};
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicUsize, Ordering};

    static WS_COUNTER: AtomicUsize = AtomicUsize::new(0);

    /// Materialize files into a unique throwaway workspace root.
    fn synth_workspace(files: &[(&str, String)]) -> PathBuf {
        let id = WS_COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("sage_lint_prop_{}_{id}", std::process::id()));
        for (rel, text) in files {
            let path = dir.join(rel);
            std::fs::create_dir_all(path.parent().unwrap()).unwrap();
            std::fs::write(path, text).unwrap();
        }
        dir
    }

    #[derive(Debug, Clone)]
    enum Shape {
        Fn,
        Mod,
        Impl,
    }

    fn shape() -> impl Strategy<Value = Shape> {
        prop_oneof![Just(Shape::Fn), Just(Shape::Mod), Just(Shape::Impl)]
    }

    /// Identifier-safe names; the `w` prefix keeps keywords out.
    fn ident() -> impl Strategy<Value = String> {
        "[a-z]{3,8}".prop_map(|s| format!("w{s}"))
    }

    proptest! {
        #[test]
        fn parser_item_spans_round_trip(
            spec in proptest::collection::vec((shape(), ident()), 1..12),
        ) {
            let mut src = String::new();
            let mut expect: Vec<(ItemKind, String)> = Vec::new();
            for (i, (shape, n)) in spec.iter().enumerate() {
                match shape {
                    Shape::Fn => {
                        src.push_str(&format!("fn {n}_{i}(x: u32) -> u32 {{ x + 1 }}\n"));
                        expect.push((ItemKind::Fn, format!("{n}_{i}")));
                    }
                    Shape::Mod => {
                        src.push_str(&format!(
                            "mod {n}_{i} {{ fn inner_{i}() {{ let y = 2; }} }}\n"
                        ));
                        expect.push((ItemKind::Mod, format!("{n}_{i}")));
                        expect.push((ItemKind::Fn, format!("inner_{i}")));
                    }
                    Shape::Impl => {
                        src.push_str(&format!(
                            "struct T{i};\nimpl T{i} {{ fn {n}_{i}(&self) -> u8 {{ 3 }} }}\n"
                        ));
                        expect.push((ItemKind::Impl, format!("T{i}")));
                        expect.push((ItemKind::Fn, format!("{n}_{i}")));
                    }
                }
            }
            let lexed = lexer::lex(&src);
            let parsed = parse_items(&lexed.tokens);
            let mut got: Vec<(ItemKind, String)> = Vec::new();
            walk(&parsed, &mut |it, _| got.push((it.kind, it.name.clone())));
            prop_assert_eq!(&got, &expect, "items diverged for source:\n{}", src);

            // Span round-trip: every item's token range ends at its own
            // closer, and fn body interiors nest inside it brace-balanced.
            let toks = &lexed.tokens;
            let mut span_err: Option<String> = None;
            walk(&parsed, &mut |it, _| {
                if span_err.is_some() {
                    return;
                }
                if it.tok_end == 0 || it.tok_end > toks.len() || it.tok_start >= it.tok_end {
                    span_err = Some(format!("bad span {}..{} for {}", it.tok_start, it.tok_end, it.name));
                    return;
                }
                let last = &toks[it.tok_end - 1].text;
                if last != "}" && last != ";" {
                    span_err = Some(format!("item {} ends at `{last}`", it.name));
                    return;
                }
                if let Some((b0, b1)) = it.body {
                    if !(it.tok_start < b0 && b0 <= b1 && b1 < it.tok_end) {
                        span_err = Some(format!("body {b0}..{b1} escapes item span for {}", it.name));
                        return;
                    }
                    let depth: i64 = toks[b0..b1]
                        .iter()
                        .map(|t| match t.text.as_str() { "{" => 1, "}" => -1, _ => 0 })
                        .sum();
                    if depth != 0 {
                        span_err = Some(format!("unbalanced body for {}", it.name));
                    }
                }
            });
            prop_assert!(span_err.is_none(), "{} in source:\n{}", span_err.unwrap(), src);
        }

        #[test]
        fn callgraph_json_identical_across_runs_and_directories(
            n in 2usize..8,
            cross in proptest::bool::ANY,
        ) {
            // A call chain w0 -> w1 -> ... across one or two crates; the
            // exported call graph must be byte-identical for the same
            // sources regardless of which directory they sit in.
            let mut core = String::new();
            for i in 0..n {
                let next = if i + 1 < n { format!("w{}(x)", i + 1) } else { "x + 1".to_string() }
;
                core.push_str(&format!("pub fn w{i}(x: u32) -> u32 {{ {next} }}\n"));
            }
            let mut files: Vec<(&str, String)> =
                vec![("crates/text/src/lib.rs", core)];
            if cross {
                files.push((
                    "crates/core/src/extra.rs",
                    "pub fn caller(x: u32) -> u32 { w0(x) }\n".to_string(),
                ));
            }
            let dir_a = synth_workspace(&files);
            let dir_b = synth_workspace(&files);
            let a = workspace_analysis(&dir_a).unwrap();
            let a2 = workspace_analysis(&dir_a).unwrap();
            let b = workspace_analysis(&dir_b).unwrap();
            let ja = a.graph.to_json(&a.workspace);
            let ja2 = a2.graph.to_json(&a2.workspace);
            let jb = b.graph.to_json(&b.workspace);
            std::fs::remove_dir_all(&dir_a).ok();
            std::fs::remove_dir_all(&dir_b).ok();
            prop_assert!(ja.contains("\"text::w0\""), "graph export lost fns: {}", ja);
            prop_assert_eq!(&ja, &ja2, "same directory, different bytes");
            prop_assert_eq!(&ja, &jb, "same sources in a different directory changed the export");
        }

        #[test]
        fn test_only_panics_never_reach_serving(k in 1usize..6) {
            // Panic sources confined to #[cfg(test)] code must not count
            // against the serving-path reachability rule.
            let mut src = String::from(
                "pub struct Flat;\n\
                 impl Flat {\n\
                     pub fn search(&self, q: &[f32]) -> f32 { helper(q) }\n\
                 }\n\
                 fn helper(q: &[f32]) -> f32 { q.iter().sum() }\n\
                 #[cfg(test)]\n\
                 mod tests {\n",
            );
            for i in 0..k {
                src.push_str(&format!(
                    "    #[test]\n    fn t{i}() {{ assert_eq!(Some({i}).unwrap(), {i}); }}\n"
                ));
            }
            src.push_str("}\n");
            let dir = synth_workspace(&[("crates/vecdb/src/lib.rs", src.clone())]);
            let report = workspace_report(&dir).unwrap();
            std::fs::remove_dir_all(&dir).ok();
            prop_assert!(
                !report.violations.iter().any(|v| v.rule == rules::PANIC_REACHABILITY),
                "test-only panic leaked into serving reachability:\n{}\nsource:\n{}",
                render_human(&report),
                src
            );
        }
    }
}
