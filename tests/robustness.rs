//! Failure-injection and edge-case tests: the system must degrade
//! gracefully — never panic — on degenerate corpora, degenerate questions,
//! and unusual configurations.

use sage::prelude::*;
use std::sync::OnceLock;

fn models() -> &'static TrainedModels {
    static M: OnceLock<TrainedModels> = OnceLock::new();
    M.get_or_init(|| TrainedModels::train(TrainBudget::tiny()))
}

fn build(corpus: &[String]) -> RagSystem {
    RagSystem::build(
        models(),
        RetrieverKind::OpenAiSim,
        SageConfig::sage(),
        LlmProfile::gpt4o_mini(),
        corpus,
    )
}

#[test]
fn empty_corpus_answers_unanswerable() {
    let system = build(&[]);
    assert_eq!(system.build_stats().chunk_count, 0);
    let r = system.answer_open("Where does anyone live?");
    assert_eq!(r.answer.text, "unanswerable");
    assert!(r.selected.is_empty());
}

#[test]
fn empty_string_document() {
    let system = build(&[String::new()]);
    let r = system.answer_open("Anything?");
    assert_eq!(r.answer.text, "unanswerable");
}

#[test]
fn single_sentence_corpus() {
    let system = build(&["Whiskers has bright green eyes.".to_string()]);
    let r = system.answer_open("What is the color of Whiskers's eyes?");
    assert!(r.answer.text.contains("green"), "got {:?}", r.answer.text);
}

#[test]
fn empty_question() {
    let system = build(&["Some perfectly ordinary corpus text. It has sentences.".to_string()]);
    let r = system.answer_open("");
    assert_eq!(r.answer.text, "unanswerable");
}

#[test]
fn punctuation_only_question() {
    let system = build(&["Some corpus text lives here.".to_string()]);
    let r = system.answer_open("???!!!...");
    assert_eq!(r.answer.text, "unanswerable");
}

#[test]
fn unicode_text_survives_the_pipeline() {
    let corpus = vec![
        "Ünïcøde Čát is a playful tabby cat. He has bright green eyes. \
         日本語のテキストも入っています。\nThe fog settled over the valley."
            .to_string(),
    ];
    let system = build(&corpus);
    let r = system.answer_open("What is the color of Ünïcøde Čát's eyes?");
    // Must not panic; answering correctly is a bonus (the tokenizer
    // lowercases unicode correctly, so it usually does).
    assert!(!r.answer.text.is_empty());
}

#[test]
fn very_long_single_paragraph_is_bounded_by_coarse_cap() {
    // A paragraph-free wall of text must still be cut into <= l-token
    // chunks by the coarse cap inside the semantic segmenter.
    let mut text = String::new();
    for i in 0..400 {
        text.push_str(&format!("Sentence number {i} rolls on through the long text. "));
    }
    let system = build(&[text]);
    let stats = system.build_stats();
    assert!(stats.chunk_count >= 3, "coarse cap must split: {} chunks", stats.chunk_count);
    for chunk in system.chunks() {
        assert!(
            sage::text::count_tokens(chunk) <= 500,
            "chunk exceeds the coarse budget: {} tokens",
            sage::text::count_tokens(chunk)
        );
    }
}

#[test]
fn duplicate_documents_do_not_break_retrieval() {
    let doc = "Dorinwick was well known in the region. He lives in Ashford.".to_string();
    let system = build(&[doc.clone(), doc.clone(), doc]);
    let r = system.answer_open("Where does Dorinwick live?");
    assert!(r.answer.text.contains("ashford"), "got {:?}", r.answer.text);
}

#[test]
fn multiple_choice_with_one_option() {
    let system = build(&["Whiskers has bright green eyes.".to_string()]);
    let options = vec!["green".to_string()];
    let r = system.answer_multiple_choice("What color are Whiskers's eyes?", &options);
    assert_eq!(r.picked_option, Some(0));
}

#[test]
fn min_k_larger_than_chunk_count() {
    let corpus = vec!["One short paragraph only. It has two sentences.".to_string()];
    let system = RagSystem::build(
        models(),
        RetrieverKind::Bm25,
        SageConfig { min_k: 50, ..SageConfig::sage() },
        LlmProfile::gpt4o_mini(),
        &corpus,
    );
    let r = system.answer_open("What does the paragraph say?");
    assert!(r.selected.len() <= system.chunks().len());
}

#[test]
fn answer_with_chunks_respects_explicit_ids() {
    let corpus = vec![
        "Whiskers is a playful tabby cat. He has bright green eyes.\n\
         Patchy is a ferret. Patchy has bright orange eyes."
            .to_string(),
    ];
    let system = build(&corpus);
    // Force the distractor-only context: the reader must not see "green".
    let patchy_chunk = system
        .chunks()
        .iter()
        .position(|c| c.contains("Patchy"))
        .expect("patchy chunk");
    let r = system.answer_with_chunks(
        "What is the color of Whiskers's eyes?",
        &[patchy_chunk],
        None,
    );
    assert!(
        !r.answer.text.contains("green"),
        "answer must come only from the provided chunk: {:?}",
        r.answer.text
    );
    assert_eq!(r.selected, vec![patchy_chunk]);
}

#[test]
fn candidates_are_consistent_with_answering() {
    let corpus = vec![
        "Dorinwick was well known in the region. He lives in Ashford.\n\
         The fog settled over the valley, as it had for years."
            .to_string(),
    ];
    let system = build(&corpus);
    let (cand_ids, ranked) = system.candidates("Where does Dorinwick live?");
    assert_eq!(cand_ids.len(), ranked.len().max(cand_ids.len()));
    assert!(!ranked.is_empty());
    // Ranked scores descending; positions index into cand_ids.
    for w in ranked.windows(2) {
        assert!(w[0].score >= w[1].score);
    }
    let top_chunk = cand_ids[ranked[0].index];
    assert!(system.chunks()[top_chunk].contains("Dorinwick"));
}

#[test]
fn all_llm_profiles_run_the_full_pipeline() {
    let corpus = vec!["Whiskers is a tabby cat. He has bright green eyes.".to_string()];
    for profile in [
        LlmProfile::gpt4(),
        LlmProfile::gpt4o_mini(),
        LlmProfile::gpt35_turbo(),
        LlmProfile::unifiedqa_3b(),
    ] {
        let system = RagSystem::build(
            models(),
            RetrieverKind::OpenAiSim,
            SageConfig::sage(),
            profile,
            &corpus,
        );
        let r = system.answer_open("What is the color of Whiskers's eyes?");
        assert!(!r.answer.text.is_empty(), "{} returned empty", profile.name);
    }
}

#[test]
fn incremental_add_documents_extends_retrieval() {
    let mut system = build(&["Whiskers is a tabby cat. He has bright green eyes.".to_string()]);
    let before = system.build_stats().chunk_count;
    let miss = system.answer_open("Where does Dorinwick live?");
    assert_eq!(miss.answer.text, "unanswerable");
    system.add_documents(
        models(),
        &["Dorinwick was well known in the region. He lives in Ashford.".to_string()],
    );
    assert!(system.build_stats().chunk_count > before);
    let hit = system.answer_open("Where does Dorinwick live?");
    assert!(hit.answer.text.contains("ashford"), "got {:?}", hit.answer.text);
    // Old content still answerable.
    let old = system.answer_open("What is the color of Whiskers's eyes?");
    assert!(old.answer.text.contains("green"));
}

#[test]
fn answer_batch_matches_serial() {
    let system = build(&[
        "Whiskers is a tabby cat. He has bright green eyes.\n\
         Dorinwick was well known in the region. He lives in Ashford."
            .to_string(),
    ]);
    let questions: Vec<String> = vec![
        "What is the color of Whiskers's eyes?".into(),
        "Where does Dorinwick live?".into(),
        "What is Dorinwick's profession?".into(),
    ];
    let serial: Vec<String> =
        questions.iter().map(|q| system.answer_open(q).answer.text).collect();
    for workers in [1usize, 2, 8] {
        let batch: Vec<String> = system
            .answer_batch(&questions, workers)
            .into_iter()
            .map(|r| r.answer.text)
            .collect();
        assert_eq!(batch, serial, "workers={workers}");
    }
    assert!(system.answer_batch(&[], 4).is_empty());
}
