//! Failure-injection and edge-case tests: the system must degrade
//! gracefully — never panic — on degenerate corpora, degenerate questions,
//! and unusual configurations.

use sage::prelude::*;
use std::sync::OnceLock;

fn models() -> &'static TrainedModels {
    static M: OnceLock<TrainedModels> = OnceLock::new();
    M.get_or_init(|| TrainedModels::train(TrainBudget::tiny()))
}

fn build(corpus: &[String]) -> RagSystem {
    RagSystem::build(
        models(),
        RetrieverKind::OpenAiSim,
        SageConfig::sage(),
        LlmProfile::gpt4o_mini(),
        corpus,
    )
}

#[test]
fn empty_corpus_answers_unanswerable() {
    let system = build(&[]);
    assert_eq!(system.build_stats().chunk_count, 0);
    let r = system.answer_open("Where does anyone live?");
    assert_eq!(r.answer.text, "unanswerable");
    assert!(r.selected.is_empty());
}

#[test]
fn empty_string_document() {
    let system = build(&[String::new()]);
    let r = system.answer_open("Anything?");
    assert_eq!(r.answer.text, "unanswerable");
}

#[test]
fn single_sentence_corpus() {
    let system = build(&["Whiskers has bright green eyes.".to_string()]);
    let r = system.answer_open("What is the color of Whiskers's eyes?");
    assert!(r.answer.text.contains("green"), "got {:?}", r.answer.text);
}

#[test]
fn empty_question() {
    let system = build(&["Some perfectly ordinary corpus text. It has sentences.".to_string()]);
    let r = system.answer_open("");
    assert_eq!(r.answer.text, "unanswerable");
}

#[test]
fn punctuation_only_question() {
    let system = build(&["Some corpus text lives here.".to_string()]);
    let r = system.answer_open("???!!!...");
    assert_eq!(r.answer.text, "unanswerable");
}

#[test]
fn unicode_text_survives_the_pipeline() {
    let corpus = vec![
        "Ünïcøde Čát is a playful tabby cat. He has bright green eyes. \
         日本語のテキストも入っています。\nThe fog settled over the valley."
            .to_string(),
    ];
    let system = build(&corpus);
    let r = system.answer_open("What is the color of Ünïcøde Čát's eyes?");
    // Must not panic; answering correctly is a bonus (the tokenizer
    // lowercases unicode correctly, so it usually does).
    assert!(!r.answer.text.is_empty());
}

#[test]
fn very_long_single_paragraph_is_bounded_by_coarse_cap() {
    // A paragraph-free wall of text must still be cut into <= l-token
    // chunks by the coarse cap inside the semantic segmenter.
    let mut text = String::new();
    for i in 0..400 {
        text.push_str(&format!("Sentence number {i} rolls on through the long text. "));
    }
    let system = build(&[text]);
    let stats = system.build_stats();
    assert!(stats.chunk_count >= 3, "coarse cap must split: {} chunks", stats.chunk_count);
    for chunk in system.chunks() {
        assert!(
            sage::text::count_tokens(chunk) <= 500,
            "chunk exceeds the coarse budget: {} tokens",
            sage::text::count_tokens(chunk)
        );
    }
}

#[test]
fn duplicate_documents_do_not_break_retrieval() {
    let doc = "Dorinwick was well known in the region. He lives in Ashford.".to_string();
    let system = build(&[doc.clone(), doc.clone(), doc]);
    let r = system.answer_open("Where does Dorinwick live?");
    assert!(r.answer.text.contains("ashford"), "got {:?}", r.answer.text);
}

#[test]
fn multiple_choice_with_one_option() {
    let system = build(&["Whiskers has bright green eyes.".to_string()]);
    let options = vec!["green".to_string()];
    let r = system.answer_multiple_choice("What color are Whiskers's eyes?", &options);
    assert_eq!(r.picked_option, Some(0));
}

#[test]
fn min_k_larger_than_chunk_count() {
    let corpus = vec!["One short paragraph only. It has two sentences.".to_string()];
    let system = RagSystem::build(
        models(),
        RetrieverKind::Bm25,
        SageConfig { min_k: 50, ..SageConfig::sage() },
        LlmProfile::gpt4o_mini(),
        &corpus,
    );
    let r = system.answer_open("What does the paragraph say?");
    assert!(r.selected.len() <= system.chunks().len());
}

#[test]
fn answer_with_chunks_respects_explicit_ids() {
    let corpus = vec![
        "Whiskers is a playful tabby cat. He has bright green eyes.\n\
         Patchy is a ferret. Patchy has bright orange eyes."
            .to_string(),
    ];
    let system = build(&corpus);
    // Force the distractor-only context: the reader must not see "green".
    let patchy_chunk = system
        .chunks()
        .iter()
        .position(|c| c.contains("Patchy"))
        .expect("patchy chunk");
    let r = system.answer_with_chunks(
        "What is the color of Whiskers's eyes?",
        &[patchy_chunk],
        None,
    );
    assert!(
        !r.answer.text.contains("green"),
        "answer must come only from the provided chunk: {:?}",
        r.answer.text
    );
    assert_eq!(r.selected, vec![patchy_chunk]);
}

#[test]
fn candidates_are_consistent_with_answering() {
    let corpus = vec![
        "Dorinwick was well known in the region. He lives in Ashford.\n\
         The fog settled over the valley, as it had for years."
            .to_string(),
    ];
    let system = build(&corpus);
    let (cand_ids, ranked) = system.candidates("Where does Dorinwick live?");
    assert_eq!(cand_ids.len(), ranked.len().max(cand_ids.len()));
    assert!(!ranked.is_empty());
    // Ranked scores descending; positions index into cand_ids.
    for w in ranked.windows(2) {
        assert!(w[0].score >= w[1].score);
    }
    let top_chunk = cand_ids[ranked[0].index];
    assert!(system.chunks()[top_chunk].contains("Dorinwick"));
}

#[test]
fn all_llm_profiles_run_the_full_pipeline() {
    let corpus = vec!["Whiskers is a tabby cat. He has bright green eyes.".to_string()];
    for profile in [
        LlmProfile::gpt4(),
        LlmProfile::gpt4o_mini(),
        LlmProfile::gpt35_turbo(),
        LlmProfile::unifiedqa_3b(),
    ] {
        let system = RagSystem::build(
            models(),
            RetrieverKind::OpenAiSim,
            SageConfig::sage(),
            profile,
            &corpus,
        );
        let r = system.answer_open("What is the color of Whiskers's eyes?");
        assert!(!r.answer.text.is_empty(), "{} returned empty", profile.name);
    }
}

#[test]
fn incremental_add_documents_extends_retrieval() {
    let mut system = build(&["Whiskers is a tabby cat. He has bright green eyes.".to_string()]);
    let before = system.build_stats().chunk_count;
    let miss = system.answer_open("Where does Dorinwick live?");
    assert_eq!(miss.answer.text, "unanswerable");
    system.add_documents(
        models(),
        &["Dorinwick was well known in the region. He lives in Ashford.".to_string()],
    );
    assert!(system.build_stats().chunk_count > before);
    let hit = system.answer_open("Where does Dorinwick live?");
    assert!(hit.answer.text.contains("ashford"), "got {:?}", hit.answer.text);
    // Old content still answerable.
    let old = system.answer_open("What is the color of Whiskers's eyes?");
    assert!(old.answer.text.contains("green"));
}

// ---------------------------------------------------------------------------
// Fault matrix: each single-component fault plan must produce an answer via
// its documented fallback, visible in `QueryResult::degraded`.
// ---------------------------------------------------------------------------

fn fault_corpus() -> Vec<String> {
    vec![
        "Whiskers is a playful tabby cat. He has bright green eyes. His fur is mostly gray.\n\
         The morning fog settled over the valley, as it had for many years.\n\
         Patchy is a ferret with a stubborn streak. Patchy has bright orange eyes.\n\
         Dorinwick was well known in the region. He lives in Ashford. He works as a baker."
            .to_string(),
    ]
}

fn resilient(plan: FaultPlan, use_hnsw: bool) -> RagSystem {
    let mut system = RagSystem::build(
        models(),
        RetrieverKind::OpenAiSim,
        SageConfig::sage(),
        LlmProfile::gpt4o_mini(),
        &fault_corpus(),
    );
    system.enable_resilience(ResilienceConfig { plan, use_hnsw, ..ResilienceConfig::default() });
    system
}

const EYES_Q: &str = "What is the color of Whiskers's eyes?";

#[test]
fn embedder_fault_degrades_to_bm25() {
    let system = resilient(FaultPlan::failing(Component::Embedder, FaultKind::Transient), false);
    let r = system.answer_open(EYES_Q);
    assert!(r.degraded.fired(Fallback::DenseToBm25), "trace: {:?}", r.degraded);
    assert!(r.answer.text.contains("green"), "BM25 fallback answered: {:?}", r.answer.text);
}

#[test]
fn flat_search_fault_degrades_to_bm25_with_virtual_delay() {
    let system = resilient(FaultPlan::failing(Component::IndexSearch, FaultKind::Timeout), false);
    let r = system.answer_open(EYES_Q);
    assert!(r.degraded.fired(Fallback::DenseToBm25), "trace: {:?}", r.degraded);
    assert!(
        r.degraded.total_delay() > std::time::Duration::ZERO,
        "timeouts charge virtual time"
    );
    assert!(r.answer.text.contains("green"), "got {:?}", r.answer.text);
}

#[test]
fn hnsw_fault_degrades_to_flat_and_batch_completes() {
    // Acceptance: a plan injecting 100% vector-index faults with the ANN
    // tier enabled must complete a whole batch via the exact flat scan —
    // zero panics, every answer intact.
    let system = resilient(FaultPlan::failing(Component::IndexSearch, FaultKind::Transient), true);
    let questions: Vec<String> = vec![
        EYES_Q.into(),
        "Where does Dorinwick live?".into(),
        "What is Dorinwick's profession?".into(),
    ];
    let results = system.answer_batch(&questions, 2);
    assert_eq!(results.len(), questions.len());
    for r in &results {
        assert!(r.degraded.fired(Fallback::HnswToFlat), "trace: {:?}", r.degraded);
        assert!(!r.degraded.fired(Fallback::DenseToBm25), "flat tier must absorb the failure");
    }
    assert!(results[0].answer.text.contains("green"), "got {:?}", results[0].answer.text);
    assert!(results[1].answer.text.contains("ashford"), "got {:?}", results[1].answer.text);
    let counters = system.fallback_counters().expect("resilience on");
    assert!(counters.contains(&("hnsw->flat", questions.len() as u64)), "{counters:?}");
}

// ---------------------------------------------------------------------------
// Shard-loss drills: a sharded system losing m of N fault domains must keep
// serving from the survivors (with the documented `shard-partial:m/N` rung
// in both the per-query trace and the substrate counters) for every m the
// quorum tolerates, and walk the BM25/flat fallback chain below quorum.
// ---------------------------------------------------------------------------

/// A fault plan that deterministically kills shards `0..m` (both the probe
/// and the hedge time out on every attempt).
fn kill_shards(m: u32) -> FaultPlan {
    let mut plan = FaultPlan::seeded(9);
    for s in 0..m {
        plan = plan.with_shard(s, Rates { timeout: 1.0, ..Rates::default() });
    }
    plan
}

#[test]
fn shard_loss_drill_serves_survivors_at_every_tolerable_m() {
    use sage::telemetry::metrics::{SHARD_LOST, SHARD_PARTIAL_SERVES};
    // N=4 with an explicit quorum of 2: losing 1 or 2 shards must serve
    // partial results; the rung documents exactly how many died.
    for m in 1..=2u32 {
        let mut system = resilient(kill_shards(m), false);
        system.enable_telemetry();
        system.enable_sharding(4, Some(2));
        let partial0 = SHARD_PARTIAL_SERVES.get();
        let lost0 = SHARD_LOST.get();
        let r = system.answer_open(EYES_Q);
        let rung = format!("shard-partial:{m}/4");
        assert!(
            r.degraded.events.iter().any(|e| e.fallback.to_string() == rung),
            "m={m}: expected {rung} in trace {:?}",
            r.degraded
        );
        assert!(!r.answer.text.is_empty(), "m={m}: survivors must still serve an answer");
        assert!(
            SHARD_PARTIAL_SERVES.get() > partial0,
            "m={m}: partial serve must hit the substrate counter"
        );
        assert!(
            SHARD_LOST.get() >= lost0 + u64::from(m),
            "m={m}: every dead shard must be counted lost"
        );
    }
}

#[test]
fn shard_loss_below_quorum_walks_the_fallback_chain() {
    use sage::telemetry::metrics::SHARD_QUORUM_FAILURES;
    // 3 of 4 shards dead with quorum 2: one survivor is not enough, so the
    // dense primary leaves the shard path for BM25 — which still answers.
    let mut system = resilient(kill_shards(3), false);
    system.enable_telemetry();
    system.enable_sharding(4, Some(2));
    let q0 = SHARD_QUORUM_FAILURES.get();
    let r = system.answer_open(EYES_Q);
    assert!(r.degraded.fired(Fallback::DenseToBm25), "trace: {:?}", r.degraded);
    assert!(r.answer.text.contains("green"), "BM25 fallback answered: {:?}", r.answer.text);
    assert!(SHARD_QUORUM_FAILURES.get() > q0, "quorum failure must hit the substrate counter");
}

#[test]
fn reranker_fault_degrades_to_retrieval_order() {
    let system = resilient(FaultPlan::failing(Component::Reranker, FaultKind::Corrupt), false);
    let r = system.answer_open(EYES_Q);
    assert!(r.degraded.fired(Fallback::RerankToRetrievalOrder), "trace: {:?}", r.degraded);
    assert!(r.answer.text.contains("green"), "retrieval order sufficed: {:?}", r.answer.text);
}

#[test]
fn reader_fault_exhausts_to_unanswerable() {
    let system = resilient(FaultPlan::failing(Component::Reader, FaultKind::Transient), false);
    let r = system.answer_open(EYES_Q);
    assert!(r.degraded.fired(Fallback::ReaderSecondBest), "trace: {:?}", r.degraded);
    assert!(r.degraded.fired(Fallback::ReaderUnanswerable), "trace: {:?}", r.degraded);
    assert_eq!(r.answer.text, "unanswerable");
    assert!(r.selected.is_empty());
}

#[test]
fn partial_reader_faults_recover_via_retry() {
    // At 40% transient rate most questions recover within the retry
    // budget; whatever happens, no panic and a well-formed answer.
    let plan = FaultPlan::seeded(11)
        .with(Component::Reader, Rates { transient: 0.4, ..Rates::default() });
    let system = resilient(plan, false);
    for q in [EYES_Q, "Where does Dorinwick live?", "What animal is Patchy?"] {
        let r = system.answer_open(q);
        assert!(!r.answer.text.is_empty(), "{q}");
    }
}

#[test]
fn injected_reader_panic_is_isolated_per_question() {
    // Acceptance: one question's reader panicking must not poison the
    // batch — the others answer normally, the poisoned one surfaces a
    // structured error.
    let plan = FaultPlan::seeded(5)
        .with(Component::Reader, Rates { panic: 0.5, ..Rates::default() });
    let questions: Vec<String> = vec![
        EYES_Q.into(),
        "Where does Dorinwick live?".into(),
        "What animal is Patchy?".into(),
        "What is Dorinwick's profession?".into(),
        "What color is Patchy's fur?".into(),
    ];
    let system = resilient(plan, false);
    let results = system.try_answer_batch(&questions, 3);
    assert_eq!(results.len(), questions.len());
    let oks = results.iter().filter(|r| r.is_ok()).count();
    let errs = results.iter().filter(|r| r.is_err()).count();
    assert!(oks > 0, "some questions must survive (adjust seed)");
    assert!(errs > 0, "some questions must panic (adjust seed)");
    for r in &results {
        if let Err(e) = r {
            assert!(
                matches!(e, SageError::Panicked { .. }),
                "panics must surface as structured errors: {e}"
            );
        }
    }
    // Surviving answers match a fault-free system (panic-only plans leave
    // non-panicking calls untouched).
    let clean = build(&fault_corpus());
    for (q, r) in questions.iter().zip(&results) {
        if let Ok(r) = r {
            assert_eq!(r.answer.text, clean.answer_open(q).answer.text, "{q}");
        }
    }
    let counters = system.fallback_counters().expect("resilience on");
    assert!(
        counters.iter().any(|(label, n)| *label == "panic-isolated" && *n >= errs as u64),
        "{counters:?}"
    );
}

#[test]
fn multi_component_storm_still_serves() {
    // Everything failing at once (short of panics): the chain bottoms out
    // at BM25 + retrieval order + unanswerable, and never panics.
    let plan = FaultPlan::seeded(3)
        .with(Component::Embedder, Rates { transient: 1.0, ..Rates::default() })
        .with(Component::Reranker, Rates { corrupt: 1.0, ..Rates::default() })
        .with(Component::Reader, Rates { timeout: 1.0, ..Rates::default() });
    let system = resilient(plan, false);
    let r = system.answer_open(EYES_Q);
    assert!(r.degraded.fired(Fallback::DenseToBm25));
    assert!(r.degraded.fired(Fallback::RerankToRetrievalOrder));
    assert!(r.degraded.fired(Fallback::ReaderUnanswerable));
    assert_eq!(r.answer.text, "unanswerable");
}

// ---------------------------------------------------------------------------
// Overload robustness: admission control on the batch path, and the
// deterministic soak harness (with and without injected faults).
// ---------------------------------------------------------------------------

fn soak_questions() -> Vec<String> {
    vec![
        EYES_Q.into(),
        "Where does Dorinwick live?".into(),
        "What animal is Patchy?".into(),
    ]
}

#[test]
fn batch_admission_sheds_deterministically_and_reports() {
    // Capacity below the wave size: every wave admits `capacity` queries
    // and hard-sheds the rest, deterministically.
    let run = || {
        let mut system = RagSystem::build(
            models(),
            RetrieverKind::OpenAiSim,
            SageConfig::sage(),
            LlmProfile::gpt4o_mini(),
            &fault_corpus(),
        );
        system.enable_resilience(ResilienceConfig::default());
        system.enable_admission(AdmissionConfig { capacity: 2, seed: 9, ..Default::default() });
        let questions: Vec<String> = soak_questions()
            .into_iter()
            .cycle()
            .take(8)
            .collect();
        let results = system.try_answer_batch(&questions, 4);
        let outcome: Vec<Result<String, String>> = results
            .iter()
            .map(|r| match r {
                Ok(ok) => Ok(ok.answer.text.clone()),
                Err(e) => Err(e.to_string()),
            })
            .collect();
        let report = system.admission_report().expect("admission on");
        (outcome, report)
    };
    let (outcome_a, report_a) = run();
    let (outcome_b, report_b) = run();
    assert_eq!(outcome_a, outcome_b, "admission decisions must replay identically");
    assert_eq!(report_a, report_b);

    let shed = outcome_a.iter().filter(|r| r.is_err()).count();
    let served = outcome_a.iter().filter(|r| r.is_ok()).count();
    assert!(shed > 0, "capacity 2 with waves of 4 must shed: {outcome_a:?}");
    assert!(served > 0, "admitted queries must still answer");
    for r in &outcome_a {
        if let Err(e) = r {
            assert!(e.contains("shed by admission control"), "unexpected error: {e}");
        }
    }
    let (admitted, by_class) = report_a;
    assert_eq!(admitted as usize, served);
    assert_eq!(
        by_class.iter().map(|(_, n)| *n).sum::<u64>() as usize,
        shed,
        "shed counts must reconcile with results: {by_class:?}"
    );
    assert!(by_class.iter().all(|(label, _)| *label == "batch"), "{by_class:?}");

    // The resilience counters saw the sheds too.
    let mut system = RagSystem::build(
        models(),
        RetrieverKind::OpenAiSim,
        SageConfig::sage(),
        LlmProfile::gpt4o_mini(),
        &fault_corpus(),
    );
    system.enable_resilience(ResilienceConfig::default());
    system.enable_admission(AdmissionConfig { capacity: 2, seed: 9, ..Default::default() });
    let questions: Vec<String> = soak_questions().into_iter().cycle().take(8).collect();
    let _ = system.try_answer_batch(&questions, 4);
    let counters = system.fallback_counters().expect("resilience on");
    assert!(
        counters.iter().any(|(label, n)| *label == "shed" && *n as usize == shed),
        "{counters:?}"
    );
}

#[test]
fn batch_without_admission_is_unchanged() {
    // The admission queue is opt-in: the default batch path admits
    // everything and matches serial answers (and zero-pressure batches
    // through an ample queue behave identically).
    let questions = soak_questions();
    let plain = build(&fault_corpus());
    let serial: Vec<String> =
        questions.iter().map(|q| plain.answer_open(q).answer.text).collect();
    let mut gated = build(&fault_corpus());
    gated.enable_admission(AdmissionConfig::default());
    let batch: Vec<String> = gated
        .try_answer_batch(&questions, 2)
        .into_iter()
        .map(|r| r.expect("ample capacity must admit everything").answer.text)
        .collect();
    assert_eq!(batch, serial);
    let (admitted, shed) = gated.admission_report().expect("admission on");
    assert_eq!(admitted as usize, questions.len());
    assert!(shed.is_empty(), "zero-pressure batch shed something: {shed:?}");
}

#[test]
fn soak_under_faults_never_panics_and_replays() {
    let cfg = SoakConfig {
        seed: 23,
        duration: std::time::Duration::from_secs(25),
        qps: 3.0,
        capacity: 6,
        concurrency: 2,
        ..SoakConfig::default()
    };
    let run = || {
        let plan = FaultPlan::seeded(17)
            .with(Component::Reader, Rates { transient: 0.3, ..Rates::default() })
            .with(Component::Reranker, Rates { corrupt: 0.2, ..Rates::default() });
        let mut system = RagSystem::build(
            models(),
            RetrieverKind::OpenAiSim,
            SageConfig::sage(),
            LlmProfile::gpt4o_mini(),
            &fault_corpus(),
        );
        system.enable_resilience(ResilienceConfig { plan, ..ResilienceConfig::default() });
        run_soak(&system, &soak_questions(), &cfg)
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "faulted soak must replay bit-for-bit");
    assert_eq!(a.panics, 0, "log: {:?}", a.log);
    assert!(a.completed > 0);
    let violations = a.check_invariants(&cfg, 0.9);
    assert!(violations.is_empty(), "{violations:?}");
}

#[test]
fn soak_brownout_mass_is_monotone_across_budgets() {
    // The harness-level ladder-monotonicity check: the same arrival
    // process replayed with a tighter per-query deadline must produce at
    // least as much total brownout (mass = sum of ladder-step indices over
    // completed queries), never less.
    let system = build(&fault_corpus());
    let base = SoakConfig {
        seed: 31,
        duration: std::time::Duration::from_secs(25),
        qps: 1.0,
        capacity: 8,
        concurrency: 2,
        ..SoakConfig::default()
    };
    let mass_at = |deadline: std::time::Duration| {
        // Field assignment instead of struct-update syntax: the latter
        // ICEs this toolchain on cross-crate associated-const array
        // lengths captured in a closure.
        let mut cfg = base;
        cfg.budget = Some(QueryBudget::new(deadline, 1_000_000));
        let r = run_soak(&system, &soak_questions(), &cfg);
        assert_eq!(r.panics, 0);
        assert!(r.completed > 0, "log: {:?}", r.log);
        r.brownout.iter().enumerate().map(|(idx, n)| idx as u64 * n).sum::<u64>()
    };
    let tight = mass_at(std::time::Duration::from_secs(4));
    let loose = mass_at(std::time::Duration::from_secs(60));
    assert!(
        tight >= loose,
        "tighter deadlines must brown out at least as much: tight {tight} vs loose {loose}"
    );
    assert!(tight > 0, "a 4s deadline cannot afford the full feedback loop");
    assert_eq!(loose, 0, "a 60s deadline should never brown out at 1 qps");
}

#[test]
fn answer_batch_matches_serial() {
    let system = build(&[
        "Whiskers is a tabby cat. He has bright green eyes.\n\
         Dorinwick was well known in the region. He lives in Ashford."
            .to_string(),
    ]);
    let questions: Vec<String> = vec![
        "What is the color of Whiskers's eyes?".into(),
        "Where does Dorinwick live?".into(),
        "What is Dorinwick's profession?".into(),
    ];
    let serial: Vec<String> =
        questions.iter().map(|q| system.answer_open(q).answer.text).collect();
    for workers in [1usize, 2, 8] {
        let batch: Vec<String> = system
            .answer_batch(&questions, workers)
            .into_iter()
            .map(|r| r.answer.text)
            .collect();
        assert_eq!(batch, serial, "workers={workers}");
    }
    assert!(system.answer_batch(&[], 4).is_empty());
}

// ---------------------------------------------------------------------------
// Live corpus: torn and orphaned files are discarded, never served
// ---------------------------------------------------------------------------

mod live_corpus {
    use sage::core::live::{run_live_soak, CorpusWriter, LiveConfig, LiveError, LiveOp, LiveSoakConfig};
    use sage::resilience::{CrashPlan, CrashPoint};

    fn scratch(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("sage_robust_live_{name}"));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn uncommitted_segment_is_never_served() {
        let dir = scratch("uncommitted");
        let cfg = LiveConfig::default();
        let (mut w, _) = CorpusWriter::open(&dir, cfg).unwrap();
        w.commit(&[LiveOp::Upsert {
            doc_id: "keep".into(),
            text: "The committed document mentions zanzibar once.".into(),
        }])
        .unwrap();
        drop(w);

        // A crash after the segment rename but before the manifest commit:
        // the segment file is durable, but the epoch never committed.
        let plan = CrashPlan::always(CrashPoint::PreManifest);
        let (mut w, _) = CorpusWriter::open_with_crash_plan(&dir, cfg, plan).unwrap();
        let crashed = w.commit(&[LiveOp::Upsert {
            doc_id: "ghost".into(),
            text: "The ghost document mentions quixotic plans.".into(),
        }]);
        assert!(matches!(crashed, Err(LiveError::CrashInjected(CrashPoint::PreManifest))));
        drop(w);

        let (w, rec) = CorpusWriter::open(&dir, cfg).unwrap();
        assert_eq!(rec.epoch, 1);
        assert_eq!(rec.orphans_discarded, 1, "the unmanifested segment must be discarded");
        let snap = w.snapshot();
        assert!(snap.doc_fingerprint("ghost").is_none(), "uncommitted doc must not exist");
        assert!(snap.search("zanzibar", 3).iter().any(|h| h.doc_id == "keep"));
        // Dense search returns the nearest *committed* chunks for any query;
        // the uncommitted document must never be among them.
        assert!(snap.search("quixotic plans", 3).iter().all(|h| h.doc_id != "ghost"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn garbage_strays_are_swept_without_breaking_recovery() {
        let dir = scratch("garbage");
        let cfg = LiveConfig::default();
        let (mut w, _) = CorpusWriter::open(&dir, cfg).unwrap();
        w.commit(&[LiveOp::Upsert {
            doc_id: "doc".into(),
            text: "A perfectly healthy committed document.".into(),
        }])
        .unwrap();
        let digest = w.digest();
        drop(w);
        // Strays a real crash could leave: a torn tmp and unknown segments.
        std::fs::write(dir.join("seg-000002.sageseg.tmp"), b"half a write").unwrap();
        std::fs::write(dir.join("seg-000099.sageseg"), b"\x00\xFF garbage").unwrap();
        std::fs::write(dir.join("MANIFEST.sageman.tmp"), b"torn manifest rewrite").unwrap();
        let (w, rec) = CorpusWriter::open(&dir, cfg).unwrap();
        assert_eq!(rec.epoch, 1);
        assert_eq!(rec.orphans_discarded, 3);
        assert_eq!(w.digest(), digest, "strays must not perturb recovered state");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn soak_under_fault_plan_replays_byte_for_byte_with_zero_violations() {
        let (a, b) = (scratch("soak_a"), scratch("soak_b"));
        let cfg = LiveSoakConfig {
            commits: 10,
            crash: CrashPlan::seeded(3)
                .with(CrashPoint::PreRename, 0.3)
                .with(CrashPoint::PreManifest, 0.2),
            ..LiveSoakConfig::default()
        };
        let ra = run_live_soak(&a, &cfg).expect("soak a");
        let rb = run_live_soak(&b, &cfg).expect("soak b");
        assert_eq!(ra.violations, Vec::<String>::new());
        assert_eq!(ra.log, rb.log, "same seeds must replay byte-for-byte");
        assert_eq!(ra.final_digest, rb.final_digest);
        assert!(ra.crashes_injected > 0 && ra.recoveries == ra.crashes_injected);
        std::fs::remove_dir_all(&a).ok();
        std::fs::remove_dir_all(&b).ok();
    }
}
