//! Cross-crate integration tests: datasets → pipeline → metrics, exercising
//! the public facade exactly as a downstream user would.

use sage::corpus::datasets::{narrativeqa, qasper, quality, SizeConfig};
use sage::prelude::*;
use std::sync::OnceLock;

fn models() -> &'static TrainedModels {
    static M: OnceLock<TrainedModels> = OnceLock::new();
    M.get_or_init(|| TrainedModels::train(TrainBudget::tiny()))
}

fn small() -> SizeConfig {
    SizeConfig { num_docs: 4, questions_per_doc: 3, seed: 0xE2E }
}

#[test]
fn sage_beats_naive_on_quality_accuracy() {
    let ds = quality::generate(small());
    let sage = evaluate(
        Method::Sage(RetrieverKind::OpenAiSim),
        models(),
        LlmProfile::gpt4o_mini(),
        &ds,
    );
    let naive = evaluate(
        Method::NaiveRag(RetrieverKind::OpenAiSim),
        models(),
        LlmProfile::gpt4o_mini(),
        &ds,
    );
    assert!(
        sage.accuracy >= naive.accuracy,
        "SAGE {} vs Naive {}",
        sage.accuracy,
        naive.accuracy
    );
    assert!(sage.accuracy > 0.5, "SAGE accuracy {} too low", sage.accuracy);
}

#[test]
fn sage_beats_naive_on_narrativeqa_rouge() {
    let ds = narrativeqa::generate(small());
    let sage = evaluate(
        Method::Sage(RetrieverKind::OpenAiSim),
        models(),
        LlmProfile::gpt4o_mini(),
        &ds,
    );
    let naive = evaluate(
        Method::NaiveRag(RetrieverKind::OpenAiSim),
        models(),
        LlmProfile::gpt4o_mini(),
        &ds,
    );
    assert!(sage.rouge > naive.rouge, "SAGE {} vs Naive {}", sage.rouge, naive.rouge);
}

#[test]
fn selected_chunks_contain_evidence_for_most_answerable_questions() {
    // Retrieval precision against ground truth: for answerable QASPER
    // questions, SAGE's final context should contain every gold evidence
    // sentence most of the time.
    let ds = qasper::generate(small());
    let mut checked = 0usize;
    let mut covered = 0usize;
    let mut built: Option<(usize, RagSystem)> = None;
    for task in &ds.tasks {
        if task.item.evidence.is_empty() {
            continue;
        }
        if built.as_ref().map(|(d, _)| *d) != Some(task.doc) {
            let corpus = vec![ds.documents[task.doc].text()];
            built = Some((
                task.doc,
                RagSystem::build(
                    models(),
                    RetrieverKind::OpenAiSim,
                    SageConfig::sage(),
                    LlmProfile::gpt4o_mini(),
                    &corpus,
                ),
            ));
        }
        let (_, system) = built.as_ref().unwrap();
        let r = system.answer_open(&task.item.question);
        let context: String =
            r.selected.iter().map(|&i| system.chunks()[i].as_str()).collect::<Vec<_>>().join(" ");
        checked += 1;
        if task.item.evidence.iter().all(|e| context.contains(e)) {
            covered += 1;
        }
    }
    assert!(checked >= 5, "need enough answerable questions, got {checked}");
    let rate = covered as f32 / checked as f32;
    assert!(rate >= 0.6, "evidence coverage {rate} ({covered}/{checked})");
}

#[test]
fn ablation_modules_do_not_hurt() {
    // Table IV's qualitative claim: each module on top of Naive RAG helps
    // (or at least does not hurt) on the open-ended dataset.
    let ds = narrativeqa::generate(SizeConfig { num_docs: 5, questions_per_doc: 4, seed: 77 });
    let profile = LlmProfile::gpt4o_mini();
    let naive = evaluate(Method::NaiveRag(RetrieverKind::OpenAiSim), models(), profile, &ds);
    let sage = evaluate(Method::Sage(RetrieverKind::OpenAiSim), models(), profile, &ds);
    for (label, cfg) in [
        ("segmentation", SageConfig::naive_with_segmentation()),
        ("selection", SageConfig::naive_with_selection()),
        ("feedback", SageConfig::naive_with_feedback()),
    ] {
        let scores = evaluate(
            Method::Custom(RetrieverKind::OpenAiSim, cfg),
            models(),
            profile,
            &ds,
        );
        assert!(
            scores.rouge + 0.05 >= naive.rouge,
            "+{label} ROUGE {} should not fall below naive {}",
            scores.rouge,
            naive.rouge
        );
    }
    assert!(sage.rouge >= naive.rouge, "SAGE {} vs naive {}", sage.rouge, naive.rouge);
}

#[test]
fn evaluation_is_deterministic() {
    let ds = quality::generate(small());
    let a = evaluate(Method::Sage(RetrieverKind::Bm25), models(), LlmProfile::gpt4(), &ds);
    let b = evaluate(Method::Sage(RetrieverKind::Bm25), models(), LlmProfile::gpt4(), &ds);
    assert_eq!(a.accuracy, b.accuracy);
    assert_eq!(a.cost, b.cost);
    assert_eq!(a.rouge, b.rouge);
}

#[test]
fn stronger_llm_scores_higher() {
    // Table XII / §VIII insight 3.
    let ds = quality::generate(SizeConfig { num_docs: 6, questions_per_doc: 4, seed: 0x7D });
    let strong =
        evaluate(Method::Sage(RetrieverKind::OpenAiSim), models(), LlmProfile::gpt4(), &ds);
    let weak = evaluate(
        Method::Sage(RetrieverKind::OpenAiSim),
        models(),
        LlmProfile::unifiedqa_3b(),
        &ds,
    );
    assert!(
        strong.accuracy > weak.accuracy,
        "gpt4 {} vs unifiedqa {}",
        strong.accuracy,
        weak.accuracy
    );
}

#[test]
fn unanswerable_questions_honoured() {
    let ds = qasper::generate(SizeConfig { num_docs: 8, questions_per_doc: 4, seed: 0xAB });
    let unanswerable: Vec<&QaTask> = ds
        .tasks
        .iter()
        .filter(|t| t.item.kind == QuestionKind::Unanswerable)
        .collect();
    assert!(!unanswerable.is_empty());
    let mut abstained = 0usize;
    for task in &unanswerable {
        let corpus = vec![ds.documents[task.doc].text()];
        let system = RagSystem::build(
            models(),
            RetrieverKind::OpenAiSim,
            SageConfig::sage(),
            LlmProfile::gpt4(),
            &corpus,
        );
        let r = system.answer_open(&task.item.question);
        if r.answer.text == "unanswerable" {
            abstained += 1;
        }
    }
    let rate = abstained as f32 / unanswerable.len() as f32;
    assert!(rate >= 0.5, "abstain rate {rate} too low");
}

#[test]
fn feedback_loop_spends_more_tokens_when_struggling() {
    // Questions with no evidence force extra rounds; clean questions pass
    // in one round. The system's cost profile must reflect that.
    let mut paragraphs =
        vec!["Whiskers is a playful tabby cat. He has bright green eyes.".to_string()];
    for i in 0..12 {
        paragraphs.push(format!(
            "The fog settled over the valley on day {i}, as it had for many years."
        ));
    }
    let corpus = vec![paragraphs.join("\n")];
    let system = RagSystem::build(
        models(),
        RetrieverKind::OpenAiSim,
        SageConfig::sage(),
        LlmProfile::gpt4o_mini(),
        &corpus,
    );
    let clean = system.answer_open("What is the color of Whiskers's eyes?");
    let hopeless = system.answer_open("Where was Dorinwick born?");
    // The judge accepts the grounded answer and rejects the hopeless one.
    assert!(clean.feedback_score.unwrap() >= 9, "clean score {:?}", clean.feedback_score);
    assert!(hopeless.feedback_score.unwrap() < 9, "hopeless score {:?}", hopeless.feedback_score);
    // The hopeless question retrieves a wider (all-chunk) context, so it
    // costs at least as much as the clean one.
    assert!(hopeless.selected.len() >= clean.selected.len());
    assert!(hopeless.cost.input_tokens >= clean.cost.input_tokens);
    assert_eq!(hopeless.answer.text, "unanswerable");
}

fn telemetry_corpus() -> Vec<String> {
    vec![
        "Whiskers is a playful tabby cat. He has bright green eyes. His fur is mostly gray.\n\
         The morning fog settled over the valley, as it had for many years.\n\
         Dorinwick was well known in the region. He lives in Ashford. He works as a baker."
            .to_string(),
    ]
}

#[test]
fn telemetry_observes_the_full_serving_path() {
    use std::time::Duration;
    let plain = RagSystem::build(
        models(),
        RetrieverKind::OpenAiSim,
        SageConfig::sage(),
        LlmProfile::gpt4o_mini(),
        &telemetry_corpus(),
    );
    let mut system = RagSystem::build(
        models(),
        RetrieverKind::OpenAiSim,
        SageConfig::sage(),
        LlmProfile::gpt4o_mini(),
        &telemetry_corpus(),
    );
    let hub = system.enable_telemetry();

    // Build stats carry real measured times, surfaced through the hub.
    let stats = system.build_stats();
    assert!(stats.segmentation_time > Duration::ZERO, "segmentation time not measured");
    assert!(stats.index_time > Duration::ZERO, "index time not measured");
    assert_eq!(hub.builds().len(), 1);
    assert!(hub.builds()[0].segmentation_ns > 0);

    let q = "What is the color of Whiskers's eyes?";
    let r = system.answer_open(q);
    // Observation must not change the answer.
    assert_eq!(r.answer.text, plain.answer_open(q).answer.text);

    // The query trace covers every serving stage.
    let jsonl = hub.traces_jsonl();
    for name in ["\"name\":\"retrieve\"", "\"name\":\"rerank\"", "\"name\":\"read\""] {
        assert!(jsonl.contains(name), "missing {name} in trace: {jsonl}");
    }

    // The ledger attributes exactly the tokens the query reported.
    let total = hub.ledger().total();
    assert_eq!(total.input_tokens + total.output_tokens, r.cost.total_tokens());
    assert_eq!(total.input_tokens, r.cost.input_tokens);

    // Histograms saw the stages and the query.
    assert!(hub.stage_snapshot(Stage::Retrieve).count() >= 1);
    assert!(hub.stage_snapshot(Stage::Read).count() >= 1);
    assert_eq!(hub.query_count(), 1);
    assert!(hub.query_snapshot().quantile(0.99) > 0);

    // Exporters reflect the same run.
    let summary = sage::telemetry::export::summary(&hub, None);
    assert!(summary.contains("segmentation"), "summary: {summary}");
    let prom = sage::telemetry::export::prometheus(&hub, None);
    assert!(prom.contains("# TYPE"), "prometheus dump lacks TYPE lines");
    assert!(prom.contains("sage_queries_total 1"), "prometheus: {prom}");
}

#[test]
fn brownout_reconciles_trace_counters_and_ledger() {
    use std::time::Duration;
    let mut system = RagSystem::build(
        models(),
        RetrieverKind::OpenAiSim,
        SageConfig::sage(),
        LlmProfile::gpt4o_mini(),
        &telemetry_corpus(),
    );
    let hub = system.enable_telemetry();

    // A deadline that affords the read but not the feedback loop: the
    // planner must drop feedback (and nothing deeper).
    let before = sage::telemetry::metrics::BROWNOUT_TOTAL.total();
    let budget = QueryBudget::new(Duration::from_millis(2_500), 1_000_000);
    let r = system.answer_open_budgeted("What is the color of Whiskers's eyes?", budget);
    assert!(r.brownout > BrownoutLevel::None, "tight deadline must brown out");
    assert_eq!(r.feedback_rounds, 0, "dropped feedback still ran rounds");

    // Every rung down to the final level appears as a degrade event, in
    // ladder order, each tagged with its budget-exhaustion error.
    let steps: Vec<u8> =
        r.degraded.events.iter().filter_map(|e| e.fallback.brownout_step()).collect();
    assert_eq!(
        steps,
        (1..=r.brownout.idx() as u8).collect::<Vec<u8>>(),
        "trace must record each ladder rung exactly once: {:?}",
        r.degraded.events
    );

    // The labelled Prometheus counter moved by exactly the steps taken,
    // and the exporter renders one sample per label.
    let delta = sage::telemetry::metrics::BROWNOUT_TOTAL.total() - before;
    assert_eq!(delta as usize, steps.len(), "sage_brownout_total out of sync with trace");
    let prom = sage::telemetry::export::prometheus(&hub, None);
    assert!(
        prom.contains("sage_brownout_total{stage=\"drop-feedback\"}"),
        "prometheus: {prom}"
    );

    // The same events are folded into the query trace JSONL with their
    // brownout fallback labels.
    let jsonl = hub.traces_jsonl();
    assert!(jsonl.contains("brownout:drop-feedback"), "trace: {jsonl}");

    // Cost-ledger reconciliation: the hub's ledger attributes exactly the
    // tokens the budgeted query reported.
    let total = hub.ledger().total();
    assert_eq!(total.input_tokens, r.cost.input_tokens);
    assert_eq!(total.input_tokens + total.output_tokens, r.cost.total_tokens());
}

// --- Golden equivalence: the executor must reproduce the seed inline
// path byte-for-byte. The reference below is a hand-inlined copy of the
// pre-refactor query loop (retrieve → rerank → gradient-select → read →
// self-feedback) composed from the public stage-level APIs; every
// deterministic `QueryResult` field must match exactly, including token
// costs, confidence bits, and the virtual latencies. Wall-clock fields
// (`retrieval_latency`) are excluded — they are measurements, not
// behaviour.

/// Snapshot of the deterministic fields of a query outcome.
#[derive(Debug, PartialEq)]
struct Golden {
    text: String,
    confidence_bits: u32,
    picked: Option<usize>,
    selected: Vec<usize>,
    cost: Cost,
    final_call_cost: Cost,
    feedback_rounds: usize,
    feedback_score: Option<u8>,
    answer_latency: std::time::Duration,
    feedback_latency: std::time::Duration,
    degrade_labels: Vec<&'static str>,
    brownout: BrownoutLevel,
}

impl Golden {
    fn of(r: &QueryResult) -> Self {
        Golden {
            text: r.answer.text.clone(),
            confidence_bits: r.answer.confidence.to_bits(),
            picked: r.picked_option,
            selected: r.selected.clone(),
            cost: r.cost,
            final_call_cost: r.answer.cost,
            feedback_rounds: r.feedback_rounds,
            feedback_score: r.feedback_score,
            answer_latency: r.answer_latency,
            feedback_latency: r.feedback_latency,
            degrade_labels: r.degraded.events.iter().map(|e| e.fallback.label()).collect(),
            brownout: r.brownout,
        }
    }
}

/// The seed pipeline's query loop, hand-inlined over public stage APIs —
/// the pre-refactor snapshot the executor is held to.
fn seed_inline_path(sys: &RagSystem, question: &str, options: Option<&[String]>) -> Golden {
    use sage::rerank::{gradient_select, SelectionConfig};
    use std::time::Duration;
    let cfg = *sys.config();
    let (cand_ids, ranked) = sys.candidates(question);
    let mut min_k = cfg.min_k;
    let mut total_cost = Cost::zero();
    let mut answer_latency = Duration::ZERO;
    let mut feedback_latency = Duration::ZERO;
    let rounds = if cfg.use_feedback { cfg.max_feedback_rounds } else { 1 };
    let mut best: Option<(u8, Answer, Option<usize>, Vec<usize>)> = None;
    let mut executed = 0usize;
    let mut last: Option<Vec<usize>> = None;
    for round in 0..rounds {
        let positions: Vec<usize> = if cfg.use_selection {
            let sel = SelectionConfig {
                min_k,
                gradient: cfg.gradient,
                max_k: cfg.candidates,
                ..SelectionConfig::default()
            };
            gradient_select(&ranked, sel).iter().map(|r| r.index).collect()
        } else {
            ranked.iter().take(min_k.max(1)).map(|r| r.index).collect()
        };
        if last.as_deref() == Some(&positions) {
            break;
        }
        last = Some(positions.clone());
        let selected: Vec<usize> = positions.iter().map(|&p| cand_ids[p]).collect();
        let context: Vec<String> = selected.iter().map(|&id| sys.chunks()[id].clone()).collect();
        let (picked, answer) = match options {
            Some(opts) => {
                let (i, a) = sys.llm().answer_multiple_choice(question, opts, &context);
                (Some(i), a)
            }
            None => (None, sys.llm().answer_open(question, &context)),
        };
        total_cost.merge(answer.cost);
        answer_latency += answer.latency;
        if !cfg.use_feedback {
            return Golden {
                text: answer.text.clone(),
                confidence_bits: answer.confidence.to_bits(),
                picked,
                selected,
                cost: total_cost,
                final_call_cost: answer.cost,
                feedback_rounds: executed,
                feedback_score: None,
                answer_latency,
                feedback_latency,
                degrade_labels: Vec::new(),
                brownout: BrownoutLevel::None,
            };
        }
        let fb = sys.llm().self_feedback(question, &context, &answer);
        executed += 1;
        total_cost.merge(fb.cost);
        feedback_latency += fb.latency;
        if best.as_ref().is_none_or(|(s, ..)| fb.score > *s) {
            best = Some((fb.score, answer, picked, selected));
        }
        if fb.score >= cfg.feedback_threshold || round + 1 == rounds {
            break;
        }
        let next = min_k as i64 + i64::from(fb.adjustment);
        min_k = next.clamp(1, cfg.candidates as i64) as usize;
    }
    let (score, answer, picked, selected) = match best {
        Some((s, a, p, sel)) => (Some(s), a, p, sel),
        None => (
            None,
            Answer {
                text: "unanswerable".to_string(),
                confidence: 0.0,
                cost: Cost::zero(),
                latency: Duration::ZERO,
            },
            None,
            Vec::new(),
        ),
    };
    Golden {
        text: answer.text.clone(),
        confidence_bits: answer.confidence.to_bits(),
        picked,
        selected,
        cost: total_cost,
        final_call_cost: answer.cost,
        feedback_rounds: executed,
        feedback_score: score,
        answer_latency,
        feedback_latency,
        degrade_labels: Vec::new(),
        brownout: BrownoutLevel::None,
    }
}

fn golden_corpus() -> Vec<String> {
    vec![
        "Whiskers is a playful tabby cat. He has bright green eyes. His fur is mostly gray.\n\
         The morning fog settled over the valley, as it had for many years.\n\
         Patchy is a ferret with a stubborn streak. Patchy has bright orange eyes.\n\
         Dorinwick was well known in the region. He lives in Ashford. He works as a baker."
            .to_string(),
    ]
}

const GOLDEN_QUESTIONS: [&str; 3] = [
    "What is the color of Whiskers's eyes?",
    "Where does Dorinwick live?",
    "Where was Dorinwick born?",
];

#[test]
fn golden_equivalence_executor_matches_seed_inline_path() {
    for (kind, cfg) in [
        (RetrieverKind::OpenAiSim, SageConfig::sage()),
        (RetrieverKind::Bm25, SageConfig::sage()),
        (RetrieverKind::OpenAiSim, SageConfig::naive_rag()),
    ] {
        let sys =
            RagSystem::build(models(), kind, cfg, LlmProfile::gpt4o_mini(), &golden_corpus());
        for q in GOLDEN_QUESTIONS {
            let golden = seed_inline_path(&sys, q, None);
            assert_eq!(Golden::of(&sys.answer_open(q)), golden, "{kind:?} open: {q}");
        }
        let options: Vec<String> =
            ["orange", "green", "violet", "gray"].iter().map(|s| s.to_string()).collect();
        let q = "What is the color of Whiskers's eyes?";
        let golden = seed_inline_path(&sys, q, Some(&options));
        assert_eq!(
            Golden::of(&sys.answer_multiple_choice(q, &options)),
            golden,
            "{kind:?} multiple-choice"
        );
    }
}

#[test]
fn golden_equivalence_under_fault_plan() {
    // A poisoned reranker must fall back to retrieval order, every run,
    // byte-for-byte — on the same system and on an identically-built twin.
    let build = || {
        let mut sys = RagSystem::build(
            models(),
            RetrieverKind::OpenAiSim,
            SageConfig::sage(),
            LlmProfile::gpt4o_mini(),
            &golden_corpus(),
        );
        let plan = FaultPlan::seeded(0x601D)
            .with(Component::Reranker, Rates { corrupt: 1.0, ..Rates::default() });
        sys.enable_resilience(ResilienceConfig::with_plan(plan));
        sys
    };
    let sys = build();
    let twin = build();
    for q in GOLDEN_QUESTIONS {
        let a = Golden::of(&sys.answer_open(q));
        let b = Golden::of(&sys.answer_open(q));
        let c = Golden::of(&twin.answer_open(q));
        assert_eq!(a, b, "same-system replay: {q}");
        assert_eq!(a, c, "twin-system replay: {q}");
        // Every feedback round re-selects over the degraded ranking; the
        // rerank fallback fires exactly once per query (the guard's
        // verdict is cached for the retrieval prefix).
        assert_eq!(a.degrade_labels, vec!["rerank->retrieval-order"], "{q}");
        assert_eq!(a.brownout, BrownoutLevel::None, "{q}");
    }

    // A fully-failed reader exhausts both contexts and degrades to the
    // well-formed unanswerable verdict with the documented event chain.
    let mut dead_reader = build();
    let plan = FaultPlan::seeded(0x601E)
        .with(Component::Reader, Rates { corrupt: 1.0, ..Rates::default() });
    dead_reader.enable_resilience(ResilienceConfig::with_plan(plan));
    let r = dead_reader.answer_open(GOLDEN_QUESTIONS[0]);
    let g = Golden::of(&r);
    assert_eq!(g.text, "unanswerable");
    assert_eq!(g.feedback_rounds, 0);
    assert!(g.selected.is_empty());
    assert_eq!(g.degrade_labels, vec!["reader->second-best", "reader->unanswerable"]);
    // The unanswerable verdict's latency is the virtual backoff spent
    // discovering it, not a zero placeholder.
    assert_eq!(r.answer.latency, r.degraded.total_delay());
}

#[test]
fn golden_equivalence_under_tight_budget() {
    use std::time::Duration;
    let sys = RagSystem::build(
        models(),
        RetrieverKind::OpenAiSim,
        SageConfig::sage(),
        LlmProfile::gpt4o_mini(),
        &golden_corpus(),
    );
    // A deadline that affords the read but not the feedback loop lands on
    // exactly DropFeedback, and the degraded query must equal — token for
    // token — the same system configured with feedback off.
    let no_feedback = RagSystem::build(
        models(),
        RetrieverKind::OpenAiSim,
        SageConfig { use_feedback: false, ..SageConfig::sage() },
        LlmProfile::gpt4o_mini(),
        &golden_corpus(),
    );
    for q in GOLDEN_QUESTIONS {
        let budget = QueryBudget::new(Duration::from_millis(2_500), 1_000_000);
        let r = sys.answer_open_budgeted(q, budget);
        assert_eq!(r.brownout, BrownoutLevel::DropFeedback, "{q}");
        let steps: Vec<u8> =
            r.degraded.events.iter().filter_map(|e| e.fallback.brownout_step()).collect();
        assert_eq!(steps, vec![1], "{q}");
        let plain = no_feedback.answer_open(q);
        assert_eq!(r.answer.text, plain.answer.text, "{q}");
        assert_eq!(r.answer.confidence.to_bits(), plain.answer.confidence.to_bits(), "{q}");
        assert_eq!(r.cost, plain.cost, "{q}");
        assert_eq!(r.selected, plain.selected, "{q}");
        assert_eq!(r.feedback_rounds, 0, "{q}");
        assert_eq!(r.feedback_score, None, "{q}");
    }

    // A starvation deadline walks the full ladder to FlatTopK: selection
    // collapses to the flat min_k prefix of the first-stage order, and the
    // answer equals a direct read over exactly those chunks.
    let q = GOLDEN_QUESTIONS[0];
    let r = sys.answer_open_budgeted(q, QueryBudget::new(Duration::from_millis(1), 1_000_000));
    assert_eq!(r.brownout, BrownoutLevel::FlatTopK);
    let steps: Vec<u8> =
        r.degraded.events.iter().filter_map(|e| e.fallback.brownout_step()).collect();
    assert_eq!(steps, vec![1, 2, 3, 4]);
    let (cand_ids, _) = sys.candidates(q);
    let flat: Vec<usize> = cand_ids[..sys.config().min_k.min(cand_ids.len())].to_vec();
    assert_eq!(r.selected, flat);
    let direct = sys.answer_with_chunks(q, &flat, None);
    assert_eq!(r.answer.text, direct.answer.text);
    assert_eq!(r.answer.cost, direct.answer.cost);
    assert_eq!(r.cost, direct.cost);
}

#[test]
fn degrade_events_are_folded_into_query_traces() {
    let mut system = RagSystem::build(
        models(),
        RetrieverKind::OpenAiSim,
        SageConfig::sage(),
        LlmProfile::gpt4o_mini(),
        &telemetry_corpus(),
    );
    let plan = FaultPlan::seeded(0xDE6)
        .with(Component::Reranker, Rates { corrupt: 1.0, ..Rates::default() });
    system.enable_resilience(ResilienceConfig::with_plan(plan));
    let hub = system.enable_telemetry();

    let r = system.answer_open("What is the color of Whiskers's eyes?");
    assert!(!r.degraded.events.is_empty(), "always-corrupt reranker must degrade");

    // The degradation shows up inline in the same query trace, labelled
    // with the failing component and the fallback that served instead.
    let jsonl = hub.traces_jsonl();
    assert!(jsonl.contains("\"name\":\"degrade\""), "trace: {jsonl}");
    let e = &r.degraded.events[0];
    assert!(jsonl.contains(e.component.label()), "component label missing: {jsonl}");
    assert!(jsonl.contains(e.fallback.label()), "fallback label missing: {jsonl}");
    assert!(hub.degrade_count() >= r.degraded.events.len() as u64);
}

// ---------------------------------------------------------------------------
// Live corpus: telemetry counters reconcile with commit reports
// ---------------------------------------------------------------------------

#[test]
fn live_corpus_metrics_reconcile_with_commit_reports() {
    use sage::core::live::{CorpusWriter, LiveConfig, LiveError, LiveOp};
    use sage::resilience::{CrashPlan, CrashPoint};
    use sage::telemetry::metrics;

    sage::telemetry::set_enabled(true);
    let before = (
        metrics::LIVE_COMMITS.get(),
        metrics::LIVE_DOCS_UPSERTED.get(),
        metrics::LIVE_DOCS_DELETED.get(),
        metrics::LIVE_CHUNKS_INDEXED.get(),
        metrics::LIVE_TOMBSTONES.get(),
        metrics::LIVE_COMPACTIONS.get(),
        metrics::LIVE_CRASHES_INJECTED.get(),
        metrics::LIVE_RECOVERIES.get(),
    );

    let dir = std::env::temp_dir().join("sage_e2e_live_metrics");
    std::fs::remove_dir_all(&dir).ok();
    let cfg = LiveConfig { compact_dead_fraction: 0.2, compact_min_dead: 1, ..LiveConfig::default() };
    let plan = CrashPlan::always(CrashPoint::PreRename);

    let (mut w, _) = CorpusWriter::open(&dir, cfg).unwrap();
    let reports = [
        w.commit(&[
            LiveOp::Upsert { doc_id: "a".into(), text: "First doc one sentence.".into() },
            LiveOp::Upsert { doc_id: "b".into(), text: "Second doc another sentence.".into() },
        ])
        .unwrap(),
        w.commit(&[
            LiveOp::Upsert { doc_id: "a".into(), text: "First doc, now revised text.".into() },
            LiveOp::Delete { doc_id: "b".into() },
        ])
        .unwrap(),
    ];
    drop(w);

    // One injected crash and its recovery drill.
    let (mut w, _) = CorpusWriter::open_with_crash_plan(&dir, cfg, plan).unwrap();
    let crashed = w.commit(&[LiveOp::Delete { doc_id: "a".into() }]);
    assert!(matches!(crashed, Err(LiveError::CrashInjected(_))));
    drop(w);
    let (w, _) = CorpusWriter::open(&dir, cfg).unwrap();
    assert_eq!(w.epoch(), 2);
    drop(w);
    std::fs::remove_dir_all(&dir).ok();

    // Counters are process-global and monotonic, so reconcile with >=:
    // deltas must cover at least everything the reports account for.
    let committed: u64 = reports.len() as u64;
    let upserted: u64 = reports.iter().map(|r| r.docs_upserted as u64).sum();
    let deleted: u64 = reports.iter().map(|r| r.docs_deleted as u64).sum();
    let chunks: u64 = reports.iter().map(|r| r.chunks_indexed as u64).sum();
    let tombstones: u64 = reports.iter().map(|r| r.tombstones as u64).sum();
    let compactions: u64 = reports.iter().filter(|r| r.compacted).count() as u64;
    assert!(upserted >= 3 && deleted >= 1 && tombstones >= 1, "workload sanity");

    assert!(metrics::LIVE_COMMITS.get() - before.0 >= committed);
    assert!(metrics::LIVE_DOCS_UPSERTED.get() - before.1 >= upserted);
    assert!(metrics::LIVE_DOCS_DELETED.get() - before.2 >= deleted);
    assert!(metrics::LIVE_CHUNKS_INDEXED.get() - before.3 >= chunks);
    assert!(metrics::LIVE_TOMBSTONES.get() - before.4 >= tombstones);
    assert!(metrics::LIVE_COMPACTIONS.get() - before.5 >= compactions);
    assert!(metrics::LIVE_CRASHES_INJECTED.get() - before.6 >= 1);
    // Every open is a recovery: initial, crash-plan reopen, final reopen.
    assert!(metrics::LIVE_RECOVERIES.get() - before.7 >= 3);
}

// ---------------------------------------------------------------------------
// Observability: scenario replay, baseline diffing, and SLO reconciliation
// ---------------------------------------------------------------------------

/// A scenario cell small enough for the test suite: one document, a few
/// seconds of virtual time.
fn tiny_cell() -> sage::obs::ScenarioCell {
    sage::obs::ScenarioCell {
        name: "e2e-tiny".to_string(),
        docs: 1,
        duration_s: 6,
        qps: 2,
        ..sage::obs::ScenarioCell::default()
    }
}

#[test]
fn scenario_cells_replay_byte_for_byte_through_the_facade() {
    let a = run_cell(models(), &tiny_cell()).expect("cell runs");
    let b = run_cell(models(), &tiny_cell()).expect("cell runs");
    // Every metric is a virtual-clock quantity: the rendered rows must be
    // byte-identical across runs, which is what lets CI diff them against
    // a committed baseline.
    assert_eq!(a.to_json(), b.to_json());
    // And the render/parse pair round-trips the row exactly.
    let parsed = sage::obs::parse_rows(&sage::obs::render_rows(std::slice::from_ref(&a))).expect("parses");
    assert_eq!(parsed.len(), 1);
    assert_eq!(parsed[0].to_json(), a.to_json());
}

#[test]
fn scenario_diff_flags_out_of_band_metrics_with_a_readable_line() {
    use std::collections::BTreeMap;
    let base = run_cell(models(), &tiny_cell()).expect("cell runs");

    // Identical rows diff clean under any tolerance.
    let mut tolerance = BTreeMap::new();
    assert!(sage::obs::diff_rows(std::slice::from_ref(&base), std::slice::from_ref(&base), &tolerance, false).is_empty());

    // Perturb one banded metric past its band and one exact-match metric
    // by the smallest possible amount: both must be reported, each line
    // naming the row, the metric, and both values.
    tolerance.insert("p50_sojourn_us".to_string(), 0.10);
    let mut bad = base.clone();
    for (key, value) in &mut bad.metrics {
        if key == "p50_sojourn_us" {
            let v: f64 = value.parse().unwrap();
            *value = format!("{:.0}", v * 2.0);
        }
        if key == "errors" {
            *value = "1".to_string();
        }
    }
    let diff = sage::obs::diff_rows(std::slice::from_ref(&base), &[bad], &tolerance, false);
    assert_eq!(diff.len(), 2, "diff: {diff:?}");
    assert!(diff.iter().all(|l| l.contains("`e2e-tiny`")), "diff: {diff:?}");
    assert!(diff.iter().any(|l| l.contains("p50_sojourn_us") && l.contains("tolerance")));
    assert!(diff.iter().any(|l| l.contains("errors") && l.contains("baseline 0")));

    // In-band drift stays quiet: +5% on a 10% band is not a regression.
    let mut ok = base.clone();
    for (key, value) in &mut ok.metrics {
        if key == "p50_sojourn_us" {
            let v: f64 = value.parse().unwrap();
            *value = format!("{:.0}", v * 1.05);
        }
    }
    assert!(sage::obs::diff_rows(&[base], &[ok], &tolerance, false).is_empty());
}

#[test]
fn slo_report_reconciles_with_recorder_counters_and_ledger() {
    use sage::telemetry::metrics::{BROWNOUT_TOTAL, SHED_TOTAL};
    use std::time::Duration;

    let ds = quality::generate(SizeConfig { num_docs: 2, questions_per_doc: 4, seed: 7 });
    let corpus: Vec<String> = ds.documents.iter().map(|d| d.text()).collect();
    let questions: Vec<String> = ds.tasks.iter().map(|t| t.item.question.clone()).collect();
    let mut system = RagSystem::build(
        models(),
        RetrieverKind::OpenAiSim,
        SageConfig::sage(),
        LlmProfile::gpt4o_mini(),
        &corpus,
    );
    let hub = system.enable_telemetry();
    system.enable_recorder(sage::obs::RecorderConfig { capacity: 16, window: 8, topk: 2 });

    // Offered load past capacity with a tight deadline so the run sheds
    // and browns out — the interesting reconciliation cases.
    let shed0: u64 = (0..Priority::COUNT).map(|i| SHED_TOTAL.get(i)).sum();
    let brownout0 = BROWNOUT_TOTAL.total();
    let cfg = SoakConfig {
        seed: 0x510,
        duration: Duration::from_secs(15),
        qps: 8.0,
        capacity: 4,
        concurrency: 2,
        budget: Some(QueryBudget::new(Duration::from_millis(2_000), 50_000)),
        ..SoakConfig::default()
    };
    let soak = run_soak(&system, &questions, &cfg);
    assert!(soak.shed_total() > 0, "overload must shed: {:?}", soak.log);
    assert!(soak.browned_out() > 0, "tight deadline must brown out: {:?}", soak.log);

    // The SLO evaluator counts terminal events straight off the
    // observation stream; its totals must match the soak report exactly.
    let slo = evaluate_slo(&SloSpec::default(), &soak.obs);
    assert_eq!(slo.observed, soak.obs.len() as u64);
    assert_eq!(slo.shed_seen, soak.shed_total() + soak.expired as u64);
    assert_eq!(slo.browned_out_seen, soak.browned_out());

    // The process-global admission counters are monotonic and shared with
    // concurrently-running tests, so reconcile with >=: the deltas must
    // cover at least this run's events.
    let shed_delta: u64 = (0..Priority::COUNT).map(|i| SHED_TOTAL.get(i)).sum::<u64>() - shed0;
    assert!(shed_delta >= soak.shed_total(), "{shed_delta} < {}", soak.shed_total());
    let brownout_steps: u64 = soak
        .obs
        .iter()
        .filter(|o| o.outcome == sage::obs::Outcome::Done)
        .map(|o| u64::from(o.brownout))
        .sum();
    assert!(BROWNOUT_TOTAL.total() - brownout0 >= brownout_steps);

    // The recorder saw every observation, stayed within capacity, and
    // kept every flagged record up to capacity (tail-based retention).
    let stats = system.recorder_stats().expect("recorder attached");
    assert_eq!(stats.captured, soak.obs.len() as u64);
    let retained = system.with_recorder(|r| r.len()).unwrap();
    assert!(retained <= 16);
    let flagged_total = soak.obs.iter().filter(|o| o.flagged()).count();
    let flagged_retained = system
        .with_recorder(|r| r.records().iter().filter(|rec| rec.obs.flagged()).count())
        .unwrap();
    assert_eq!(flagged_retained, flagged_total.min(16));

    // This system's cost ledger attributes exactly the tokens the
    // observation stream reports (the hub is per-system, so this is exact
    // even with other tests running).
    let obs_tokens: u64 = soak.obs.iter().map(|o| o.tokens).sum();
    assert_eq!(hub.ledger().total().total_tokens(), obs_tokens);
}
