//! End-to-end QA on the NarrativeQA-analog dataset: every retriever with
//! and without SAGE (a runnable miniature of the paper's Table II).
//!
//! ```sh
//! cargo run --release --example narrative_qa
//! ```

use sage::corpus::datasets::{narrativeqa, SizeConfig};
use sage::prelude::*;

fn main() {
    println!("training models...");
    let models = TrainedModels::train(TrainBudget::default());

    println!("generating the NarrativeQA-analog dataset...");
    let dataset =
        narrativeqa::generate(SizeConfig { num_docs: 8, questions_per_doc: 4, seed: 0x11A });
    println!(
        "{} documents, {} questions, {} corpus tokens\n",
        dataset.documents.len(),
        dataset.tasks.len(),
        dataset.corpus_tokens()
    );

    let profile = LlmProfile::gpt4o_mini();
    println!(
        "{:<28} {:>8} {:>8} {:>8} {:>8}",
        "method", "ROUGE", "BLEU-1", "BLEU-4", "METEOR"
    );
    for kind in RetrieverKind::all() {
        for (method, suffix) in
            [(Method::Sage(kind), "with SAGE"), (Method::NaiveRag(kind), "without SAGE")]
        {
            let s = evaluate(method, &models, profile, &dataset);
            println!(
                "{:<28} {:>7.2}% {:>7.2}% {:>7.2}% {:>7.2}%",
                format!("{} {}", kind.label(), suffix),
                100.0 * s.rouge,
                100.0 * s.bleu1,
                100.0 * s.bleu4,
                100.0 * s.meteor
            );
        }
    }
    println!("\nExpected shape (paper Table II): each retriever scores higher with SAGE.");
}
