//! Cost efficiency on the QuALITY analog (the paper's Table XI): SAGE
//! answers better *and* cheaper, because semantic chunks are small and
//! gradient selection drops noisy ones.
//!
//! ```sh
//! cargo run --release --example cost_efficiency
//! ```

use sage::corpus::datasets::{quality, SizeConfig};
use sage::prelude::*;

fn main() {
    println!("training models...");
    let models = TrainedModels::train(TrainBudget::default());

    let dataset = quality::generate(SizeConfig { num_docs: 8, questions_per_doc: 4, seed: 0xC0 });
    let profile = LlmProfile::gpt4o_mini();

    let methods = [
        ("BM25", Method::NaiveRag(RetrieverKind::Bm25)),
        ("DPR", Method::NaiveRag(RetrieverKind::Dpr)),
        ("SBERT", Method::NaiveRag(RetrieverKind::Sbert)),
        ("SAGE", Method::Sage(RetrieverKind::OpenAiSim)),
    ];
    let mut rows = Vec::new();
    for (name, method) in methods {
        let s = evaluate(method, &models, profile, &dataset);
        rows.push((name, s.cost.total_tokens(), s.accuracy, s.efficiency()));
    }
    let best = rows.iter().map(|r| r.3).fold(0.0f64, f64::max);

    println!(
        "\n{:<8} {:>14} {:>10} {:>24}",
        "model", "tokens", "accuracy", "relative cost-efficiency"
    );
    for (name, tokens, acc, eff) in rows {
        println!(
            "{:<8} {:>14} {:>9.1}% {:>24.3}",
            name,
            tokens,
            100.0 * acc,
            if best > 0.0 { eff / best } else { 0.0 }
        );
    }
    println!("\nExpected shape (paper Table XI): SAGE consumes fewer tokens at higher accuracy,");
    println!("so its relative cost-efficiency is 1.0 and the baselines land below it.");
}
