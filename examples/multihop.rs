//! Multi-hop retrieval (the paper's §X future-work direction 1,
//! Baleen-style): questions whose answer needs a bridge fact from a second
//! document region. Single-hop retrieval fails; iterative retrieve →
//! condense → retrieve succeeds.
//!
//! ```sh
//! cargo run --release --example multihop
//! ```

use sage::core::multihop::{answer_multihop, answer_singlehop, generate_two_hop};
use sage::prelude::*;

fn main() {
    println!("training models...");
    let models = TrainedModels::train(TrainBudget::default());

    let dataset = generate_two_hop(10, 0x2407);
    let system = RagSystem::build(
        &models,
        RetrieverKind::OpenAiSim,
        SageConfig { use_feedback: false, ..SageConfig::sage() },
        LlmProfile::gpt4(),
        &dataset.corpus,
    );

    let mut single_f1 = 0.0;
    let mut multi_f1 = 0.0;
    println!();
    for task in &dataset.tasks {
        let single = answer_singlehop(&system, task);
        let multi = answer_multihop(&system, task);
        single_f1 += f1_match(&single.answer.text, &[task.answer.clone()]);
        multi_f1 += f1_match(&multi.answer.text, &[task.answer.clone()]);
        println!(
            "Q: {}\n  gold: {:<12} single-hop: {:<16} multi-hop: {}",
            task.question, task.answer, single.answer.text, multi.answer.text
        );
    }
    let n = dataset.tasks.len() as f32;
    println!(
        "\nmean F1 — single-hop: {:.1}%   multi-hop: {:.1}%",
        100.0 * single_f1 / n,
        100.0 * multi_f1 / n
    );
}
