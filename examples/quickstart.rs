//! Quickstart: build a SAGE system over a small corpus and ask questions.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use sage::prelude::*;

fn main() {
    // 1. Train the models (segmentation model, reranker, encoders). All
    //    training is deterministic and runs on CPU in seconds.
    println!("training models...");
    let models = TrainedModels::train(TrainBudget::default());

    // 2. A corpus: each document is one string, paragraphs separated by
    //    '\n'. Note how facts about an entity use pronouns — exactly what
    //    breaks fixed-length chunking (the paper's limitation L1).
    let corpus = vec![
        "Whiskers is a playful tabby cat. He has bright green eyes. His fur is mostly gray.\n\
         The morning fog settled over the valley, as it had for many years.\n\
         Patchy is a ferret with a stubborn streak. Patchy has bright orange eyes.\n\
         Dorinwick was well known in the region. He lives in Ashford. He works as a baker. \
         He plays the mandolin.\n\
         Bells rang faintly from the far tower, and the day passed slowly."
            .to_string(),
    ];

    // 3. Build: semantic segmentation -> embeddings -> vector index.
    let system = RagSystem::build(
        &models,
        RetrieverKind::OpenAiSim,
        SageConfig::sage(),
        LlmProfile::gpt4o_mini(),
        &corpus,
    );
    let stats = system.build_stats();
    println!(
        "built: {} chunks from {} corpus tokens (segmentation {:?}, indexing {:?})\n",
        stats.chunk_count, stats.corpus_tokens, stats.segmentation_time, stats.index_time
    );

    // 4. Ask open-ended questions.
    for question in [
        "What is the color of Whiskers's eyes?",
        "Where does Dorinwick live?",
        "Which instrument does Dorinwick play?",
        "What is the color of Patchy's eyes?",
        "Where was Dorinwick born?", // not in the corpus
    ] {
        let r = system.answer_open(question);
        println!(
            "Q: {question}\nA: {}  (confidence {:.2}, {} chunks, {} feedback rounds, \
             {} tokens, ${:.6})\n",
            r.answer.text,
            r.answer.confidence,
            r.selected.len(),
            r.feedback_rounds,
            r.cost.total_tokens(),
            r.cost.dollars(PriceTable::gpt4o_mini()),
        );
    }

    // 5. Multiple choice works too.
    let options: Vec<String> =
        ["orange", "green", "violet", "gray"].iter().map(|s| s.to_string()).collect();
    let r = system.answer_multiple_choice("What is the color of Whiskers's eyes?", &options);
    println!(
        "MC: picked option {} ({})",
        r.picked_option.unwrap(),
        r.answer.text
    );
}
