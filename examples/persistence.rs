//! Train once, index once, serve many times: persist the model bundle and
//! a built corpus system, then reload them and answer with different
//! reader profiles.
//!
//! ```sh
//! cargo run --release --example persistence
//! ```

use sage::prelude::*;

fn main() -> std::io::Result<()> {
    let dir = std::env::temp_dir();
    let models_path = dir.join("sage_example_models.bin");
    let index_path = dir.join("sage_example_index.bin");

    // 1. Train and save the model bundle.
    println!("training models...");
    let models = TrainedModels::train(TrainBudget::default());
    models.save(&models_path)?;
    println!("models -> {} ({} bytes)", models_path.display(), std::fs::metadata(&models_path)?.len());

    // 2. Build a corpus system and save it.
    let corpus = vec![
        "Whiskers is a playful tabby cat. He has bright green eyes.\n\
         Dorinwick was well known in the region. He lives in Ashford. He plays the mandolin.\n\
         The morning fog settled over the valley, as it had for many years."
            .to_string(),
    ];
    let system = RagSystem::build(
        &models,
        RetrieverKind::OpenAiSim,
        SageConfig::sage(),
        LlmProfile::gpt4o_mini(),
        &corpus,
    );
    system.save(&index_path)?;
    println!("index  -> {} ({} bytes)", index_path.display(), std::fs::metadata(&index_path)?.len());

    // 3. Reload in a "fresh process" (here: fresh values) and query with
    //    two different readers — the reader is a runtime choice.
    let reloaded_models = TrainedModels::load(&models_path)?;
    assert_eq!(
        models.segmentation.score_pair("The cat sat.", "He slept."),
        reloaded_models.segmentation.score_pair("The cat sat.", "He slept."),
    );
    for profile in [LlmProfile::gpt4(), LlmProfile::gpt4o_mini()] {
        let served = RagSystem::load(&index_path, profile)?;
        let r = served.answer_open("Which instrument does Dorinwick play?");
        println!("[{}] {}", profile.name, r.answer.text);
    }

    std::fs::remove_file(&models_path).ok();
    std::fs::remove_file(&index_path).ok();
    Ok(())
}
