#!/bin/bash
# Tier-1 gate: the checks every PR must keep green.
#
#   scripts/check.sh            # build + tests + clippy
#   scripts/check.sh fast       # skip clippy
#
# Offline environments without the crates.io dependencies can use
# scripts/offline/buildws.sh instead (bare-rustc harness with functional
# stubs for rand/bytes/parking_lot/serde/proptest/criterion).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "=== cargo build --release"
cargo build --release --workspace

echo "=== cargo test -q"
cargo test -q --workspace

if [ "${1:-}" != fast ]; then
  echo "=== cargo clippy --all-targets -- -D warnings"
  cargo clippy --workspace --all-targets -- -D warnings
fi

echo "=== tier-1 gate OK"
