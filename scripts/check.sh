#!/bin/bash
# Tier-1 gate: the checks every PR must keep green.
#
#   scripts/check.sh            # build + tests + clippy + telemetry smoke
#   scripts/check.sh fast       # skip clippy and the smoke test
#
# Offline environments without the crates.io dependencies can use
# scripts/offline/buildws.sh instead (bare-rustc harness with functional
# stubs for rand/bytes/parking_lot/serde/proptest/criterion).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "=== cargo build --release"
cargo build --release --workspace

echo "=== sage-lint (workspace static analysis + ratchet)"
# Replaces the old println grep: sage-lint enforces the token rules
# (no-panic-serving, deterministic-iteration, no-wallclock, layering,
# relaxed-atomics-confined, unwind-boundary, ...) plus the whole-program
# rules (panic-reachability, determinism-taint, stale-suppression), with
# justified inline suppressions (DESIGN.md §9). The committed
# lint-baseline.json ratchet fails the gate when any per-rule count
# regresses — or loosens without a justification (run
# `sage lint --baseline lint-baseline.json --update-baseline` after an
# intentional cleanup).
cargo run -q --release -p sage-cli -- lint --root . --baseline lint-baseline.json

echo "=== sage-lint SARIF smoke (emit is machine-readable)"
# Render the same run as SARIF 2.1.0 and parse it back through the
# validator: a malformed emit must fail here, not at upload time.
lint_tmp=$(mktemp -d)
cargo run -q --release -p sage-cli -- lint --root . --format sarif \
  > "$lint_tmp/lint.sarif"
cargo run -q --release -p sage-cli -- lint --validate-sarif "$lint_tmp/lint.sarif" \
  || { echo "FAIL: emitted SARIF does not validate"; rm -rf "$lint_tmp"; exit 1; }
rm -rf "$lint_tmp"

echo "=== module-size ceiling (pipeline stays a thin plan-builder layer)"
# The stage-graph executor (core/src/exec/) owns query execution;
# pipeline.rs must not grow back into the pre-refactor monolith.
pipeline_lines=$(wc -l < crates/core/src/pipeline.rs)
if [ "$pipeline_lines" -ge 700 ]; then
  echo "FAIL: crates/core/src/pipeline.rs is $pipeline_lines lines (ceiling 700);"
  echo "      move execution logic into crates/core/src/exec/ instead"
  exit 1
fi
echo "pipeline.rs at $pipeline_lines lines (< 700)"

echo "=== cargo test -q"
cargo test -q --workspace

if [ "${1:-}" != fast ]; then
  echo "=== cargo clippy --all-targets -- -D warnings"
  cargo clippy --workspace --all-targets -- -D warnings

  echo "=== telemetry smoke (exporters well-formed)"
  tmp=$(mktemp -d)
  trap 'rm -rf "$tmp"' EXIT
  printf 'Whiskers is a playful tabby cat. He has bright green eyes.\n\nDorinwick was well known in the region. He lives in Ashford.\n' \
    > "$tmp/corpus.txt"
  cargo run -q --release -p sage-cli -- ask \
    --file "$tmp/corpus.txt" \
    --question "What is the color of Whiskers's eyes?" \
    --telemetry --metrics-out "$tmp/metrics.prom" --trace-out "$tmp/trace.jsonl" \
    > "$tmp/answer.txt" 2> "$tmp/summary.txt"
  grep -q green "$tmp/answer.txt" || { echo "FAIL: wrong answer"; cat "$tmp/answer.txt"; exit 1; }
  grep -q 'sage telemetry' "$tmp/summary.txt" || { echo "FAIL: no stderr summary"; exit 1; }
  grep -q '"name":"retrieve"' "$tmp/trace.jsonl" || { echo "FAIL: no retrieve span in trace"; exit 1; }
  # The Prometheus dump must have TYPE lines, no duplicate metric names,
  # and finite sample values.
  awk '
    /^# TYPE / { types++; if (seen[$3]++) { print "FAIL: duplicate # TYPE " $3; bad = 1 } }
    /^[a-z]/ {
      v = $NF
      if (v !~ /^-?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?$/) { print "FAIL: non-finite sample: " $0; bad = 1 }
    }
    END {
      if (types == 0) { print "FAIL: no # TYPE lines"; bad = 1 }
      exit bad
    }
  ' "$tmp/metrics.prom"
  echo "telemetry smoke ok"

  echo "=== soak smoke (deterministic overload replay)"
  # Two runs with the same seed must produce bit-identical event logs,
  # complete queries, and shed zero panics (the command itself exits
  # nonzero on any soak-invariant violation).
  cargo run -q --release -p sage-cli -- soak \
    --seed 42 --duration 10 --qps 3 --docs 1 \
    > "$tmp/soak_a.log" 2> "$tmp/soak_a.err"
  cargo run -q --release -p sage-cli -- soak \
    --seed 42 --duration 10 --qps 3 --docs 1 \
    > "$tmp/soak_b.log" 2> /dev/null
  diff -q "$tmp/soak_a.log" "$tmp/soak_b.log" \
    || { echo "FAIL: soak replay is not deterministic"; exit 1; }
  grep -q ' done ' "$tmp/soak_a.log" || { echo "FAIL: soak completed nothing"; exit 1; }
  grep -q 'panics 0' "$tmp/soak_a.err" || { echo "FAIL: soak saw panics"; exit 1; }
  echo "soak smoke ok"

  echo "=== batched-equivalence smoke (slot scheduler is invisible)"
  # The cross-query slot scheduler is a wall-clock knob only: the same
  # soak served through 4 scheduler workers per dispatch wave must print
  # the exact event log the sequential path prints, byte for byte.
  cargo run -q --release -p sage-cli -- soak \
    --seed 42 --duration 10 --qps 3 --docs 1 --exec-workers 4 \
    > "$tmp/soak_w4.log" 2> "$tmp/soak_w4.err"
  diff -q "$tmp/soak_a.log" "$tmp/soak_w4.log" \
    || { echo "FAIL: --exec-workers 4 soak diverges from the sequential path"; exit 1; }
  grep -q ' done ' "$tmp/soak_w4.log" \
    || { echo "FAIL: batched soak completed nothing"; exit 1; }
  grep -q 'panics 0' "$tmp/soak_w4.err" \
    || { echo "FAIL: batched soak saw panics"; exit 1; }
  echo "batched-equivalence smoke ok"

  echo "=== shard smoke (scatter-gather determinism + loss drill)"
  # Scatter-gather must be invisible when healthy: the same question
  # served through 4 shards must print the exact answer the unsharded
  # scan does (the deterministic merge is byte-identical at every N).
  cargo run -q --release -p sage-cli -- ask \
    --file "$tmp/corpus.txt" --question "What is the color of Whiskers's eyes?" \
    > "$tmp/ask_unsharded.txt" 2> /dev/null
  cargo run -q --release -p sage-cli -- ask \
    --file "$tmp/corpus.txt" --question "What is the color of Whiskers's eyes?" \
    --shards 4 \
    > "$tmp/ask_sharded.txt" 2> /dev/null
  diff -q "$tmp/ask_unsharded.txt" "$tmp/ask_sharded.txt" \
    || { echo "FAIL: 4-shard merge diverges from unsharded results"; exit 1; }
  # Loss drill: kill shard 1 of 4 outright under load. Every completed
  # query must serve from the three survivors under a documented
  # shard-partial rung, with zero panics and zero errors, and the event
  # log must replay byte-for-byte.
  cargo run -q --release -p sage-cli -- soak \
    --seed 42 --duration 10 --qps 3 --docs 1 \
    --shards 4 --resilience --faults "shard:1:down" \
    > "$tmp/shard_a.log" 2> "$tmp/shard_a.err"
  cargo run -q --release -p sage-cli -- soak \
    --seed 42 --duration 10 --qps 3 --docs 1 \
    --shards 4 --resilience --faults "shard:1:down" \
    > "$tmp/shard_b.log" 2> /dev/null
  diff -q "$tmp/shard_a.log" "$tmp/shard_b.log" \
    || { echo "FAIL: shard-loss soak replay is not deterministic"; exit 1; }
  grep -q 'rung=shard-partial:1/4' "$tmp/shard_a.log" \
    || { echo "FAIL: no shard-partial rung on the survivors' answers"; exit 1; }
  grep -q 'panics 0' "$tmp/shard_a.err" \
    || { echo "FAIL: shard-loss soak saw panics"; exit 1; }
  grep -q 'errors 0' "$tmp/shard_a.err" \
    || { echo "FAIL: shard-loss soak saw errors"; exit 1; }
  echo "shard smoke ok"

  echo "=== live-corpus smoke (crash injection + recovery drill)"
  # Mutate a store under a crash plan: every injected crash must recover
  # to the last committed epoch (the command exits nonzero on any live
  # invariant violation), and two runs with the same seeds must produce
  # byte-identical logs even in different directories — the log carries
  # no wall-clock times or paths.
  cargo run -q --release -p sage-cli -- soak --live \
    --live-dir "$tmp/live_a" --ops 12 --seed 42 \
    --crash "pre-rename:0.4,pre-manifest-commit:0.3" --crash-seed 7 \
    > "$tmp/live_a.log" 2> "$tmp/live_a.err"
  cargo run -q --release -p sage-cli -- soak --live \
    --live-dir "$tmp/live_b" --ops 12 --seed 42 \
    --crash "pre-rename:0.4,pre-manifest-commit:0.3" --crash-seed 7 \
    > "$tmp/live_b.log" 2> /dev/null
  diff -q "$tmp/live_a.log" "$tmp/live_b.log" \
    || { echo "FAIL: live soak replay is not deterministic"; exit 1; }
  grep -q '^recover ' "$tmp/live_a.log" \
    || { echo "FAIL: crash plan injected no recovery drill"; exit 1; }
  grep -q 'violations=0 ' "$tmp/live_a.log" \
    || { echo "FAIL: live soak saw invariant violations"; exit 1; }
  # Reload the survivor store: it must reopen cleanly at its last epoch.
  cargo run -q --release -p sage-cli -- soak --live \
    --live-dir "$tmp/live_a" --ops 0 --seed 43 \
    > "$tmp/live_reopen.log" 2> /dev/null
  grep -Eq '^open epoch=[1-9]' "$tmp/live_reopen.log" \
    || { echo "FAIL: live store did not reopen at committed epoch"; cat "$tmp/live_reopen.log"; exit 1; }
  echo "live-corpus smoke ok"

  echo "=== explain smoke (resolved plan rendering)"
  # The plan printer must show the full SAGE stage graph and the rewrite
  # each brownout rung applies; the naive plan must not judge answers.
  cargo run -q --release -p sage-cli -- explain "why is the sky blue" \
    > "$tmp/explain_sage.txt"
  for needle in "embed" "retrieve-dense" "select (gradient)" "feedback" \
                "rung DropFeedback" "rung FlatTopK" "middleware"; do
    grep -q "$needle" "$tmp/explain_sage.txt" \
      || { echo "FAIL: explain output missing '$needle'"; cat "$tmp/explain_sage.txt"; exit 1; }
  done
  cargo run -q --release -p sage-cli -- explain --naive --retriever bm25 \
    > "$tmp/explain_naive.txt"
  grep -q "retrieve-bm25" "$tmp/explain_naive.txt" \
    || { echo "FAIL: naive explain missing bm25 stage"; exit 1; }
  # The naive round template must not judge answers.
  if grep -q "^  feedback" "$tmp/explain_naive.txt"; then
    echo "FAIL: naive plan still judges answers"; exit 1
  fi
  echo "explain smoke ok"

  echo "=== scenario-matrix smoke (committed trajectory holds)"
  # The smoke cells must replay byte-for-byte and sit inside the
  # tolerance bands of the committed BENCH_scenarios.json; the command
  # itself exits nonzero and prints one `regression:` line per metric
  # outside its band.
  cargo run -q --release -p sage-cli -- scenarios run scenarios.toml \
    --filter smoke --out "$tmp/scen_a.json" 2> /dev/null \
    || { echo "FAIL: smoke cells regressed against BENCH_scenarios.json"; exit 1; }
  cargo run -q --release -p sage-cli -- scenarios run scenarios.toml \
    --filter smoke --out "$tmp/scen_b.json" 2> /dev/null
  cmp -s "$tmp/scen_a.json" "$tmp/scen_b.json" \
    || { echo "FAIL: scenario rows are not byte-identical across runs"; exit 1; }
  echo "scenario-matrix smoke ok"

  echo "=== hostile-label smoke (Prometheus escaping)"
  # A cell name carrying a backslash must round-trip through the metrics
  # dump as an escaped label value without breaking the exposition
  # grammar (TOML strings reject embedded quotes, so backslash is the
  # hostile character a grid can actually smuggle in).
  cat > "$tmp/hostile.toml" <<'HOSTILE'
[[cell]]
name = "smoke\hostile"
docs = 1
duration_s = 4
qps = 2
HOSTILE
  cargo run -q --release -p sage-cli -- scenarios run "$tmp/hostile.toml" \
    --baseline "$tmp/hostile_base.json" --metrics-out "$tmp/hostile.prom" \
    > /dev/null 2> /dev/null
  grep -q 'cell="smoke\\\\hostile"' "$tmp/hostile.prom" \
    || { echo "FAIL: backslash not escaped in label value"; cat "$tmp/hostile.prom"; exit 1; }
  awk '
    /^# TYPE / { types++ }
    /^[a-z]/ {
      v = $NF
      if (v !~ /^-?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?$/) { print "FAIL: non-finite sample: " $0; bad = 1 }
      if ($0 !~ /^[a-z_]+(\{[a-z_]+="([^"\\]|\\.)*"(,[a-z_]+="([^"\\]|\\.)*")*\})? /) {
        print "FAIL: malformed series: " $0; bad = 1
      }
    }
    END { if (types == 0) { print "FAIL: no # TYPE lines"; bad = 1 }; exit bad }
  ' "$tmp/hostile.prom"
  echo "hostile-label smoke ok"
fi

echo "=== tier-1 gate OK"
