//! Stub derive macros for serde (offline typecheck harness): the workspace
//! only uses the derives as markers (no serde_json dependency), so emitting
//! empty impls is faithful enough for typechecking.
extern crate proc_macro;
use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
