//! Minimal stand-in for `criterion`, sufficient to compile and smoke-run
//! bench targets offline: every `bench_function` closure executes once and
//! timing/reporting is skipped. The real crate is used by the CI build.

pub struct Criterion {
    _p: (),
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { _p: () }
    }
}

impl Criterion {
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    pub fn measurement_time(self, _d: std::time::Duration) -> Self {
        self
    }

    pub fn warm_up_time(self, _d: std::time::Duration) -> Self {
        self
    }

    pub fn benchmark_group<S: ToString>(&mut self, _name: S) -> BenchmarkGroup {
        BenchmarkGroup { _p: () }
    }

    pub fn bench_function<S: ToString, F: FnMut(&mut Bencher)>(
        &mut self,
        _name: S,
        mut f: F,
    ) -> &mut Self {
        f(&mut Bencher { _p: () });
        self
    }
}

pub struct BenchmarkGroup {
    _p: (),
}

impl BenchmarkGroup {
    pub fn throughput(&mut self, _t: Throughput) {}

    pub fn bench_function<S: ToString, F: FnMut(&mut Bencher)>(
        &mut self,
        _name: S,
        mut f: F,
    ) -> &mut Self {
        f(&mut Bencher { _p: () });
        self
    }

    pub fn bench_with_input<S: ToString, I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        _id: S,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        f(&mut Bencher { _p: () }, input);
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    _p: (),
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let _ = f();
    }
}

pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

pub struct BenchmarkId;

impl BenchmarkId {
    pub fn new<S: ToString, P: std::fmt::Display>(name: S, param: P) -> String {
        format!("{}/{param}", name.to_string())
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($t:path),* $(,)?) => {
        pub fn $name() {
            let mut c = $cfg;
            $($t(&mut c);)*
        }
    };
    ($name:ident, $($t:path),* $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($t(&mut c);)*
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($g:path),* $(,)?) => {
        fn main() {
            $($g();)*
        }
    };
}
