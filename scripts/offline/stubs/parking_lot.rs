//! Functional stand-in for `parking_lot` (offline typecheck/test harness):
//! std-backed locks with parking_lot's no-poison API.

#[derive(Debug, Default)]
pub struct RwLock<T>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}
