//! Functional stand-in for the `rand` crate (offline typecheck/test harness).
//! API-compatible for the surface this workspace uses: StdRng, SeedableRng,
//! Rng::{random_range, random_bool}. The stream differs from real StdRng
//! (SplitMix64 here), which is fine for tests that assert internal
//! consistency rather than golden ChaCha output.

pub mod rngs {
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) state: u64,
    }
}

pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        rngs::StdRng { state: seed ^ 0x5DEE_CE66_D1CE_F00D }
    }
}

pub trait Rng {
    fn next_u64(&mut self) -> u64;

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.next_f64() < p
    }
}

impl Rng for rngs::StdRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

pub trait SampleRange<T> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> T;
}

/// Per-type uniform sampling; a single blanket `SampleRange` impl over
/// `Range<T>` / `RangeInclusive<T>` keeps type inference identical to the
/// real crate (the range's item type IS the sample type).
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_half_open<R: Rng>(rng: &mut R, lo: Self, hi: Self) -> Self;
    fn sample_inclusive<R: Rng>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> T {
        let (s, e) = (*self.start(), *self.end());
        assert!(s <= e, "cannot sample empty range");
        T::sample_inclusive(rng, s, e)
    }
}

macro_rules! int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: Rng>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
            fn sample_inclusive<R: Rng>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
int_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: Rng>(rng: &mut R, lo: Self, hi: Self) -> Self {
                lo + (rng.next_f64() as $t) * (hi - lo)
            }
            fn sample_inclusive<R: Rng>(rng: &mut R, lo: Self, hi: Self) -> Self {
                lo + (rng.next_f64() as $t) * (hi - lo)
            }
        }
    )*};
}
float_uniform!(f32, f64);
