//! Functional stand-in for the `bytes` crate (offline typecheck/test
//! harness). Implements the surface this workspace uses: Bytes, BytesMut,
//! Buf::{remaining, advance, get_u8, get_u32_le, get_u64_le, get_f32_le},
//! BufMut::{put_u8, put_u32_le, put_u64_le, put_f32_le, put_slice},
//! Bytes::{from, from_static, split_to, slice}, BytesMut::{new,
//! with_capacity, freeze}. Semantics match the real crate for these calls.

use std::ops::Deref;
use std::sync::Arc;

#[derive(Clone, Debug, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    pub fn new() -> Self {
        Self::from(Vec::new())
    }

    pub fn from_static(s: &'static [u8]) -> Self {
        Self::from(s.to_vec())
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Split off the first `at` bytes, leaving the rest in `self`.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to out of bounds: {} > {}", at, self.len());
        let head = Bytes { data: self.data.clone(), start: self.start, end: self.start + at };
        self.start += at;
        head
    }

    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            std::ops::Bound::Included(&n) => n,
            std::ops::Bound::Excluded(&n) => n + 1,
            std::ops::Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            std::ops::Bound::Included(&n) => n + 1,
            std::ops::Bound::Excluded(&n) => n,
            std::ops::Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes { data: self.data.clone(), start: self.start + lo, end: self.start + hi }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes { data: v.into(), start: 0, end }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Self::from_static(s)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}
impl Eq for Bytes {}

#[derive(Clone, Debug, Default)]
pub struct BytesMut {
    vec: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_capacity(n: usize) -> Self {
        Self { vec: Vec::with_capacity(n) }
    }

    pub fn len(&self) -> usize {
        self.vec.len()
    }

    pub fn is_empty(&self) -> bool {
        self.vec.is_empty()
    }

    pub fn freeze(self) -> Bytes {
        Bytes::from(self.vec)
    }

    pub fn extend_from_slice(&mut self, s: &[u8]) {
        self.vec.extend_from_slice(s);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.vec
    }
}

pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, cnt: usize);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn get_u8(&mut self) -> u8 {
        assert!(self.remaining() >= 1, "buffer underflow");
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    fn get_u32_le(&mut self) -> u32 {
        assert!(self.remaining() >= 4, "buffer underflow");
        let mut b = [0u8; 4];
        b.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(b)
    }

    fn get_u64_le(&mut self) -> u64 {
        assert!(self.remaining() >= 8, "buffer underflow");
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(b)
    }

    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance out of bounds");
        self.start += cnt;
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

pub trait BufMut {
    fn put_slice(&mut self, s: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_f32_le(&mut self, v: f32) {
        self.put_u32_le(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, s: &[u8]) {
        self.vec.extend_from_slice(s);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, s: &[u8]) {
        self.extend_from_slice(s);
    }
}
