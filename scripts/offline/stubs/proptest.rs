//! Minimal functional stand-in for the `proptest` crate, sufficient to
//! compile and smoke-run `tests/properties.rs` offline. Deterministic
//! sampling (SplitMix64 keyed on test name + case index), a fixed case
//! count, no shrinking. The real crate is used by the CI build.

/// Deterministic generator handed to strategies during sampling.
pub struct Rng(u64);

impl Rng {
    pub fn for_case(name: &str, case: u32) -> Rng {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
        Rng(h ^ (u64::from(case) + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    pub fn below(&mut self, n: usize) -> usize {
        if n == 0 {
            0
        } else {
            (self.next_u64() % n as u64) as usize
        }
    }
}

/// Object-safe value source; `prop_map`/`boxed` require `Sized`.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut Rng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    fn boxed(self) -> Box<dyn Strategy<Value = Self::Value>>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn sample(&self, rng: &mut Rng) -> T {
        (**self).sample(rng)
    }
}

#[derive(Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut Rng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn sample(&self, rng: &mut Rng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut Rng) -> $t {
                let span = self.end.saturating_sub(self.start) as u64;
                self.start + (rng.next_u64() % span.max(1)) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut Rng) -> $t {
                self.start + (self.end - self.start) * rng.unit_f64() as $t
            }
        }
    )*};
}
float_range_strategy!(f32, f64);

/// String literals act as regex strategies. Supports the subset used in
/// the test suite: literal chars and `[a-z0-9...]` classes (with ranges),
/// each optionally followed by `{m}` or `{m,n}`.
impl Strategy for &'static str {
    type Value = String;
    fn sample(&self, rng: &mut Rng) -> String {
        sample_regex(self, rng)
    }
}

fn sample_regex(pattern: &str, rng: &mut Rng) -> String {
    let mut out = String::new();
    let mut chars = pattern.chars().peekable();
    while let Some(c) = chars.next() {
        let set: Vec<char> = if c == '[' {
            let mut set = Vec::new();
            let mut prev: Option<char> = None;
            while let Some(d) = chars.next() {
                if d == ']' {
                    break;
                }
                if d == '-' {
                    if let (Some(lo), Some(&hi)) = (prev, chars.peek()) {
                        chars.next();
                        let mut x = lo as u32 + 1;
                        while x <= hi as u32 {
                            if let Some(ch) = char::from_u32(x) {
                                set.push(ch);
                            }
                            x += 1;
                        }
                        prev = None;
                        continue;
                    }
                }
                set.push(d);
                prev = Some(d);
            }
            set
        } else {
            vec![c]
        };
        let (lo, hi) = if chars.peek() == Some(&'{') {
            chars.next();
            let mut spec = String::new();
            for d in chars.by_ref() {
                if d == '}' {
                    break;
                }
                spec.push(d);
            }
            let mut parts = spec.splitn(2, ',');
            let lo: usize = parts.next().unwrap_or("1").trim().parse().unwrap_or(1);
            let hi: usize = match parts.next() {
                Some(s) => s.trim().parse().unwrap_or(lo),
                None => lo,
            };
            (lo, hi.max(lo))
        } else {
            (1, 1)
        };
        if set.is_empty() {
            continue;
        }
        let n = lo + rng.below(hi - lo + 1);
        for _ in 0..n {
            out.push(set[rng.below(set.len())]);
        }
    }
    out
}

/// Weighted union produced by `prop_oneof!`.
pub struct Union<T> {
    arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
}

pub fn union<T>(arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>) -> Union<T> {
    Union { arms }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut Rng) -> T {
        let total: u64 = self.arms.iter().map(|(w, _)| u64::from(*w)).sum();
        let mut pick = rng.next_u64() % total.max(1);
        for (w, s) in &self.arms {
            if pick < u64::from(*w) {
                return s.sample(rng);
            }
            pick -= u64::from(*w);
        }
        self.arms[0].1.sample(rng)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut Rng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
}

pub mod collection {
    use super::{Rng, Strategy};

    pub struct SizeRange(pub usize, pub usize);

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange(n, n)
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            SizeRange(r.start, r.end.saturating_sub(1).max(r.start))
        }
    }

    pub struct VecStrategy<S> {
        elem: S,
        lo: usize,
        hi: usize,
    }

    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        let SizeRange(lo, hi) = size.into();
        VecStrategy { elem, lo, hi }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut Rng) -> Vec<S::Value> {
            let n = self.lo + rng.below(self.hi - self.lo + 1);
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

pub mod bool {
    pub struct Any;
    pub const ANY: Any = Any;

    impl super::Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut super::Rng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

#[derive(Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 16 }
    }
}

pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
    pub use crate::{Just, ProptestConfig, Strategy};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[macro_export]
macro_rules! __proptest_impl {
    (
        ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($p:pat_param in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __pt_cases: u32 = ($cfg).cases;
                for __pt_i in 0..__pt_cases {
                    let mut __pt_rng = $crate::Rng::for_case(stringify!($name), __pt_i);
                    let __pt_body = |__pt_rng: &mut $crate::Rng| {
                        $(let $p = $crate::Strategy::sample(&($strat), __pt_rng);)*
                        $body
                    };
                    __pt_body(&mut __pt_rng);
                }
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::union(vec![$(($weight as u32, $crate::Strategy::boxed($strat))),+])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::union(vec![$((1u32, $crate::Strategy::boxed($strat))),+])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        assert!($cond $(, $($fmt)*)?)
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(, $($fmt:tt)*)?) => {
        assert_eq!($a, $b $(, $($fmt)*)?)
    };
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
}
