//! Stub for `serde` (offline typecheck harness). Re-exports the stub derive
//! macros; the traits exist so `use serde::{Serialize, Deserialize}` and
//! derive attributes resolve.
pub use serde_derive::{Deserialize, Serialize};
