#!/bin/bash
# Offline build+test harness for the SAGE workspace: compiles functional
# stubs for external crates (rand/bytes/parking_lot/serde/proptest/criterion)
# with bare rustc, then builds every workspace crate in dependency order and
# runs unit, integration, property, CLI, and bench targets.
# Usage: buildws.sh [build|test|clippy] [crate-filter]
#   test   — build everything and execute all test binaries
#   clippy — lint all targets with clippy-driver (-D warnings -D clippy::all)
#   OPT=1  — optimized build into /tmp/wsbuild-opt (perf measurements)
set -u
cd /root/repo
OUT=/tmp/wsbuild
STUB=/tmp/stubdeps
MODE="${1:-build}"
FILTER="${2:-}"
# OPT=1 builds optimized into a separate dir (for perf measurements).
if [ "${OPT:-0}" = 1 ]; then OUT=/tmp/wsbuild-opt; fi
mkdir -p "$OUT"
RUSTFLAGS_COMMON=(--edition 2021 -L "$OUT" -A warnings)
if [ "${OPT:-0}" = 1 ]; then RUSTFLAGS_COMMON+=(-C opt-level=2); fi
# clippy mode: lint workspace code (stubs still build with plain rustc).
COMPILER=rustc
if [ "$MODE" = clippy ]; then
  COMPILER=clippy-driver
  RUSTFLAGS_COMMON+=(-D warnings -D clippy::all)
fi

fail=0

stub() { # name src [kind]
  local name=$1 src=$2 kind=${3:-rlib}
  local opt=()
  if [ "${OPT:-0}" = 1 ]; then opt=(-C opt-level=2); fi
  if [ "$kind" = proc-macro ]; then
    rustc --edition 2021 --crate-type proc-macro --crate-name "$name" "$src" \
      -o "$OUT/lib$name.so" -L "$OUT" -A warnings "${opt[@]}" || fail=1
  else
    rustc --edition 2021 --crate-type rlib --crate-name "$name" "$src" \
      -o "$OUT/lib$name.rlib" -L "$OUT" -A warnings "${opt[@]}" || fail=1
  fi
}

# Stubs (rebuild every run; they're tiny).
stub serde_derive "$STUB/serde_derive.rs" proc-macro
rustc --edition 2021 --crate-type rlib --crate-name serde "$STUB/serde.rs" \
  -o "$OUT/libserde.rlib" --extern serde_derive="$OUT/libserde_derive.so" -A warnings || fail=1
stub rand "$STUB/rand.rs"
stub bytes "$STUB/bytes.rs"
stub parking_lot "$STUB/parking_lot.rs"
stub proptest "$STUB/proptest.rs"
stub criterion "$STUB/criterion.rs"

# externs <dep...> -> --extern flags (workspace crates get sage_ names)
ext() {
  local flags=()
  for d in "$@"; do
    case "$d" in
      serde) flags+=(--extern "serde=$OUT/libserde.rlib" --extern "serde_derive=$OUT/libserde_derive.so");;
      *) flags+=(--extern "$d=$OUT/lib$d.rlib");;
    esac
  done
  echo "${flags[@]}"
}

build_crate() { # crate_name src_path deps...
  local name=$1 src=$2; shift 2
  local e; e=$(ext "$@")
  "$COMPILER" "${RUSTFLAGS_COMMON[@]}" --crate-type rlib --crate-name "$name" "$src" \
    -o "$OUT/lib$name.rlib" $e 2>&1 | head -60
  [ "${PIPESTATUS[0]}" -eq 0 ] || { echo "BUILD FAILED: $name"; fail=1; }
}

test_crate() { # crate_name src_path deps...
  local name=$1 src=$2; shift 2
  if [ -n "$FILTER" ] && [ "$name" != "$FILTER" ]; then return; fi
  local e; e=$(ext "$@")
  "$COMPILER" "${RUSTFLAGS_COMMON[@]}" --test --crate-name "${name}_t" "$src" \
    -o "$OUT/${name}_test" $e 2>&1 | head -60
  if [ "${PIPESTATUS[0]}" -eq 0 ]; then
    if [ "$MODE" = test ]; then
      "$OUT/${name}_test" -q 2>&1 | tail -3
      [ "${PIPESTATUS[0]}" -eq 0 ] || { echo "TEST FAILED: $name"; fail=1; }
    fi
  else
    echo "TEST BUILD FAILED: $name"; fail=1
  fi
}

# name src deps... (dependency order)
CRATES=(
  "sage_text crates/text/src/lib.rs"
  "sage_telemetry crates/telemetry/src/lib.rs"
  "sage_nn crates/nn/src/lib.rs rand bytes"
  "sage_embed crates/embed/src/lib.rs bytes sage_text sage_nn rand"
  "sage_vecdb crates/vecdb/src/lib.rs sage_nn sage_telemetry rand parking_lot bytes"
  "sage_retrieval crates/retrieval/src/lib.rs sage_text sage_embed sage_vecdb sage_telemetry"
  "sage_corpus crates/corpus/src/lib.rs sage_text rand"
  "sage_segment crates/segment/src/lib.rs bytes sage_text sage_nn sage_embed sage_corpus"
  "sage_rerank crates/rerank/src/lib.rs bytes sage_text sage_nn sage_embed sage_corpus sage_telemetry"
  "sage_eval crates/eval/src/lib.rs sage_text rand serde"
  "sage_llm crates/llm/src/lib.rs sage_text sage_eval sage_corpus sage_telemetry rand"
  "sage_resilience crates/resilience/src/lib.rs"
  "sage_admission crates/admission/src/lib.rs sage_resilience"
  "sage_lint crates/lint/src/lib.rs"
  "sage_obs crates/obs/src/lib.rs sage_telemetry"
  "sage_core crates/core/src/lib.rs bytes sage_text sage_nn sage_embed sage_vecdb sage_retrieval sage_corpus sage_segment sage_rerank sage_llm sage_eval sage_resilience sage_admission sage_telemetry sage_obs rand serde"
  "sage src/lib.rs sage_text sage_nn sage_embed sage_vecdb sage_retrieval sage_corpus sage_segment sage_rerank sage_resilience sage_admission sage_telemetry sage_obs sage_llm sage_eval sage_core sage_lint"
)

for entry in "${CRATES[@]}"; do
  set -- $entry
  name=$1 src=$2; shift 2
  echo "--- $name"
  build_crate "$name" "$src" "$@"
  if [ "$MODE" = test ] || [ "$MODE" = clippy ]; then
    test_crate "$name" "$src" "$@"
  fi
done

echo "--- sage_cli (bin)"
e=$(ext sage)
"$COMPILER" "${RUSTFLAGS_COMMON[@]}" --crate-name sage_cli crates/cli/src/main.rs \
  -o "$OUT/sage_cli" $e 2>&1 | head -60
[ "${PIPESTATUS[0]}" -eq 0 ] || { echo "BUILD FAILED: sage_cli"; fail=1; }

if { [ "$MODE" = test ] || [ "$MODE" = clippy ]; } && { [ -z "$FILTER" ] || [ "$FILTER" = sage_cli ]; }; then
  "$COMPILER" "${RUSTFLAGS_COMMON[@]}" --test --crate-name sage_cli_t crates/cli/src/main.rs \
    -o "$OUT/sage_cli_test" $e 2>&1 | head -60
  if [ "${PIPESTATUS[0]}" -eq 0 ]; then
    if [ "$MODE" = test ]; then
      "$OUT/sage_cli_test" -q 2>&1 | tail -3
      [ "${PIPESTATUS[0]}" -eq 0 ] || { echo "TEST FAILED: sage_cli"; fail=1; }
    fi
  else
    echo "TEST BUILD FAILED: sage_cli"; fail=1
  fi
fi

echo "--- sage_bench (lib) + benches"
e=$(ext sage rand criterion)
"$COMPILER" "${RUSTFLAGS_COMMON[@]}" --crate-type rlib --crate-name sage_bench crates/bench/src/lib.rs \
  -o "$OUT/libsage_bench.rlib" $e 2>&1 | head -60
[ "${PIPESTATUS[0]}" -eq 0 ] || { echo "BUILD FAILED: sage_bench"; fail=1; }
e=$(ext sage rand criterion sage_bench)
"$COMPILER" "${RUSTFLAGS_COMMON[@]}" --crate-name fault_resilience crates/bench/benches/fault_resilience.rs \
  -o "$OUT/bench_fault_resilience" $e 2>&1 | head -60
[ "${PIPESTATUS[0]}" -eq 0 ] || { echo "BUILD FAILED: fault_resilience bench"; fail=1; }
"$COMPILER" "${RUSTFLAGS_COMMON[@]}" --crate-name telemetry_overhead crates/bench/benches/telemetry_overhead.rs \
  -o "$OUT/bench_telemetry_overhead" $e 2>&1 | head -60
[ "${PIPESTATUS[0]}" -eq 0 ] || { echo "BUILD FAILED: telemetry_overhead bench"; fail=1; }
"$COMPILER" "${RUSTFLAGS_COMMON[@]}" --crate-name admission_overhead crates/bench/benches/admission_overhead.rs \
  -o "$OUT/bench_admission_overhead" $e 2>&1 | head -60
[ "${PIPESTATUS[0]}" -eq 0 ] || { echo "BUILD FAILED: admission_overhead bench"; fail=1; }
"$COMPILER" "${RUSTFLAGS_COMMON[@]}" --crate-name executor_overhead crates/bench/benches/executor_overhead.rs \
  -o "$OUT/bench_executor_overhead" $e 2>&1 | head -60
[ "${PIPESTATUS[0]}" -eq 0 ] || { echo "BUILD FAILED: executor_overhead bench"; fail=1; }
"$COMPILER" "${RUSTFLAGS_COMMON[@]}" --crate-name update_throughput crates/bench/benches/update_throughput.rs \
  -o "$OUT/bench_update_throughput" $e 2>&1 | head -60
[ "${PIPESTATUS[0]}" -eq 0 ] || { echo "BUILD FAILED: update_throughput bench"; fail=1; }
"$COMPILER" "${RUSTFLAGS_COMMON[@]}" --crate-name recorder_overhead crates/bench/benches/recorder_overhead.rs \
  -o "$OUT/bench_recorder_overhead" $e 2>&1 | head -60
[ "${PIPESTATUS[0]}" -eq 0 ] || { echo "BUILD FAILED: recorder_overhead bench"; fail=1; }
"$COMPILER" "${RUSTFLAGS_COMMON[@]}" --crate-name lint_overhead crates/bench/benches/lint_overhead.rs \
  -o "$OUT/bench_lint_overhead" $e 2>&1 | head -60
[ "${PIPESTATUS[0]}" -eq 0 ] || { echo "BUILD FAILED: lint_overhead bench"; fail=1; }
"$COMPILER" "${RUSTFLAGS_COMMON[@]}" --crate-name throughput_scaling crates/bench/benches/throughput_scaling.rs \
  -o "$OUT/bench_throughput_scaling" $e 2>&1 | head -60
[ "${PIPESTATUS[0]}" -eq 0 ] || { echo "BUILD FAILED: throughput_scaling bench"; fail=1; }

if [ "$MODE" = test ] || [ "$MODE" = clippy ]; then
  for t in tests/end_to_end.rs tests/robustness.rs tests/properties.rs tests/static_analysis.rs; do
    tn=$(basename "$t" .rs)
    if [ -n "$FILTER" ] && [ "$tn" != "$FILTER" ]; then continue; fi
    echo "--- integration: $tn"
    e=$(ext sage rand proptest)
    "$COMPILER" "${RUSTFLAGS_COMMON[@]}" --test --crate-name "$tn" "$t" \
      -o "$OUT/it_$tn" $e 2>&1 | head -60
    if [ "${PIPESTATUS[0]}" -eq 0 ]; then
      if [ "$MODE" = test ]; then
        "$OUT/it_$tn" -q 2>&1 | tail -3
        [ "${PIPESTATUS[0]}" -eq 0 ] || { echo "TEST FAILED: $tn"; fail=1; }
      fi
    else
      echo "TEST BUILD FAILED: $tn"; fail=1
    fi
  done
fi

if [ $fail -eq 0 ]; then echo "=== ALL OK"; else echo "=== FAILURES"; exit 1; fi
