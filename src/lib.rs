//! # SAGE — A Framework of Precise Retrieval for RAG
//!
//! A from-scratch Rust reproduction of **"SAGE: A Framework of Precise
//! Retrieval for RAG"** (Zhang, Li, Su — ICDE 2025): semantic corpus
//! segmentation (a trained model that cuts at meaning boundaries, §IV),
//! gradient-based chunk selection (stop retrieving at the first sharp
//! relevance drop, §V, Algorithm 2), and an LLM self-feedback loop that
//! adjusts the retrieval budget (§VI) — plus every substrate those need
//! and every baseline the paper compares against.
//!
//! This facade crate re-exports the workspace's public API. The pieces:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`text`] | `sage-text` | tokenization, sentences, stemming, vocabulary |
//! | [`nn`] | `sage-nn` | matrices, MLP + backprop, Adam, embedding tables |
//! | [`embed`] | `sage-embed` | hashed / TF-IDF / siamese / dual-tower encoders |
//! | [`vecdb`] | `sage-vecdb` | flat exact + HNSW approximate vector indexes |
//! | [`retrieval`] | `sage-retrieval` | BM25 inverted index, dense retrievers |
//! | [`corpus`] | `sage-corpus` | synthetic QuALITY/QASPER/NarrativeQA/TriviaQA analogs |
//! | [`segment`] | `sage-segment` | the segmentation model (Algorithm 1) + segmenters |
//! | [`rerank`] | `sage-rerank` | cross-feature reranker + gradient selection |
//! | [`llm`] | `sage-llm` | simulated LLM readers, self-feedback judge, cost model |
//! | [`eval`] | `sage-eval` | ROUGE/BLEU/METEOR/F1 + Eq.1/Eq.2 cost efficiency |
//! | [`resilience`] | `sage-resilience` | deterministic fault injection, retries, breakers |
//! | [`admission`] | `sage-admission` | admission control, deadline budgets, brownout ladder |
//! | [`telemetry`] | `sage-telemetry` | spans, stage histograms, cost ledger, exporters |
//! | [`obs`] | `sage-obs` | flight recorder, SLO burn rates, scenario-matrix diffing |
//! | [`lint`] | `sage-lint` | workspace static analysis (determinism/panic/layering rules) |
//! | [`core`] | `sage-core` | the assembled pipeline, baselines, experiment harnesses |
//!
//! ## Quickstart
//!
//! ```
//! use sage::prelude::*;
//!
//! // Train the models once (deterministic; use TrainBudget::tiny() in
//! // tests, TrainBudget::default() for experiments).
//! let models = TrainedModels::train(TrainBudget::tiny());
//!
//! // A corpus: documents with '\n' between paragraphs.
//! let corpus = vec![
//!     "Whiskers is a playful tabby cat. He has bright green eyes.\n\
//!      Dorinwick was well known in the region. He lives in Ashford."
//!         .to_string(),
//! ];
//!
//! // Build SAGE: semantic segmentation -> embed -> index.
//! let system = RagSystem::build(
//!     &models,
//!     RetrieverKind::OpenAiSim,
//!     SageConfig::sage(),
//!     LlmProfile::gpt4o_mini(),
//!     &corpus,
//! );
//!
//! // Ask.
//! let result = system.answer_open("What is the color of Whiskers's eyes?");
//! assert!(result.answer.text.contains("green"));
//! println!("{} (${:.6})", result.answer.text,
//!          result.cost.dollars(sage::eval::PriceTable::gpt4o_mini()));
//! ```
//!
//! See `DESIGN.md` for the substitution table (what the paper used → what
//! this repo builds) and `EXPERIMENTS.md` for paper-vs-measured results of
//! every table and figure.

pub use sage_admission as admission;
pub use sage_core as core;
pub use sage_corpus as corpus;
pub use sage_embed as embed;
pub use sage_eval as eval;
pub use sage_lint as lint;
pub use sage_llm as llm;
pub use sage_nn as nn;
pub use sage_obs as obs;
pub use sage_rerank as rerank;
pub use sage_resilience as resilience;
pub use sage_retrieval as retrieval;
pub use sage_segment as segment;
pub use sage_telemetry as telemetry;
pub use sage_text as text;
pub use sage_vecdb as vecdb;

/// The commonly used types in one import.
pub mod prelude {
    pub use sage_admission::{
        AdmissionConfig, AdmissionQueue, BrownoutLevel, CostModel, Priority, QueryBudget,
        SoakConfig,
    };
    pub use sage_core::baselines::{DocSystem, Method};
    pub use sage_core::config::{RetrieverKind, SageConfig};
    pub use sage_core::exec::{Fanout, QueryPlan, RerankMode, SelectMode, StageOp};
    pub use sage_core::experiment::{evaluate, MethodScores};
    pub use sage_core::live::{
        run_live_soak, CorpusWriter, LiveConfig, LiveOp, LiveRetrieverKind, LiveSnapshot,
        LiveSoakConfig, LiveSoakReport,
    };
    pub use sage_core::models::{TrainBudget, TrainedModels};
    pub use sage_core::pipeline::{BuildStats, QueryResult, RagSystem};
    pub use sage_core::resilience::ResilienceConfig;
    pub use sage_core::scenario::run_cell;
    pub use sage_core::soak::{run_soak, SoakReport};
    pub use sage_corpus::datasets::SizeConfig;
    pub use sage_obs::{
        diff_rows, evaluate_slo, parse_rows, parse_scenarios, BenchRow, FlightRecorder, Outcome,
        QueryObs, RecorderConfig, ScenarioCell, ScenarioFile, SloReport, SloSpec,
    };
    pub use sage_resilience::{
        BreakerConfig, Component, CrashPlan, CrashPoint, DegradeTrace, Fallback, FaultKind,
        FaultPlan, Rates, RetryPolicy, SageError,
    };
    pub use sage_corpus::{Dataset, Document, QaItem, QaTask, QuestionKind};
    pub use sage_eval::{bleu, cost_efficiency, f1_match, meteor, rouge_l, Cost, PriceTable};
    pub use sage_llm::{fine_tune, Answer, LlmProfile, SimLlm};
    pub use sage_rerank::{gradient_select, CrossScorer, FlexibleSelector, SelectionConfig};
    pub use sage_retrieval::{Bm25Retriever, DenseRetriever, Retriever};
    pub use sage_segment::{SegmentationModel, Segmenter, SemanticSegmenter, SentenceSegmenter};
    pub use sage_telemetry::{HistogramSnapshot, Stage, Telemetry};
    pub use sage_vecdb::{FlatIndex, HnswIndex, IvfIndex, MutableIndex, VectorIndex};
}
